//! Property tests for the f32 quantization path (DESIGN.md §14):
//!
//! * quantize → predict stays within the documented epsilon of the f64
//!   batch path, on randomly perturbed models *and* random inputs —
//!   not just the one artifact the unit tests pin;
//! * decoding a truncated or bit-flipped serialized f32 plan returns
//!   `Err` (or a valid plan, for flips that land in payload floats) —
//!   it never panics and never aborts on a forged allocation.

use ams_serve::demo::train_demo;
use ams_serve::plan::ForwardPlan;
use ams_serve::{Engine, ModelArtifact};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One trained fixture shared by every proptest case: training is the
/// expensive part, perturbation is cheap.
fn base_artifact() -> &'static ModelArtifact {
    static FIXTURE: OnceLock<ModelArtifact> = OnceLock::new();
    FIXTURE.get_or_init(|| train_demo(77).artifact)
}

/// The documented f32 serving bound: `rel·|f64| + abs` with
/// `rel = abs = 1e-4`.
fn within_f32_bound(want: f64, got: f64) -> bool {
    (want - got).abs() <= 1e-4 * want.abs() + 1e-4
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random model (weights perturbed multiplicatively) × random
    /// input (reference features rescaled/shifted): the quantized
    /// prediction tracks the f64 prediction within the bound.
    #[test]
    fn quantized_predictions_track_f64_on_random_models(
        w_scale in 0.5f64..1.5,
        x_scale in 0.25f64..2.0,
        x_shift in -0.5f64..0.5,
    ) {
        let mut artifact = base_artifact().clone();
        let snap = &mut artifact.snapshot;
        for layer in snap.nt.iter_mut().chain(snap.gen.iter_mut()) {
            layer.w = layer.w.map(|v| v * w_scale);
        }
        for layer in &mut snap.gat {
            for head in &mut layer.heads {
                head.w = head.w.map(|v| v * w_scale);
            }
        }
        snap.beta_c = snap.beta_c.map(|v| v * w_scale);
        let engine = Engine::new(artifact).expect("perturbed artifact still validates");
        let x = engine.artifact().reference_features.map(|v| v * x_scale + x_shift);
        let want = engine.predict_batch(&x).expect("f64 path");
        let got = engine.predict_batch_f32(&x).expect("f32 path");
        for i in 0..want.rows() {
            prop_assert!(
                within_f32_bound(want[(i, 0)], got[(i, 0)]),
                "row {i}: f64 {} vs f32 {}", want[(i, 0)], got[(i, 0)]
            );
        }
    }

    /// A serialized plan, truncated at a random point and with a
    /// random byte flipped, decodes to `Err` or a valid plan — never a
    /// panic. (Flips in the float payload can legally decode.)
    #[test]
    fn corrupt_plan_bytes_never_panic(
        cut in 0usize..4096,
        flip_at in 0usize..4096,
        flip_bits in 1i32..256,
    ) {
        let plan: ForwardPlan<f32> =
            ForwardPlan::from_artifact(base_artifact()).expect("quantize");
        let mut bytes = plan.to_bytes();
        let cut = cut.min(bytes.len());
        bytes.truncate(cut);
        if !bytes.is_empty() {
            let at = flip_at % bytes.len();
            bytes[at] ^= flip_bits as u8;
        }
        // The property is totality: decode returns, whatever the bytes.
        // (A flip in a length field plus a lucky truncation point could
        // in principle still parse, so we assert "no panic", not Err.)
        let _ = ForwardPlan::from_bytes(&bytes);
    }
}

/// Quantize → serialize → decode → predict: the decoded plan is the
/// plan the engine scores with, end to end.
#[test]
fn decoded_plan_predicts_identically_to_in_memory_plan() {
    let artifact = base_artifact().clone();
    let engine = Engine::new(artifact.clone()).unwrap();
    let bytes = artifact.quantize_f32().unwrap().to_bytes();
    let decoded = ForwardPlan::from_bytes(&bytes).unwrap();
    // Same weights bit-for-bit → the engine's f32 path with its own
    // plan is the ground truth for the decoded copy.
    let in_memory = engine.plan_f32();
    assert_eq!(decoded.width, in_memory.width);
    assert_eq!(decoded.companies, in_memory.companies);
    assert_eq!(decoded.nt.len(), in_memory.nt.len());
    for (a, b) in decoded.nt.iter().zip(&in_memory.nt) {
        assert_eq!(a.w.as_slice(), b.w.as_slice());
        assert_eq!(a.b.as_slice(), b.b.as_slice());
    }
    assert_eq!(decoded.mask.as_slice(), in_memory.mask.as_slice());
}
