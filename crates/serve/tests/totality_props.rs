//! Request-parsing totality under adversarial input: the JSONL parser
//! must return a value (never panic, never overflow the worker stack)
//! on arbitrary byte soup, and the server must answer every framed
//! hostile line with a typed refusal — depth bombs inside the line
//! budget included — while staying inside a small allocation envelope.
//! This is the serve-side counterpart of the store's decoder
//! properties: everything a socket can deliver is untrusted until the
//! parser said otherwise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ams_serve::net::MAX_LINE_BYTES;
use ams_serve::{Registry, Server, ServerConfig};
use proptest::prelude::*;
use serde_json::Value;

struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let now = CURRENT.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(now, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Heap growth (bytes above the level at call time) while running `f`.
fn peak_heap_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = CURRENT.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(base))
}

/// Structural JSON tokens plus a few valid scalars: concatenations hit
/// the parser's recursion, escape and number paths far more often than
/// raw byte soup would.
const TOKENS: [&str; 14] = [
    "[",
    "]",
    "{",
    "}",
    ":",
    ",",
    "\"a\"",
    "\"k\"",
    "1e9",
    "-0.5",
    "true",
    "null",
    "\"\\u0041\"",
    "\\",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Raw byte soup: parsing returns, never panics, and a successful
    /// parse survives a re-encode/re-parse round trip. Allocation
    /// stays proportional to the input, whatever the bytes claim.
    #[test]
    fn parsing_is_total_on_byte_soup(
        byte_codes in prop::collection::vec(0usize..256, 0..2048),
    ) {
        let bytes: Vec<u8> = byte_codes.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let (res, peak) = peak_heap_during(|| serde_json::from_str::<Value>(&text));
        prop_assert!(peak <= (1 << 20) + 64 * text.len(), "peak {peak} for {} bytes", text.len());
        if let Ok(v) = res {
            let encoded = serde_json::to_string(&v).expect("re-encode parsed value");
            prop_assert!(serde_json::from_str::<Value>(&encoded).is_ok(), "{encoded}");
        }
    }

    /// Token soup: structurally dense near-JSON, including arbitrarily
    /// deep bracket runs — deep nesting must come back as the depth
    /// error, not as a stack overflow.
    #[test]
    fn parsing_is_total_on_token_soup(
        token_codes in prop::collection::vec(0usize..TOKENS.len(), 0..4096),
    ) {
        let text: String = token_codes.iter().map(|&t| TOKENS[t]).collect();
        let (res, peak) = peak_heap_during(|| serde_json::from_str::<Value>(&text));
        prop_assert!(peak <= (1 << 20) + 64 * text.len(), "peak {peak} for {} bytes", text.len());
        let depth = token_codes.iter().take_while(|&&t| TOKENS[t] == "[").count();
        if depth > serde_json::MAX_PARSE_DEPTH {
            let err = res.expect_err("a bracket bomb must be refused");
            prop_assert!(format!("{err}").contains("nesting deeper"), "{err}");
        } else if let Ok(v) = res {
            let encoded = serde_json::to_string(&v).expect("re-encode parsed value");
            prop_assert!(serde_json::from_str::<Value>(&encoded).is_ok(), "{encoded}");
        }
    }
}

fn recv_line(reader: &mut BufReader<TcpStream>) -> Option<Value> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(serde_json::from_str(&line).expect("server lines are JSON")),
        Err(e) => panic!("read response: {e}"),
    }
}

fn is_ok(v: &Value) -> Option<bool> {
    v.get("ok").and_then(Value::as_bool)
}

/// The live server under a hostile barrage: a depth bomb inside the
/// line budget gets a typed parse refusal (the worker thread would
/// stack-overflow without the parser's depth ceiling), non-UTF-8
/// closes the connection without a crash, an oversized line gets the
/// documented refusal-then-close — and through all of it the server
/// keeps serving fresh connections with bounded heap.
#[test]
fn server_refuses_hostile_lines_and_keeps_serving() {
    let bundle = ams_serve::demo::train_demo(11);
    let registry = Arc::new(Registry::new());
    registry.publish(bundle.artifact).unwrap();
    let server = Server::start(
        ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..Default::default() },
        Arc::clone(&registry),
    )
    .unwrap();
    let addr = server.local_addr();

    // Depth bomb: 60 KiB of '[' fits the line budget, so it reaches
    // the parser. The refusal must come back on the same connection.
    let mut conn = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let bomb = "[".repeat(60 * 1024 - 1);
    let ((), peak) = peak_heap_during(|| {
        conn.write_all(bomb.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        let resp = recv_line(&mut reader).expect("refusal for the depth bomb");
        assert_eq!(is_ok(&resp), Some(false), "{resp:?}");
        let err = resp.get("error").and_then(Value::as_str).unwrap_or("");
        assert!(err.contains("invalid JSON"), "{err}");
    });
    assert!(peak <= 32 << 20, "depth bomb peaked at {peak} bytes");

    // The connection survived the bomb.
    conn.write_all(b"{\"type\":\"health\"}\n").unwrap();
    let resp = recv_line(&mut reader).expect("health after the bomb");
    assert_eq!(is_ok(&resp), Some(true), "{resp:?}");

    // Non-UTF-8 bytes cannot become a request line: the server drops
    // the connection (no response) rather than crashing or echoing.
    conn.write_all(&[0xff, 0xfe, 0x80, b'\n']).unwrap();
    assert!(recv_line(&mut reader).is_none(), "non-UTF-8 must close the connection");

    // An endless line is cut at MAX_LINE_BYTES with a typed refusal,
    // then the connection closes — the stream cannot re-synchronize.
    let mut conn = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    // Exactly MAX_LINE_BYTES with no newline trips the cap while
    // leaving no unread bytes behind, so the refusal is not raced by a
    // connection reset.
    let ((), peak) = peak_heap_during(|| {
        conn.write_all(&vec![b'a'; MAX_LINE_BYTES]).unwrap();
        let mut raw = String::new();
        reader.read_to_string(&mut raw).unwrap();
        let resp: Value = serde_json::from_str(raw.lines().next().expect("refusal line")).unwrap();
        assert_eq!(is_ok(&resp), Some(false), "{resp:?}");
        let err = resp.get("error").and_then(Value::as_str).unwrap_or("");
        assert!(err.contains("exceeded"), "{err}");
    });
    assert!(peak <= (MAX_LINE_BYTES * 4) + (1 << 20), "oversized line peaked at {peak} bytes");

    // After every refusal above, a fresh connection still gets real
    // service.
    let mut conn = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    conn.write_all(b"{\"type\":\"health\"}\n").unwrap();
    let resp = recv_line(&mut reader).expect("health on a fresh connection");
    assert_eq!(is_ok(&resp), Some(true), "{resp:?}");

    server.shutdown();
}
