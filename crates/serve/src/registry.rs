//! Named, versioned model registry with atomic hot-swap.
//!
//! Server workers hold the registry behind an `Arc` and resolve a
//! model per request; publishing a new version takes the write lock
//! only long enough to swap an `Arc<Engine>` in, so in-flight requests
//! keep scoring against the engine they already resolved — the classic
//! read-copy-update shape, built from `std::sync` only.

use crate::artifact::ModelArtifact;
use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::engine::Engine;
use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

/// A name's live state: every retained version plus the active one.
struct Entry {
    /// Versions in publish order (ascending version number).
    versions: Vec<Arc<Engine>>,
    /// The name's circuit breaker. Deliberately shared across versions:
    /// engine health is a property of the *serving path* for this name,
    /// and a hot-swap should inherit (then quickly clear, via the
    /// half-open probe) the previous version's state rather than reset
    /// an open breaker to closed.
    breaker: Arc<CircuitBreaker>,
}

impl Entry {
    /// The latest published engine; `None` only for an entry that
    /// never finished its first publish.
    fn active(&self) -> Option<Arc<Engine>> {
        self.versions.last().map(Arc::clone)
    }
}

/// Thread-safe model registry.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<HashMap<String, Entry>>,
    breaker_config: BreakerConfig,
}

impl Registry {
    /// Empty registry with default breaker tuning.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty registry whose entries trip their breakers per `config`.
    pub fn with_breaker_config(config: BreakerConfig) -> Self {
        Self { inner: RwLock::default(), breaker_config: config }
    }

    /// The circuit breaker guarding `name`'s serving path.
    pub fn breaker(&self, name: &str) -> Option<Arc<CircuitBreaker>> {
        let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        map.get(name).map(|e| Arc::clone(&e.breaker))
    }

    /// Health label for `name`, as reported by the `health` endpoint:
    /// `"open-circuit"` while the breaker rejects engine traffic,
    /// `"degraded"` under a non-zero failure streak, else `"healthy"`.
    pub fn health_state(&self, name: &str) -> Option<&'static str> {
        let breaker = self.breaker(name)?;
        Some(match breaker.state() {
            BreakerState::Open | BreakerState::HalfOpen => "open-circuit",
            BreakerState::Closed if breaker.failure_streak() > 0 => "degraded",
            BreakerState::Closed => "healthy",
        })
    }

    /// Validate and publish an artifact under its embedded name. The
    /// new version must be strictly greater than the latest published
    /// one — stale re-publishes are rejected instead of silently
    /// rolling traffic back.
    pub fn publish(&self, artifact: ModelArtifact) -> Result<Arc<Engine>, String> {
        let engine = Arc::new(Engine::new(artifact)?);
        let name = engine.artifact().name.clone();
        let version = engine.artifact().version;
        // A poisoned lock means a worker panicked mid-swap; the map
        // itself is still structurally sound (every mutation is a
        // single push/drain), so recover the guard rather than
        // cascading the panic through every serving thread.
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let entry = map.entry(name).or_insert_with(|| Entry {
            versions: Vec::new(),
            breaker: Arc::new(CircuitBreaker::new(self.breaker_config)),
        });
        if let Some(latest) = entry.versions.last() {
            let latest_v = latest.artifact().version;
            if version <= latest_v {
                return Err(format!(
                    "version {version} is not newer than published version {latest_v}"
                ));
            }
        }
        entry.versions.push(Arc::clone(&engine));
        Ok(engine)
    }

    /// Publish an artifact from a checksummed file written by
    /// [`ModelArtifact::write_file`]. At-rest corruption (torn write,
    /// bit rot, truncation) fails the checksum and is rejected here —
    /// the previously published version keeps serving untouched.
    pub fn publish_file(&self, path: &std::path::Path) -> Result<Arc<Engine>, String> {
        let artifact = ModelArtifact::read_file(path)?;
        self.publish(artifact)
    }

    /// The active (latest) engine for a name.
    pub fn get(&self, name: &str) -> Option<Arc<Engine>> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner).get(name).and_then(Entry::active)
    }

    /// A specific retained version.
    pub fn get_version(&self, name: &str, version: u64) -> Option<Arc<Engine>> {
        let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        map.get(name)?.versions.iter().find(|e| e.artifact().version == version).map(Arc::clone)
    }

    /// `(name, active version, retained count)` for every model.
    pub fn list(&self) -> Vec<(String, u64, usize)> {
        let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<(String, u64, usize)> = map
            .iter()
            .filter_map(|(name, e)| {
                e.active().map(|a| (name.clone(), a.artifact().version, e.versions.len()))
            })
            .collect();
        out.sort();
        out
    }

    /// Drop old versions of `name`, keeping the newest `keep`. Returns
    /// how many were dropped. In-flight requests holding a dropped
    /// engine's `Arc` finish unharmed.
    pub fn prune(&self, name: &str, keep: usize) -> usize {
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        match map.get_mut(name) {
            Some(e) if e.versions.len() > keep.max(1) => {
                let drop_n = e.versions.len() - keep.max(1);
                e.versions.drain(..drop_n);
                drop_n
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_fixture;
    use std::thread;

    fn artifact_with_version(seed: u64, version: u64) -> ModelArtifact {
        let mut a = trained_fixture(seed).artifact;
        a.version = version;
        a
    }

    #[test]
    fn publish_get_and_version_ordering() {
        let reg = Registry::new();
        reg.publish(artifact_with_version(51, 1)).unwrap();
        reg.publish(artifact_with_version(52, 2)).unwrap();
        assert_eq!(reg.get("ams-demo").unwrap().artifact().version, 2);
        assert_eq!(reg.get_version("ams-demo", 1).unwrap().artifact().version, 1);
        assert!(reg.get("nope").is_none());
        // Stale publish rejected.
        let err = reg.publish(artifact_with_version(53, 2)).unwrap_err();
        assert!(err.contains("not newer"), "{err}");
        assert_eq!(reg.list(), vec![("ams-demo".to_string(), 2, 2)]);
    }

    #[test]
    fn prune_keeps_newest() {
        let reg = Registry::new();
        for v in 1..=4 {
            reg.publish(artifact_with_version(54, v)).unwrap();
        }
        assert_eq!(reg.prune("ams-demo", 2), 2);
        assert!(reg.get_version("ams-demo", 1).is_none());
        assert_eq!(reg.get("ams-demo").unwrap().artifact().version, 4);
    }

    #[test]
    fn hot_swap_is_atomic_under_concurrent_reads() {
        // Readers resolve + score while a writer publishes new
        // versions; every resolved engine must stay fully usable.
        let reg = Arc::new(Registry::new());
        reg.publish(artifact_with_version(55, 1)).unwrap();
        let width = reg.get("ams-demo").unwrap().feature_width();

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let engine = reg.get("ams-demo").expect("always published");
                        engine.predict_company(0, &vec![0.1; width]).expect("scores");
                        n += 1;
                    }
                    n
                })
            })
            .collect();

        // Publish a few new versions while readers hammer the registry.
        // Reuse the same artifact body (only the version differs) so the
        // test spends its time on the swap, not on training.
        let base = trained_fixture(55).artifact;
        for v in 2..=5 {
            let mut a = base.clone();
            a.version = v;
            reg.publish(a).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(reg.get("ams-demo").unwrap().artifact().version, 5);
    }

    #[test]
    fn corrupt_artifact_file_is_rejected_and_previous_version_serves() {
        let reg = Registry::new();
        reg.publish(artifact_with_version(56, 1)).unwrap();

        let dir = std::env::temp_dir().join(format!("ams-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v2.artifact");
        artifact_with_version(56, 2).write_file(&path).unwrap();

        // An intact file publishes; roll back to test the corrupt case
        // at the same version number.
        let clean = Registry::new();
        clean.publish_file(&path).unwrap();
        assert_eq!(clean.get("ams-demo").unwrap().artifact().version, 2);

        ams_fault::bit_flip_file(&path, 8 * 512 + 1).unwrap();
        let err = reg.publish_file(&path).unwrap_err();
        assert!(
            err.contains("checksum") || err.contains("header") || err.contains("magic"),
            "{err}"
        );
        // The registry is untouched: version 1 keeps serving.
        assert_eq!(reg.get("ams-demo").unwrap().artifact().version, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn breaker_is_per_name_and_survives_hot_swap() {
        let reg = Registry::new();
        reg.publish(artifact_with_version(57, 1)).unwrap();
        let b = reg.breaker("ams-demo").unwrap();
        assert_eq!(reg.health_state("ams-demo"), Some("healthy"));
        b.record_failure();
        assert_eq!(reg.health_state("ams-demo"), Some("degraded"));
        // A hot-swap publish keeps the same breaker (same Arc).
        reg.publish(artifact_with_version(57, 2)).unwrap();
        assert!(Arc::ptr_eq(&b, &reg.breaker("ams-demo").unwrap()));
        assert_eq!(reg.health_state("ams-demo"), Some("degraded"));
        b.record_success();
        assert_eq!(reg.health_state("ams-demo"), Some("healthy"));
        assert_eq!(reg.health_state("nope"), None);
    }

    #[test]
    fn poisoned_lock_recovers_and_keeps_serving() {
        // A worker panicking while holding the registry's write lock
        // poisons it; every accessor goes through
        // `PoisonError::into_inner`, so reads AND later publishes must
        // keep working.
        let reg = Arc::new(Registry::new());
        reg.publish(artifact_with_version(58, 1)).unwrap();

        let poisoner = {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let _guard = reg.inner.write().unwrap();
                panic!("simulated worker crash mid-publish");
            })
        };
        assert!(poisoner.join().is_err(), "poisoner must panic");
        assert!(reg.inner.is_poisoned(), "lock must actually be poisoned");

        // Reads still serve the published version…
        let engine = reg.get("ams-demo").expect("get() recovers from poisoning");
        assert_eq!(engine.artifact().version, 1);
        let width = engine.feature_width();
        engine.predict_company(0, &vec![0.1; width]).expect("resolved engine still scores");
        // …and the registry still accepts new publishes.
        reg.publish(artifact_with_version(58, 2)).expect("publish() recovers from poisoning");
        assert_eq!(reg.get("ams-demo").unwrap().artifact().version, 2);
        assert_eq!(reg.list(), vec![("ams-demo".to_string(), 2, 2)]);
    }
}
