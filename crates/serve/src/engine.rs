//! Tape-free forward-only scoring.
//!
//! Training-side `AmsModel::predict` replays the master→slave forward
//! pass on the autodiff [`ams_tensor::Graph`] — every intermediate is
//! recorded on a tape so gradients *could* be taken, which serving
//! never needs. [`Engine`] runs the same arithmetic directly on
//! [`Matrix`] values: same primitives in the same order, so results
//! are bit-for-bit identical to the tape, with no tape allocation.
//!
//! Two paths:
//! * **batch** ([`Engine::predict_batch`]) re-runs the master and the
//!   slave generation for a fresh feature matrix (one row per graph
//!   node) — what a nightly re-score over updated panels uses;
//! * **fast** ([`Engine::predict_company`]) scores one company as a
//!   dot product against its materialized slave-LR weights from the
//!   artifact — the low-latency online path. At the artifact's
//!   reference features it agrees with the batch path exactly; for
//!   fresh features it holds the company's β fixed (the master is not
//!   re-run), which is the standard export-the-entity-parameters
//!   serving trade-off.

use crate::artifact::ModelArtifact;
use ams_core::{GatHead, GatLayer, LinearLayer};
use ams_tensor::Matrix;

/// A scoring-ready model: a validated artifact plus precomputed
/// lookup structures. Cheap to clone behind an `Arc`; immutable, so
/// freely shared across server workers.
#[derive(Debug)]
pub struct Engine {
    artifact: ModelArtifact,
    /// 0/1 projection from full feature space to slave columns
    /// (`d×m`), `None` when the slave model uses every column.
    selection: Option<Matrix>,
}

impl Engine {
    /// Validate an artifact and prepare it for scoring.
    pub fn new(artifact: ModelArtifact) -> Result<Self, String> {
        artifact.validate()?;
        let d = artifact.feature_width();
        let selection = artifact.snapshot.config.slave_cols.as_ref().map(|cols| {
            let mut s = Matrix::zeros(d, cols.len());
            for (j, &c) in cols.iter().enumerate() {
                s[(c, j)] = 1.0;
            }
            s
        });
        Ok(Self { artifact, selection })
    }

    /// The artifact this engine scores with.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// Number of companies (graph nodes).
    pub fn num_companies(&self) -> usize {
        self.artifact.num_companies()
    }

    /// Full feature width the model consumes.
    pub fn feature_width(&self) -> usize {
        self.artifact.feature_width()
    }

    /// Fast path: score one company against its materialized slave-LR
    /// weights. `features` is a full-width (standardized) feature row;
    /// the slave-column projection happens here.
    pub fn predict_company(&self, company: usize, features: &[f64]) -> Result<f64, String> {
        let n = self.num_companies();
        if company >= n {
            return Err(format!("company {company} out of range (model has {n})"));
        }
        let d = self.feature_width();
        if features.len() != d {
            return Err(format!("feature width {} != model width {d}", features.len()));
        }
        let beta = self.artifact.slave_weights.row(company);
        let pred = match &self.artifact.snapshot.config.slave_cols {
            // Σ_j x[cols[j]] · β_j in slave-column order — exactly the
            // x·S projection followed by the row-wise dot.
            Some(cols) => cols.iter().zip(beta).map(|(&c, &b)| features[c] * b).sum(),
            None => features.iter().zip(beta).map(|(&x, &b)| x * b).sum(),
        };
        Ok(pred)
    }

    /// The materialized slave-LR weight row for one company, aligned
    /// with the slave columns.
    pub fn slave_weights_row(&self, company: usize) -> Result<&[f64], String> {
        let n = self.num_companies();
        if company >= n {
            return Err(format!("company {company} out of range (model has {n})"));
        }
        Ok(self.artifact.slave_weights.row(company))
    }

    /// Names of the slave-weight columns (subset of the feature names
    /// when `slave_cols` is configured). Empty when the artifact
    /// carries no names.
    pub fn slave_feature_names(&self) -> Vec<String> {
        let names = &self.artifact.feature_names;
        if names.is_empty() {
            return Vec::new();
        }
        match &self.artifact.snapshot.config.slave_cols {
            Some(cols) => cols.iter().map(|&c| names[c].clone()).collect(),
            None => names.clone(),
        }
    }

    /// Batch path: re-run master→slave generation on a fresh feature
    /// matrix (one row per graph node) and score every company.
    /// Bit-for-bit equal to `AmsModel::predict` on the same input.
    pub fn predict_batch(&self, x: &Matrix) -> Result<Matrix, String> {
        let (pred, _, _) = self.run(x)?;
        Ok(pred)
    }

    /// Batch slave weights `(assembled β, generated β_v)`, both `n×m` —
    /// the serving-side counterpart of `AmsModel::slave_weights`.
    pub fn slave_weights_batch(&self, x: &Matrix) -> Result<(Matrix, Matrix), String> {
        let (_, beta_v, beta) = self.run(x)?;
        Ok((beta, beta_v))
    }

    /// The forward pass of `AmsModel::forward`, replayed value-only.
    /// Every step reuses the identical `Matrix` primitive the tape op
    /// wraps, in the identical order — that is what makes the engine
    /// exactly (not approximately) equal to the training-side predict.
    fn run(&self, x: &Matrix) -> Result<(Matrix, Matrix, Matrix), String> {
        let snap = &self.artifact.snapshot;
        let mask = snap
            .mask
            .as_ref()
            .ok_or_else(|| "artifact has no adjacency mask (corrupt snapshot)".to_string())?;
        if x.rows() != mask.rows() {
            return Err(format!(
                "batch has {} rows but the model graph has {} nodes",
                x.rows(),
                mask.rows()
            ));
        }
        if x.cols() != self.feature_width() {
            return Err(format!(
                "feature width {} != model width {}",
                x.cols(),
                self.feature_width()
            ));
        }

        // Node transform (Eq. 1); dropout is identity at eval time.
        let mut h = x.clone();
        for LinearLayer { w, b } in &snap.nt {
            h = relu(&add_row_broadcast(&h.matmul(w), b));
        }
        let nt_out = h.clone();
        // GAT stack (Eqs. 2–3).
        for layer in &snap.gat {
            h = gat_layer_forward(layer, &h, mask)?;
        }
        if snap.config.residual {
            h = h.hcat(&nt_out);
        }
        // Generator M (Eq. 6): hidden ReLU layers then a linear map.
        let n_gen = snap.gen.len();
        for (i, LinearLayer { w, b }) in snap.gen.iter().enumerate() {
            let z = add_row_broadcast(&h.matmul(w), b);
            h = if i + 1 < n_gen { relu(&z) } else { z };
        }
        let beta_v = h;

        // Model assembly (Eq. 10): β = γ β_v + (1−γ) β_c.
        let gamma = snap.config.gamma;
        let bc_rows = Matrix::ones(x.rows(), 1).matmul(&snap.beta_c.t());
        let beta = affine(&beta_v, gamma).add(&affine(&bc_rows, 1.0 - gamma));

        // Slave-LR evaluation on the slave columns.
        let x_slave = match &self.selection {
            Some(sel) => x.matmul(sel),
            None => x.clone(),
        };
        let pred = rowwise_dot(&x_slave, &beta);
        Ok((pred, beta_v, beta))
    }
}

/// `Graph::relu` value semantics.
fn relu(x: &Matrix) -> Matrix {
    x.map(|e| e.max(0.0))
}

/// `Graph::leaky_relu` value semantics.
fn leaky_relu(x: &Matrix, alpha: f64) -> Matrix {
    x.map(|e| if e > 0.0 { e } else { alpha * e })
}

/// `Graph::affine`/`scale` value semantics (`alpha·x + 0.0`; the
/// `+ 0.0` is kept so `-0.0` entries normalize exactly as on the tape).
fn affine(x: &Matrix, alpha: f64) -> Matrix {
    x.map(|e| alpha * e + 0.0)
}

/// `Graph::add_row_broadcast` value semantics.
fn add_row_broadcast(x: &Matrix, bias: &Matrix) -> Matrix {
    assert_eq!(bias.rows(), 1, "add_row_broadcast: bias must be a row vector");
    assert_eq!(bias.cols(), x.cols(), "add_row_broadcast: width mismatch");
    let mut out = x.clone();
    for r in 0..out.rows() {
        for c in 0..out.cols() {
            out[(r, c)] += bias[(0, c)];
        }
    }
    out
}

/// `Graph::outer_sum` value semantics: `out[i][j] = u[i] + v[j]`.
fn outer_sum(u: &Matrix, v: &Matrix) -> Matrix {
    assert_eq!(u.cols(), 1, "outer_sum: u must be a column vector");
    assert_eq!(v.cols(), 1, "outer_sum: v must be a column vector");
    let mut out = Matrix::zeros(u.rows(), v.rows());
    for i in 0..u.rows() {
        for j in 0..v.rows() {
            out[(i, j)] = u[(i, 0)] + v[(j, 0)];
        }
    }
    out
}

/// `Graph::masked_softmax_rows` value semantics, including the
/// fully-masked-row → all-zeros case for isolated nodes.
fn masked_softmax_rows(x: &Matrix, mask: &Matrix) -> Matrix {
    assert_eq!(x.shape(), mask.shape(), "masked_softmax_rows: mask shape mismatch");
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let mut maxv = f64::NEG_INFINITY;
        for c in 0..x.cols() {
            if mask[(r, c)] != 0.0 {
                maxv = maxv.max(x[(r, c)]);
            }
        }
        if maxv == f64::NEG_INFINITY {
            continue;
        }
        let mut denom = 0.0;
        for c in 0..x.cols() {
            if mask[(r, c)] != 0.0 {
                let e = (x[(r, c)] - maxv).exp();
                out[(r, c)] = e;
                denom += e;
            }
        }
        for c in 0..x.cols() {
            out[(r, c)] /= denom;
        }
    }
    out
}

/// `Graph::rowwise_dot` value semantics.
fn rowwise_dot(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "rowwise_dot: shape mismatch");
    let mut out = Matrix::zeros(a.rows(), 1);
    for r in 0..a.rows() {
        out[(r, 0)] = a.row(r).iter().zip(b.row(r)).map(|(x, y)| x * y).sum();
    }
    out
}

/// One attention head, value-only (`GatHead::forward` minus the tape).
fn gat_head_forward(head: &GatHead, x: &Matrix, mask: &Matrix, leaky_slope: f64) -> Matrix {
    let wx = x.matmul(&head.w);
    let s_l = wx.matmul(&head.a_left);
    let s_r = wx.matmul(&head.a_right);
    let logits = leaky_relu(&outer_sum(&s_l, &s_r), leaky_slope);
    let attn = masked_softmax_rows(&logits, mask);
    attn.matmul(&wx)
}

/// One GAT layer, value-only (`GatLayer::forward` minus the tape).
/// A zero-head layer is a corrupt artifact, reported as an error.
fn gat_layer_forward(layer: &GatLayer, x: &Matrix, mask: &Matrix) -> Result<Matrix, String> {
    let mut out: Option<Matrix> = None;
    for head in &layer.heads {
        let h = relu(&gat_head_forward(head, x, mask, layer.leaky_slope));
        out = Some(match out {
            None => h,
            Some(acc) => acc.hcat(&h),
        });
    }
    out.ok_or_else(|| "gat layer has no heads (corrupt snapshot)".to_string())
}

/// Convenience: sanity-check an engine against a snapshot's own
/// reference features. Returns the max absolute deviation between the
/// fast path and the batch path — `Ok(0.0)` for a well-formed artifact.
pub fn fast_vs_batch_deviation(engine: &Engine) -> Result<f64, String> {
    let x = &engine.artifact().reference_features;
    let batch = engine.predict_batch(x)?;
    let mut worst = 0.0f64;
    for i in 0..engine.num_companies() {
        let fast = engine.predict_company(i, x.row(i))?;
        worst = worst.max((fast - batch[(i, 0)]).abs());
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_fixture;

    #[test]
    fn batch_path_matches_model_predict_bitwise() {
        let fx = trained_fixture(41);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let want = fx.model.predict(&fx.artifact.reference_features);
        let got = engine.predict_batch(&fx.artifact.reference_features).unwrap();
        assert_eq!(want.shape(), got.shape());
        for i in 0..want.rows() {
            assert_eq!(
                want[(i, 0)].to_bits(),
                got[(i, 0)].to_bits(),
                "row {i}: {} vs {}",
                want[(i, 0)],
                got[(i, 0)]
            );
        }
    }

    #[test]
    fn batch_path_matches_on_fresh_features() {
        // Not just the export-time features: any same-shape batch must
        // agree with the tape, to well under the 1e-10 acceptance bound.
        let fx = trained_fixture(42);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let fresh = fx.artifact.reference_features.map(|v| v * 1.25 + 0.03);
        let want = fx.model.predict(&fresh);
        let got = engine.predict_batch(&fresh).unwrap();
        for i in 0..want.rows() {
            assert!(
                (want[(i, 0)] - got[(i, 0)]).abs() < 1e-10,
                "row {i}: {} vs {}",
                want[(i, 0)],
                got[(i, 0)]
            );
        }
    }

    #[test]
    fn slave_weights_match_model() {
        let fx = trained_fixture(43);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let x = &fx.artifact.reference_features;
        let (want_beta, want_beta_v) = fx.model.slave_weights(x);
        let (got_beta, got_beta_v) = engine.slave_weights_batch(x).unwrap();
        for (a, b) in [(&want_beta, &got_beta), (&want_beta_v, &got_beta_v)] {
            assert_eq!(a.shape(), b.shape());
            for i in 0..a.rows() {
                for j in 0..a.cols() {
                    assert_eq!(a[(i, j)].to_bits(), b[(i, j)].to_bits());
                }
            }
        }
    }

    #[test]
    fn fast_path_equals_batch_at_reference_features() {
        let fx = trained_fixture(44);
        let engine = Engine::new(fx.artifact).unwrap();
        assert_eq!(fast_vs_batch_deviation(&engine).unwrap(), 0.0);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let fx = trained_fixture(45);
        let engine = Engine::new(fx.artifact).unwrap();
        assert!(engine.predict_company(10_000, &vec![0.0; engine.feature_width()]).is_err());
        assert!(engine.predict_company(0, &[1.0]).is_err());
        assert!(engine.predict_batch(&Matrix::zeros(1, engine.feature_width())).is_err());
        assert!(engine.predict_batch(&Matrix::zeros(engine.num_companies(), 1)).is_err());
        assert!(engine.slave_weights_row(10_000).is_err());
    }
}
