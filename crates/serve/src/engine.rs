//! Tape-free forward-only scoring.
//!
//! Training-side `AmsModel::predict` replays the master→slave forward
//! pass on the autodiff [`ams_tensor::Graph`] — every intermediate is
//! recorded on a tape so gradients *could* be taken, which serving
//! never needs. [`Engine`] runs the same arithmetic directly on
//! workspace buffers: same primitives in the same order, so results
//! are bit-for-bit identical to the tape, with no tape allocation.
//!
//! The forward pass itself ([`run_plan`]) is generic over the scalar
//! ([`Element`]): the engine freezes its weights into a
//! [`ForwardPlan`] per precision at load time — an exact f64 copy
//! (the bit-identical default path) and a quantized f32 copy (the
//! mixed-precision path of DESIGN.md §14, within a documented epsilon
//! of the f64 result).
//!
//! Three paths:
//! * **batch** ([`Engine::predict_batch`]) re-runs the master and the
//!   slave generation for a fresh feature matrix (one row per graph
//!   node) — what a nightly re-score over updated panels uses;
//! * **batch, f32** ([`Engine::predict_batch_f32`]) — the same pass on
//!   the quantized plan and an `f32` backend (typically the vectorized
//!   `SimdSeq`), trading the bit contract for throughput;
//! * **fast** ([`Engine::predict_company`]) scores one company as a
//!   dot product against its materialized slave-LR weights from the
//!   artifact — the low-latency online path. At the artifact's
//!   reference features it agrees with the batch path exactly; for
//!   fresh features it holds the company's β fixed (the master is not
//!   re-run), which is the standard export-the-entity-parameters
//!   serving trade-off.

use crate::artifact::{FallbackModel, ModelArtifact};
use crate::plan::{ForwardPlan, PlanGatHead, PlanGatLayer, PlanLinear, Plane, PlaneRef};
use ams_tensor::runtime::{Backend, Element, RuntimeError, Seq, SimdSeq, Workspace};
use ams_tensor::Matrix;
use std::time::Instant;

/// Why a prediction could not be served from the engine. The
/// classification is what the server's degradation ladder keys on: only
/// [`PredictError::Engine`] counts against a model's circuit breaker —
/// a malformed request or an expired deadline says nothing about the
/// model's health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictError {
    /// The request itself is malformed (wrong shape, unknown company).
    BadRequest(String),
    /// The per-request deadline expired mid-flight; the forward pass
    /// was abandoned between stages.
    DeadlineExceeded,
    /// The engine failed (corrupt snapshot, non-finite output).
    Engine(String),
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::BadRequest(m) => write!(f, "{m}"),
            PredictError::DeadlineExceeded => write!(f, "deadline exceeded"),
            PredictError::Engine(m) => write!(f, "engine error: {m}"),
        }
    }
}

impl std::error::Error for PredictError {}

impl From<String> for PredictError {
    /// Untyped errors bubbling out of the kernel helpers can only be
    /// shape mismatches from a corrupt snapshot — engine failures.
    fn from(message: String) -> Self {
        PredictError::Engine(message)
    }
}

impl PredictError {
    /// Does this failure count against the model's circuit breaker?
    pub fn is_engine_failure(&self) -> bool {
        matches!(self, PredictError::Engine(_))
    }
}

/// Bail out of the forward pass between stages once the request's
/// deadline has passed — the abandoned work is the cheapest work.
fn check_deadline(deadline: Option<Instant>) -> Result<(), PredictError> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(PredictError::DeadlineExceeded),
        _ => Ok(()),
    }
}

/// A scoring-ready model: a validated artifact plus its weights frozen
/// into both execution precisions. Cheap to clone behind an `Arc`;
/// immutable, so freely shared across server workers.
#[derive(Debug)]
pub struct Engine {
    artifact: ModelArtifact,
    /// Exact copy of the snapshot weights — the bit-identical path.
    plan64: ForwardPlan<f64>,
    /// The weights quantized to f32 once, at load time.
    plan32: ForwardPlan<f32>,
    /// Degraded-mode predictor, always resolved: taken from the
    /// artifact when present, rebuilt from the snapshot otherwise.
    fallback: FallbackModel,
}

impl Engine {
    /// Validate an artifact and prepare it for scoring.
    pub fn new(artifact: ModelArtifact) -> Result<Self, String> {
        artifact.validate()?;
        let plan64 = ForwardPlan::from_artifact(&artifact)?;
        let plan32 = artifact.quantize_f32()?;
        let placeholder = FallbackModel {
            anchor: artifact
                .snapshot
                .b_acr
                .clone()
                .unwrap_or_else(|| Matrix::zeros(artifact.slave_weights.cols(), 1)),
            last_good: Matrix::zeros(artifact.num_companies(), 1),
        };
        let from_artifact = artifact.fallback.clone();
        let mut engine = Self { artifact, plan64, plan32, fallback: placeholder };
        match from_artifact {
            Some(fb) => engine.fallback = fb,
            None => {
                // Pre-fallback artifact: materialize last-good
                // predictions once, at load time, from the engine's own
                // batch path at the export-time reference features.
                let reference = engine.artifact.reference_features.clone();
                if let Ok(pred) = engine.predict_batch(&reference) {
                    engine.fallback.last_good = pred;
                }
            }
        }
        Ok(engine)
    }

    /// The degraded-mode predictor (never absent; see [`Engine::new`]).
    pub fn fallback(&self) -> &FallbackModel {
        &self.fallback
    }

    /// The quantized f32 plan this engine scores the f32 path with.
    pub fn plan_f32(&self) -> &ForwardPlan<f32> {
        &self.plan32
    }

    /// Score through the fallback ladder. `features` (full-width, may
    /// be `None` or non-finite) is projected to slave space here; the
    /// result is always finite — this path cannot fail.
    pub fn fallback_predict(&self, company: Option<usize>, features: Option<&[f64]>) -> f64 {
        let slave_row: Option<Vec<f64>> = features.and_then(|f| {
            if f.len() != self.feature_width() {
                return None;
            }
            Some(match &self.artifact.snapshot.config.slave_cols {
                Some(cols) => cols.iter().map(|&c| f[c]).collect(),
                None => f.to_vec(),
            })
        });
        self.fallback.predict(company, slave_row.as_deref())
    }

    /// The artifact this engine scores with.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// Number of companies (graph nodes).
    pub fn num_companies(&self) -> usize {
        self.artifact.num_companies()
    }

    /// Full feature width the model consumes.
    pub fn feature_width(&self) -> usize {
        self.artifact.feature_width()
    }

    /// Fast path: score one company against its materialized slave-LR
    /// weights. `features` is a full-width (standardized) feature row;
    /// the slave-column projection happens here.
    pub fn predict_company(&self, company: usize, features: &[f64]) -> Result<f64, String> {
        let n = self.num_companies();
        if company >= n {
            return Err(format!("company {company} out of range (model has {n})"));
        }
        let d = self.feature_width();
        if features.len() != d {
            return Err(format!("feature width {} != model width {d}", features.len()));
        }
        let beta = self.artifact.slave_weights.row(company);
        let pred = match &self.artifact.snapshot.config.slave_cols {
            // Σ_j x[cols[j]] · β_j in slave-column order — exactly the
            // x·S projection followed by the row-wise dot.
            Some(cols) => cols.iter().zip(beta).map(|(&c, &b)| features[c] * b).sum(),
            None => features.iter().zip(beta).map(|(&x, &b)| x * b).sum(),
        };
        Ok(pred)
    }

    /// [`Engine::predict_company`] with a typed error: shape problems
    /// are the caller's fault, a non-finite result is an engine failure
    /// (finite weights against finite features cannot produce one).
    pub fn predict_company_checked(
        &self,
        company: usize,
        features: &[f64],
    ) -> Result<f64, PredictError> {
        let pred = self.predict_company(company, features).map_err(PredictError::BadRequest)?;
        if !pred.is_finite() {
            return Err(PredictError::Engine(format!(
                "non-finite prediction for company {company}"
            )));
        }
        Ok(pred)
    }

    /// The materialized slave-LR weight row for one company, aligned
    /// with the slave columns.
    pub fn slave_weights_row(&self, company: usize) -> Result<&[f64], String> {
        let n = self.num_companies();
        if company >= n {
            return Err(format!("company {company} out of range (model has {n})"));
        }
        Ok(self.artifact.slave_weights.row(company))
    }

    /// Names of the slave-weight columns (subset of the feature names
    /// when `slave_cols` is configured). Empty when the artifact
    /// carries no names.
    pub fn slave_feature_names(&self) -> Vec<String> {
        let names = &self.artifact.feature_names;
        if names.is_empty() {
            return Vec::new();
        }
        match &self.artifact.snapshot.config.slave_cols {
            Some(cols) => cols.iter().map(|&c| names[c].clone()).collect(),
            None => names.clone(),
        }
    }

    /// Batch path: re-run master→slave generation on a fresh feature
    /// matrix (one row per graph node) and score every company.
    /// Bit-for-bit equal to `AmsModel::predict` on the same input.
    pub fn predict_batch(&self, x: &Matrix) -> Result<Matrix, String> {
        let mut ws = Workspace::new();
        self.predict_batch_with(x, &Seq, &mut ws)
    }

    /// [`Engine::predict_batch`] on an explicit backend and workspace.
    /// Every scratch buffer comes from (and returns to) `ws`, so after
    /// one warm-up call the hot path performs zero heap allocations —
    /// provided the caller recycles the returned prediction with
    /// `ws.give(pred.into_vec())` once it has been serialized, as the
    /// server workers do.
    pub fn predict_batch_with(
        &self,
        x: &Matrix,
        backend: &dyn Backend,
        ws: &mut Workspace,
    ) -> Result<Matrix, String> {
        self.predict_batch_deadline(x, backend, ws, None).map_err(|e| e.to_string())
    }

    /// [`Engine::predict_batch_with`] with a typed error and an
    /// optional per-request deadline. The deadline is checked between
    /// forward-pass stages, so an expired request abandons the
    /// remaining work instead of finishing late; the output is checked
    /// finite, so a corrupt artifact reports an engine failure (which
    /// the server counts against the model's circuit breaker) rather
    /// than serving NaN.
    pub fn predict_batch_deadline(
        &self,
        x: &Matrix,
        backend: &dyn Backend,
        ws: &mut Workspace,
        deadline: Option<Instant>,
    ) -> Result<Matrix, PredictError> {
        let (pred, beta_v, beta) =
            run_plan(&self.plan64, PlaneRef::of_matrix(x), backend, ws, deadline)?;
        ws.give(beta_v.into_vec());
        ws.give(beta.into_vec());
        if pred.as_slice().iter().any(|v| !v.is_finite()) {
            ws.give(pred.into_vec());
            return Err(PredictError::Engine("non-finite prediction".to_string()));
        }
        Ok(pred.into_matrix())
    }

    /// The f32 batch path: narrow the input once, run the forward pass
    /// on the quantized plan with an `f32` backend, widen the
    /// predictions back to f64. Within the epsilon bound of DESIGN.md
    /// §14 of [`Engine::predict_batch`] — not bit-identical.
    ///
    /// Scratch comes from the caller's `f32` arena (`ws32`); the
    /// widened output buffer comes from the f64 arena (`ws`), so both
    /// pools warm up once and the steady-state path is allocation-free.
    /// Non-finite input is rejected up front as a bad request: the
    /// vectorized kernels do not carry the deterministic kernels'
    /// `0·∞` guard, so their contract requires finite features.
    pub fn predict_batch_f32_deadline(
        &self,
        x: &Matrix,
        backend: &dyn Backend<f32>,
        ws32: &mut Workspace<f32>,
        ws: &mut Workspace,
        deadline: Option<Instant>,
    ) -> Result<Matrix, PredictError> {
        // One pass both narrows and validates: the finite check rides
        // the copy instead of a separate scan over `x`.
        let mut xin = ws32.take(x.len());
        let mut finite = true;
        for (o, &v) in xin.iter_mut().zip(x.as_slice()) {
            finite &= v.is_finite();
            *o = v as f32;
        }
        if !finite {
            ws32.give(xin);
            return Err(PredictError::BadRequest(
                "non-finite features (the f32 path requires finite input)".to_string(),
            ));
        }
        let x32 = Plane::from_vec(x.rows(), x.cols(), xin);
        let result = run_plan(&self.plan32, x32.view(), backend, ws32, deadline);
        ws32.give(x32.into_vec());
        let (pred, beta_v, beta) = result?;
        ws32.give(beta_v.into_vec());
        ws32.give(beta.into_vec());
        let rows = pred.rows();
        let mut data = ws.take(pred.len());
        for (o, &v) in data.iter_mut().zip(pred.as_slice()) {
            *o = v as f64;
        }
        ws32.give(pred.into_vec());
        let out = Matrix::from_vec(rows, 1, data);
        if out.as_slice().iter().any(|v| !v.is_finite()) {
            ws.give(out.into_vec());
            return Err(PredictError::Engine("non-finite prediction".to_string()));
        }
        Ok(out)
    }

    /// Convenience wrapper over [`Engine::predict_batch_f32_deadline`]
    /// on the vectorized [`SimdSeq`] backend with throwaway arenas.
    pub fn predict_batch_f32(&self, x: &Matrix) -> Result<Matrix, String> {
        let mut ws32 = Workspace::new();
        let mut ws = Workspace::new();
        self.predict_batch_f32_deadline(x, &SimdSeq, &mut ws32, &mut ws, None)
            .map_err(|e| e.to_string())
    }

    /// Batch slave weights `(assembled β, generated β_v)`, both `n×m` —
    /// the serving-side counterpart of `AmsModel::slave_weights`.
    pub fn slave_weights_batch(&self, x: &Matrix) -> Result<(Matrix, Matrix), String> {
        let mut ws = Workspace::new();
        let (pred, beta_v, beta) =
            run_plan(&self.plan64, PlaneRef::of_matrix(x), &Seq, &mut ws, None)
                .map_err(|e| e.to_string())?;
        ws.give(pred.into_vec());
        Ok((beta.into_matrix(), beta_v.into_matrix()))
    }
}

/// What [`run_plan`] hands back: `(predictions, generated β_v,
/// assembled β)`, all still in the plan's scalar type.
type PlanOutputs<E> = (Plane<E>, Plane<E>, Plane<E>);

/// The forward pass of `AmsModel::forward`, replayed value-only on the
/// runtime kernels — generic over the scalar. For `E = f64` every step
/// performs the identical arithmetic in the identical order as the
/// tape op — that is what makes the engine exactly (not approximately)
/// equal to the training-side predict, on every deterministic backend.
/// For `E = f32` the same code is the quantized inference path.
fn run_plan<E: Element>(
    plan: &ForwardPlan<E>,
    x: PlaneRef<'_, E>,
    backend: &dyn Backend<E>,
    ws: &mut Workspace<E>,
    deadline: Option<Instant>,
) -> Result<PlanOutputs<E>, PredictError> {
    if x.rows != plan.companies {
        return Err(PredictError::BadRequest(format!(
            "batch has {} rows but the model graph has {} nodes",
            x.rows, plan.companies
        )));
    }
    if x.cols != plan.width {
        return Err(PredictError::BadRequest(format!(
            "feature width {} != model width {}",
            x.cols, plan.width
        )));
    }

    // Node transform (Eq. 1); dropout is identity at eval time.
    let mut h = clone_ref_ws(x, ws);
    for PlanLinear { w, b } in &plan.nt {
        let mut z = matmul_add_bias_ws(h.view(), w.view(), b.view(), backend, ws)?;
        relu_in_place(&mut z);
        ws.give(h.into_vec());
        h = z;
    }
    check_deadline(deadline)?;
    let nt_out = clone_ref_ws(h.view(), ws);
    // GAT stack (Eqs. 2–3).
    for layer in &plan.gat {
        let next = gat_layer_forward_ws(layer, &h, &plan.mask, backend, ws)?;
        ws.give(h.into_vec());
        h = next;
    }
    check_deadline(deadline)?;
    if plan.residual {
        let cat = hcat_ws(&h, &nt_out, ws);
        ws.give(h.into_vec());
        h = cat;
    }
    ws.give(nt_out.into_vec());
    // Generator M (Eq. 6): hidden ReLU layers then a linear map.
    let n_gen = plan.gen.len();
    for (i, PlanLinear { w, b }) in plan.gen.iter().enumerate() {
        let mut z = matmul_add_bias_ws(h.view(), w.view(), b.view(), backend, ws)?;
        if i + 1 < n_gen {
            relu_in_place(&mut z);
        }
        ws.give(h.into_vec());
        h = z;
    }
    check_deadline(deadline)?;
    let beta_v = h;

    // Model assembly (Eq. 10): β = γ β_v + (1−γ) β_c. The ones·βcᵀ
    // product is kept (rather than a row copy) so `-0.0` entries
    // normalize exactly as on the tape.
    let ones = {
        let mut data = ws.take(x.rows);
        data.iter_mut().for_each(|v| *v = E::ONE);
        Plane::from_vec(x.rows, 1, data)
    };
    let bc_rows = matmul_ws(ones.view(), plan.beta_c_t.view(), backend, ws)?;
    ws.give(ones.into_vec());
    let mut beta = affine_ws(&beta_v, plan.gamma, ws);
    let bc_scaled = affine_ws(&bc_rows, plan.gamma_c, ws);
    ws.give(bc_rows.into_vec());
    for (a, &b) in beta.as_mut_slice().iter_mut().zip(bc_scaled.as_slice()) {
        *a += b;
    }
    ws.give(bc_scaled.into_vec());

    // Slave-LR evaluation on the slave columns.
    let x_slave = match &plan.selection {
        Some(sel) => matmul_ws(x, sel.view(), backend, ws)?,
        None => clone_ref_ws(x, ws),
    };
    let mut pred_data = ws.take(x_slave.rows());
    backend.rowwise_dot(
        x_slave.as_slice(),
        beta.as_slice(),
        &mut pred_data,
        x_slave.rows(),
        x_slave.cols(),
    );
    let pred = Plane::from_vec(x_slave.rows(), 1, pred_data);
    ws.give(x_slave.into_vec());
    Ok((pred, beta_v, beta))
}

/// Copy a plane view into a workspace buffer.
fn clone_ref_ws<E: Element>(x: PlaneRef<'_, E>, ws: &mut Workspace<E>) -> Plane<E> {
    let mut data = ws.take(x.data.len());
    data.copy_from_slice(x.data);
    Plane::from_vec(x.rows, x.cols, data)
}

/// `Graph::relu` value semantics, in place.
fn relu_in_place<E: Element>(x: &mut Plane<E>) {
    for e in x.as_mut_slice() {
        *e = (*e).max(E::ZERO);
    }
}

/// `Graph::leaky_relu` value semantics, in place.
fn leaky_relu_in_place<E: Element>(x: &mut Plane<E>, alpha: E) {
    for e in x.as_mut_slice() {
        *e = if *e > E::ZERO { *e } else { alpha * *e };
    }
}

/// `Graph::affine`/`scale` value semantics (`alpha·x + 0.0`; the
/// `+ 0.0` is kept so `-0.0` entries normalize exactly as on the tape).
fn affine_ws<E: Element>(x: &Plane<E>, alpha: E, ws: &mut Workspace<E>) -> Plane<E> {
    let mut data = ws.take(x.len());
    for (o, &e) in data.iter_mut().zip(x.as_slice()) {
        *o = alpha * e + E::ZERO;
    }
    Plane::from_vec(x.rows(), x.cols(), data)
}

/// Workspace-fed matrix product on the runtime kernels; shape errors
/// surface as the runtime's typed error rendered to the engine's
/// error-string convention (never a panic on the inference path).
fn matmul_ws<E: Element>(
    a: PlaneRef<'_, E>,
    b: PlaneRef<'_, E>,
    backend: &dyn Backend<E>,
    ws: &mut Workspace<E>,
) -> Result<Plane<E>, String> {
    if a.cols != b.rows {
        return Err(RuntimeError::ShapeMismatch {
            op: "matmul",
            lhs: (a.rows, a.cols),
            rhs: (b.rows, b.cols),
        }
        .to_string());
    }
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let mut data = ws.take(m * n);
    backend.matmul(a.data, b.data, &mut data, m, k, n);
    Ok(Plane::from_vec(m, n, data))
}

/// Fused `x·W + b` (bias broadcast over rows), workspace-fed — the
/// matmul and the bias add happen in the same order the tape's
/// separate ops used, so values match bit-for-bit.
fn matmul_add_bias_ws<E: Element>(
    x: PlaneRef<'_, E>,
    w: PlaneRef<'_, E>,
    b: PlaneRef<'_, E>,
    backend: &dyn Backend<E>,
    ws: &mut Workspace<E>,
) -> Result<Plane<E>, String> {
    if x.cols != w.rows {
        return Err(RuntimeError::ShapeMismatch {
            op: "matmul",
            lhs: (x.rows, x.cols),
            rhs: (w.rows, w.cols),
        }
        .to_string());
    }
    if b.rows != 1 || b.cols != w.cols {
        return Err(RuntimeError::ShapeMismatch {
            op: "add_bias",
            lhs: (x.rows, w.cols),
            rhs: (b.rows, b.cols),
        }
        .to_string());
    }
    let (m, k, n) = (x.rows, x.cols, w.cols);
    let mut data = ws.take(m * n);
    backend.matmul_add_bias(x.data, w.data, b.data, &mut data, m, k, n);
    Ok(Plane::from_vec(m, n, data))
}

/// `Graph::outer_sum` value semantics: `out[i][j] = u[i] + v[j]`.
fn outer_sum_ws<E: Element>(u: &Plane<E>, v: &Plane<E>, ws: &mut Workspace<E>) -> Plane<E> {
    debug_assert_eq!(u.cols(), 1, "outer_sum: u must be a column vector");
    debug_assert_eq!(v.cols(), 1, "outer_sum: v must be a column vector");
    let (rows, cols) = (u.rows(), v.rows());
    let mut data = ws.take(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            data[i * cols + j] = u.as_slice()[i] + v.as_slice()[j];
        }
    }
    Plane::from_vec(rows, cols, data)
}

/// Horizontal concatenation `[a | b]`, workspace-fed.
fn hcat_ws<E: Element>(a: &Plane<E>, b: &Plane<E>, ws: &mut Workspace<E>) -> Plane<E> {
    debug_assert_eq!(a.rows(), b.rows(), "hcat: row mismatch");
    let (rows, ac, bc) = (a.rows(), a.cols(), b.cols());
    let mut data = ws.take(rows * (ac + bc));
    for r in 0..rows {
        data[r * (ac + bc)..r * (ac + bc) + ac].copy_from_slice(a.row(r));
        data[r * (ac + bc) + ac..(r + 1) * (ac + bc)].copy_from_slice(b.row(r));
    }
    Plane::from_vec(rows, ac + bc, data)
}

/// One attention head, value-only (`GatHead::forward` minus the tape).
fn gat_head_forward_ws<E: Element>(
    head: &PlanGatHead<E>,
    x: &Plane<E>,
    mask: &Plane<E>,
    leaky_slope: E,
    backend: &dyn Backend<E>,
    ws: &mut Workspace<E>,
) -> Result<Plane<E>, String> {
    let wx = matmul_ws(x.view(), head.w.view(), backend, ws)?;
    let s_l = matmul_ws(wx.view(), head.a_left.view(), backend, ws)?;
    let s_r = matmul_ws(wx.view(), head.a_right.view(), backend, ws)?;
    let mut logits = outer_sum_ws(&s_l, &s_r, ws);
    ws.give(s_l.into_vec());
    ws.give(s_r.into_vec());
    leaky_relu_in_place(&mut logits, leaky_slope);
    let mut attn_data = ws.take(logits.len());
    backend.masked_softmax_rows(
        logits.as_slice(),
        mask.as_slice(),
        &mut attn_data,
        logits.rows(),
        logits.cols(),
    );
    let attn = Plane::from_vec(logits.rows(), logits.cols(), attn_data);
    ws.give(logits.into_vec());
    let out = matmul_ws(attn.view(), wx.view(), backend, ws)?;
    ws.give(attn.into_vec());
    ws.give(wx.into_vec());
    Ok(out)
}

/// One GAT layer, value-only (`GatLayer::forward` minus the tape).
/// A zero-head layer is a corrupt artifact, reported as an error.
fn gat_layer_forward_ws<E: Element>(
    layer: &PlanGatLayer<E>,
    x: &Plane<E>,
    mask: &Plane<E>,
    backend: &dyn Backend<E>,
    ws: &mut Workspace<E>,
) -> Result<Plane<E>, String> {
    let mut out: Option<Plane<E>> = None;
    for head in &layer.heads {
        let mut h = gat_head_forward_ws(head, x, mask, layer.leaky_slope, backend, ws)?;
        relu_in_place(&mut h);
        out = Some(match out {
            None => h,
            Some(acc) => {
                let cat = hcat_ws(&acc, &h, ws);
                ws.give(acc.into_vec());
                ws.give(h.into_vec());
                cat
            }
        });
    }
    out.ok_or_else(|| "gat layer has no heads (corrupt snapshot)".to_string())
}

/// Convenience: sanity-check an engine against a snapshot's own
/// reference features. Returns the max absolute deviation between the
/// fast path and the batch path — `Ok(0.0)` for a well-formed artifact.
pub fn fast_vs_batch_deviation(engine: &Engine) -> Result<f64, String> {
    let x = &engine.artifact().reference_features;
    let batch = engine.predict_batch(x)?;
    let mut worst = 0.0f64;
    for i in 0..engine.num_companies() {
        let fast = engine.predict_company(i, x.row(i))?;
        worst = worst.max((fast - batch[(i, 0)]).abs());
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_fixture;

    #[test]
    fn batch_path_matches_model_predict_bitwise() {
        let fx = trained_fixture(41);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let want = fx.model.predict(&fx.artifact.reference_features);
        let got = engine.predict_batch(&fx.artifact.reference_features).unwrap();
        assert_eq!(want.shape(), got.shape());
        for i in 0..want.rows() {
            assert_eq!(
                want[(i, 0)].to_bits(),
                got[(i, 0)].to_bits(),
                "row {i}: {} vs {}",
                want[(i, 0)],
                got[(i, 0)]
            );
        }
    }

    #[test]
    fn batch_path_matches_on_fresh_features() {
        // Not just the export-time features: any same-shape batch must
        // agree with the tape, to well under the 1e-10 acceptance bound.
        let fx = trained_fixture(42);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let fresh = fx.artifact.reference_features.map(|v| v * 1.25 + 0.03);
        let want = fx.model.predict(&fresh);
        let got = engine.predict_batch(&fresh).unwrap();
        for i in 0..want.rows() {
            assert!(
                (want[(i, 0)] - got[(i, 0)]).abs() < 1e-10,
                "row {i}: {} vs {}",
                want[(i, 0)],
                got[(i, 0)]
            );
        }
    }

    #[test]
    fn slave_weights_match_model() {
        let fx = trained_fixture(43);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let x = &fx.artifact.reference_features;
        let (want_beta, want_beta_v) = fx.model.slave_weights(x);
        let (got_beta, got_beta_v) = engine.slave_weights_batch(x).unwrap();
        for (a, b) in [(&want_beta, &got_beta), (&want_beta_v, &got_beta_v)] {
            assert_eq!(a.shape(), b.shape());
            for i in 0..a.rows() {
                for j in 0..a.cols() {
                    assert_eq!(a[(i, j)].to_bits(), b[(i, j)].to_bits());
                }
            }
        }
    }

    #[test]
    fn fast_path_equals_batch_at_reference_features() {
        let fx = trained_fixture(44);
        let engine = Engine::new(fx.artifact).unwrap();
        assert_eq!(fast_vs_batch_deviation(&engine).unwrap(), 0.0);
    }

    #[test]
    fn hot_path_is_allocation_free_after_warm_up() {
        // One warm-up call populates the workspace arena; every later
        // request must add zero fresh allocations (the arena counter is
        // the acceptance gauge — it counts in debug and release alike).
        let fx = trained_fixture(46);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let x = &fx.artifact.reference_features;
        let mut ws = Workspace::new();
        let warm = engine.predict_batch_with(x, &Seq, &mut ws).unwrap();
        ws.give(warm.into_vec());
        let (allocs_after_warmup, _) = ws.counters();
        for _ in 0..5 {
            let pred = engine.predict_batch_with(x, &Seq, &mut ws).unwrap();
            ws.give(pred.into_vec());
        }
        let (allocs, _) = ws.counters();
        assert_eq!(allocs, allocs_after_warmup, "prediction hot path allocated after warm-up");
    }

    #[test]
    fn f32_hot_path_is_allocation_free_after_warm_up() {
        // The mixed-precision path pools through two arenas (f32
        // scratch, f64 output); both must stop allocating once warm.
        let fx = trained_fixture(46);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let x = &fx.artifact.reference_features;
        let mut ws32: Workspace<f32> = Workspace::new();
        let mut ws: Workspace<f64> = Workspace::new();
        let warm =
            engine.predict_batch_f32_deadline(x, &SimdSeq, &mut ws32, &mut ws, None).unwrap();
        ws.give(warm.into_vec());
        let warm32 = ws32.counters().0;
        let warm64 = ws.counters().0;
        for _ in 0..5 {
            let pred =
                engine.predict_batch_f32_deadline(x, &SimdSeq, &mut ws32, &mut ws, None).unwrap();
            ws.give(pred.into_vec());
        }
        assert_eq!(ws32.counters().0, warm32, "f32 arena allocated after warm-up");
        assert_eq!(ws.counters().0, warm64, "f64 arena allocated after warm-up");
    }

    #[test]
    fn f32_path_tracks_f64_within_documented_epsilon() {
        // DESIGN.md §14: the quantized path must stay within
        // rel 1e-4 · |prediction| + abs 1e-4 of the f64 path.
        let fx = trained_fixture(50);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let x = &fx.artifact.reference_features;
        let want = engine.predict_batch(x).unwrap();
        let got = engine.predict_batch_f32(x).unwrap();
        assert_eq!(want.shape(), got.shape());
        for i in 0..want.rows() {
            let (w, g) = (want[(i, 0)], got[(i, 0)]);
            let tol = 1e-4 * w.abs() + 1e-4;
            assert!((w - g).abs() <= tol, "row {i}: f64 {w} vs f32 {g} (tol {tol})");
        }
    }

    #[test]
    fn f32_path_rejects_non_finite_input_as_bad_request() {
        let fx = trained_fixture(50);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let mut x = fx.artifact.reference_features.clone();
        x[(0, 0)] = f64::NAN;
        let mut ws32: Workspace<f32> = Workspace::new();
        let mut ws: Workspace<f64> = Workspace::new();
        let err =
            engine.predict_batch_f32_deadline(&x, &SimdSeq, &mut ws32, &mut ws, None).unwrap_err();
        assert!(matches!(err, PredictError::BadRequest(_)), "{err}");
        assert!(!err.is_engine_failure());
    }

    #[test]
    fn batch_path_on_par_backend_is_bit_identical() {
        let fx = trained_fixture(47);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let x = &fx.artifact.reference_features;
        let want = engine.predict_batch(x).unwrap();
        let par = ams_tensor::runtime::Par::new(4);
        let mut ws = Workspace::new();
        let got = engine.predict_batch_with(x, &par, &mut ws).unwrap();
        for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn fallback_is_rebuilt_for_pre_fallback_artifacts() {
        let fx = trained_fixture(48);
        let with = Engine::new(fx.artifact.clone()).unwrap();
        let mut stripped = fx.artifact.clone();
        stripped.fallback = None;
        let without = Engine::new(stripped).unwrap();
        // Rebuilt last-good predictions equal the exported ones bitwise
        // (both are the batch path at the reference features).
        let (a, b) = (&with.fallback().last_good, &without.fallback().last_good);
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fallback_predict_is_total() {
        let fx = trained_fixture(48);
        let engine = Engine::new(fx.artifact).unwrap();
        let d = engine.feature_width();
        // Every corner of the ladder yields a finite number.
        assert!(engine.fallback_predict(Some(0), Some(&vec![0.5; d])).is_finite());
        assert!(engine.fallback_predict(Some(0), Some(&vec![f64::NAN; d])).is_finite());
        assert!(engine.fallback_predict(Some(0), Some(&[1.0])).is_finite()); // wrong width
        assert!(engine.fallback_predict(Some(usize::MAX), None).is_finite());
        assert!(engine.fallback_predict(None, None).is_finite());
        // Known company with unusable features serves its last-good.
        let got = engine.fallback_predict(Some(2), Some(&vec![f64::INFINITY; d]));
        assert_eq!(got.to_bits(), engine.fallback().last_good[(2, 0)].to_bits());
    }

    #[test]
    fn expired_deadline_aborts_between_stages() {
        let fx = trained_fixture(49);
        let engine = Engine::new(fx.artifact.clone()).unwrap();
        let x = &fx.artifact.reference_features;
        let mut ws = Workspace::new();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let err = engine.predict_batch_deadline(x, &Seq, &mut ws, Some(past)).unwrap_err();
        assert_eq!(err, PredictError::DeadlineExceeded);
        assert!(!err.is_engine_failure(), "a slow request is not a sick model");
        // A generous deadline does not disturb the result.
        let far = Instant::now() + std::time::Duration::from_secs(60);
        let want = engine.predict_batch(x).unwrap();
        let got = engine.predict_batch_deadline(x, &Seq, &mut ws, Some(far)).unwrap();
        for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn typed_errors_classify_caller_vs_engine() {
        let fx = trained_fixture(49);
        let engine = Engine::new(fx.artifact).unwrap();
        let d = engine.feature_width();
        let err = engine.predict_company_checked(10_000, &vec![0.0; d]).unwrap_err();
        assert!(matches!(err, PredictError::BadRequest(_)), "{err}");
        let mut ws = Workspace::new();
        let err =
            engine.predict_batch_deadline(&Matrix::zeros(1, d), &Seq, &mut ws, None).unwrap_err();
        assert!(matches!(err, PredictError::BadRequest(_)), "{err}");
        assert!(!err.is_engine_failure());
    }

    #[test]
    fn corrupt_snapshot_is_an_engine_failure() {
        let fx = trained_fixture(49);
        let mut artifact = fx.artifact.clone();
        // Flip a generator weight to NaN: the forward pass completes
        // but produces a non-finite prediction.
        let layer = artifact.snapshot.gen.last_mut().expect("generator layers");
        layer.w[(0, 0)] = f64::NAN;
        let engine = Engine::new(artifact).unwrap();
        let mut ws = Workspace::new();
        let err = engine
            .predict_batch_deadline(&fx.artifact.reference_features, &Seq, &mut ws, None)
            .unwrap_err();
        assert!(err.is_engine_failure(), "{err}");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let fx = trained_fixture(45);
        let engine = Engine::new(fx.artifact).unwrap();
        assert!(engine.predict_company(10_000, &vec![0.0; engine.feature_width()]).is_err());
        assert!(engine.predict_company(0, &[1.0]).is_err());
        assert!(engine.predict_batch(&Matrix::zeros(1, engine.feature_width())).is_err());
        assert!(engine.predict_batch(&Matrix::zeros(engine.num_companies(), 1)).is_err());
        assert!(engine.slave_weights_row(10_000).is_err());
    }
}
