//! The AMS prediction server.
//!
//! ```text
//! serve [--addr 127.0.0.1:7878] [--workers 4]
//!       [--backend seq|par|par:N|simd|f32|f32:SPEC]
//!       [--artifact PATH]... [--demo] [--seed 7]
//!       [--queue 64] [--idle-timeout-ms 30000] [--deadline-ms 0]
//! ```
//!
//! `--backend f32` (or `f32:seq`, `f32:par:N`, `f32:simd`) serves
//! batch predictions from the quantized mixed-precision path — within
//! the documented epsilon of the f64 result, not bit-identical; see
//! DESIGN.md §14.
//!
//! With `--artifact`, loads and publishes each artifact — either a
//! plain JSON export or a checksummed `AMS-ART` file written by
//! `ModelArtifact::write_file` (corruption is detected and refused) —
//! repeat the flag to publish several models/versions. With `--demo`
//! (or no artifacts at all), trains a small model on a seeded synthetic
//! universe and publishes it as `ams-demo` v1. Speak JSON lines to the
//! printed address; see the README "Serving" section for the protocol.

use ams_serve::{demo, ModelArtifact, Registry, Server, ServerConfig, ARTIFACT_MAGIC};
use std::sync::Arc;

struct Args {
    addr: String,
    workers: usize,
    backend: Option<String>,
    artifacts: Vec<String>,
    demo: bool,
    seed: u64,
    queue: usize,
    idle_timeout_ms: u64,
    deadline_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        workers: 4,
        backend: None,
        artifacts: Vec::new(),
        demo: false,
        seed: 7,
        queue: 64,
        idle_timeout_ms: 30_000,
        deadline_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--backend" => args.backend = Some(value("--backend")?),
            // ams-lint: allow(no-unbounded-queue-in-serve) — bounded by argv length
            "--artifact" => args.artifacts.push(value("--artifact")?),
            "--demo" => args.demo = true,
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--queue" => {
                args.queue = value("--queue")?.parse().map_err(|e| format!("--queue: {e}"))?;
            }
            "--idle-timeout-ms" => {
                args.idle_timeout_ms = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?;
            }
            "--deadline-ms" => {
                args.deadline_ms =
                    value("--deadline-ms")?.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: serve [--addr HOST:PORT] [--workers N] \
                     [--backend seq|par|par:N|simd|f32|f32:SPEC] \
                     [--artifact PATH]... [--demo] [--seed N] [--queue N] \
                     [--idle-timeout-ms MS] [--deadline-ms MS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // Sizing knobs came off the command line — clamp them so a
    // fat-fingered `--queue 9999999999` costs a warning-sized queue,
    // not the number's worth of preallocated memory.
    args.workers = args.workers.clamp(1, MAX_WORKERS);
    args.queue = args.queue.clamp(1, MAX_QUEUE);
    Ok(args)
}

/// Ceiling on `--workers`: one thread per worker.
const MAX_WORKERS: usize = 1024;
/// Ceiling on `--queue`: each slot holds a pending request.
const MAX_QUEUE: usize = 1 << 16;

/// Load a plain-JSON or checksummed (`AMS-ART` framed) artifact file.
fn load_artifact(path: &str) -> Result<ModelArtifact, String> {
    let head = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if head.starts_with(ARTIFACT_MAGIC.as_bytes()) {
        return ModelArtifact::read_file(std::path::Path::new(path));
    }
    let json = String::from_utf8(head).map_err(|e| format!("{path}: not UTF-8: {e}"))?;
    ModelArtifact::from_json(&json)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };

    let registry = Arc::new(Registry::new());
    for path in &args.artifacts {
        let artifact = match load_artifact(path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("serve: {path}: {e}");
                std::process::exit(1);
            }
        };
        let (name, version) = (artifact.name.clone(), artifact.version);
        match registry.publish(artifact) {
            Ok(engine) => println!(
                "published {name} v{version} ({} companies, width {})",
                engine.num_companies(),
                engine.feature_width()
            ),
            Err(e) => {
                eprintln!("serve: publish {name} v{version}: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.demo || args.artifacts.is_empty() {
        println!("training demo model (seed {})...", args.seed);
        let bundle = demo::train_demo(args.seed);
        let engine = registry.publish(bundle.artifact).expect("demo artifact publishes");
        println!(
            "published {} v{} ({} companies, width {})",
            engine.artifact().name,
            engine.artifact().version,
            engine.num_companies(),
            engine.feature_width()
        );
    }

    let server = match Server::start(
        ServerConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            backend: args.backend.clone(),
            queue_capacity: args.queue,
            idle_timeout_ms: args.idle_timeout_ms,
            default_deadline_ms: args.deadline_ms,
            faults: None,
        },
        registry,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "listening on {} with {} workers (JSON lines; try {{\"type\":\"health\"}})",
        server.local_addr(),
        args.workers
    );
    // Serve until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
