//! Concurrent load generator for the `serve` binary.
//!
//! ```text
//! loadgen [--addr 127.0.0.1:7878] [--connections 8] [--duration 5] [--mode predict|slave_weights]
//! ```
//!
//! Opens N persistent connections, sends single-company requests as
//! fast as the server answers them, and reports total throughput plus
//! mean/p50/p99 latency measured client-side.
//!
//! Refused or interrupted connections (including server-side sheds
//! under overload) are retried with bounded, jittered exponential
//! backoff; the summary reports how many retries the run needed. A
//! worker that panics loses its samples but never takes down the run —
//! join errors are collected and reported, not propagated.

use ams_serve::net::{backoff, JsonlConn, Timeouts};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reconnect attempts before a worker gives up.
const MAX_RETRIES: u32 = 5;

/// Socket budgets: a quick connect, generous read (responses queue
/// behind other clients under load), bounded write.
fn timeouts() -> Timeouts {
    Timeouts {
        connect: Duration::from_millis(500),
        read: Duration::from_secs(10),
        write: Duration::from_secs(10),
    }
}

struct Args {
    addr: String,
    connections: usize,
    duration_secs: u64,
    mode: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        connections: 8,
        duration_secs: 5,
        mode: "predict".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--connections" => {
                args.connections =
                    value("--connections")?.parse().map_err(|e| format!("--connections: {e}"))?;
            }
            "--duration" => {
                args.duration_secs =
                    value("--duration")?.parse().map_err(|e| format!("--duration: {e}"))?;
            }
            "--mode" => args.mode = value("--mode")?,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--addr HOST:PORT] [--connections N] \
                     [--duration SECONDS] [--mode predict|slave_weights]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.mode != "predict" && args.mode != "slave_weights" {
        return Err(format!("--mode must be predict or slave_weights, got `{}`", args.mode));
    }
    // One thread per connection: clamp the command-line count so a
    // typo'd `--connections` cannot ask for a million threads.
    args.connections = args.connections.clamp(1, MAX_CONNECTIONS);
    Ok(args)
}

/// Ceiling on `--connections`.
const MAX_CONNECTIONS: usize = 4096;

/// One round trip: write a request line, read the response line.
fn round_trip(
    conn: &mut JsonlConn,
    request: &str,
    line: &mut String,
) -> Result<serde::Value, String> {
    conn.round_trip_into(request, line)?;
    serde_json::from_str(line.trim()).map_err(|e| format!("bad response: {e}"))
}

/// [`JsonlConn::connect_str`] with bounded, jittered retry — a refused
/// connection (full backlog, shed burst) earns up to [`MAX_RETRIES`]
/// more tries.
fn connect_with_retry(addr: &str, salt: u64, retries: &AtomicU64) -> Result<JsonlConn, String> {
    let mut attempt = 0u32;
    loop {
        match JsonlConn::connect_str(addr, &timeouts()) {
            Ok(c) => return Ok(c),
            Err(e) if attempt < MAX_RETRIES => {
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff(attempt, salt));
                attempt += 1;
                let _ = e;
            }
            Err(e) => return Err(format!("{e} (after {MAX_RETRIES} retries)")),
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };

    // Discover the published model's shape from a health probe.
    let mut probe = match JsonlConn::connect_str(&args.addr, &timeouts()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
    };
    let mut line = String::new();
    let health = round_trip(&mut probe, r#"{"type":"health"}"#, &mut line).unwrap_or_else(|e| {
        eprintln!("loadgen: health probe failed: {e}");
        std::process::exit(1);
    });
    let models = health.get("models").and_then(serde::Value::as_array).unwrap_or(&[]);
    let first = models.first().unwrap_or_else(|| {
        eprintln!("loadgen: server has no published models");
        std::process::exit(1);
    });
    let model = first.get("name").and_then(serde::Value::as_str).unwrap_or("ams-demo").to_string();
    let companies =
        first.get("companies").and_then(serde::Value::as_f64).unwrap_or(1.0).max(1.0) as usize;
    let width =
        first.get("feature_width").and_then(serde::Value::as_f64).unwrap_or(1.0).max(1.0) as usize;
    println!(
        "target {} · model {model} · {companies} companies · feature width {width} · \
         {} connections · {}s · mode {}",
        args.addr, args.connections, args.duration_secs, args.mode
    );

    // A fixed synthetic feature row; the server does the same work
    // regardless of the values.
    let features: Vec<String> =
        (0..width).map(|j| format!("{:.3}", 0.1 + 0.01 * j as f64)).collect();
    let features = features.join(",");

    let deadline = Instant::now() + Duration::from_secs(args.duration_secs);
    let failed = Arc::new(AtomicBool::new(false));
    let retries = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..args.connections.max(1))
        .map(|conn_id| {
            let addr = args.addr.clone();
            let model = model.clone();
            let mode = args.mode.clone();
            let features = features.clone();
            let failed = Arc::clone(&failed);
            let retries = Arc::clone(&retries);
            std::thread::spawn(move || -> Vec<u64> {
                let salt = conn_id as u64;
                let mut conn = match connect_with_retry(&addr, salt, &retries) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("loadgen[{conn_id}]: {e}");
                        failed.store(true, Ordering::Relaxed);
                        return Vec::new();
                    }
                };
                let mut latencies = Vec::with_capacity(1 << 16);
                let mut line = String::new();
                let mut company = conn_id;
                while Instant::now() < deadline {
                    let request = match mode.as_str() {
                        "predict" => format!(
                            r#"{{"type":"predict","model":"{model}","company":{company},"features":[{features}]}}"#
                        ),
                        _ => format!(
                            r#"{{"type":"slave_weights","model":"{model}","company":{company}}}"#
                        ),
                    };
                    let started = Instant::now();
                    match round_trip(&mut conn, &request, &mut line) {
                        Ok(resp) => {
                            let ok = resp.get("ok").and_then(serde::Value::as_bool) == Some(true);
                            let shed =
                                resp.get("shed").and_then(serde::Value::as_bool) == Some(true);
                            if shed {
                                // Overload shed closes the connection;
                                // reconnect with backoff and continue.
                                retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(backoff(0, salt));
                                match connect_with_retry(&addr, salt, &retries) {
                                    Ok(c) => conn = c,
                                    Err(e) => {
                                        eprintln!("loadgen[{conn_id}]: {e}");
                                        failed.store(true, Ordering::Relaxed);
                                        return latencies;
                                    }
                                }
                                continue;
                            }
                            if !ok {
                                eprintln!("loadgen[{conn_id}]: error response: {}", line.trim());
                                failed.store(true, Ordering::Relaxed);
                                return latencies;
                            }
                        }
                        Err(_) => {
                            // The connection died mid-request (server
                            // restart, truncation, reset): reconnect
                            // with backoff rather than aborting the run.
                            match connect_with_retry(&addr, salt, &retries) {
                                Ok(c) => conn = c,
                                Err(e) => {
                                    eprintln!("loadgen[{conn_id}]: {e}");
                                    failed.store(true, Ordering::Relaxed);
                                    return latencies;
                                }
                            }
                            continue;
                        }
                    }
                    // ams-lint: allow(no-unbounded-queue-in-serve) — bounded by run duration
                    latencies.push(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    company = (company + 1) % companies;
                }
                latencies
            })
        })
        .collect();

    // Collect join errors instead of propagating a worker's panic: the
    // run reports what it measured, plus how many workers died.
    let mut all: Vec<u64> = Vec::new();
    let mut panicked = 0usize;
    for (i, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(latencies) => all.extend(latencies),
            Err(_) => {
                panicked += 1;
                eprintln!("loadgen: worker {i} panicked; its samples are lost");
            }
        }
    }

    if all.is_empty() {
        eprintln!("loadgen: no successful requests");
        std::process::exit(1);
    }
    all.sort_unstable();
    let total = all.len();
    let throughput = total as f64 / args.duration_secs.max(1) as f64;
    let mean = all.iter().sum::<u64>() as f64 / total as f64;
    let quantile = |q: f64| all[((total as f64 * q) as usize).min(total - 1)];
    println!(
        "{total} requests in {}s → {:.0} req/s · latency mean {:.1} µs · p50 {:.1} µs · \
         p99 {:.1} µs · {} retries · {panicked} workers panicked",
        args.duration_secs,
        throughput,
        mean / 1_000.0,
        quantile(0.50) as f64 / 1_000.0,
        quantile(0.99) as f64 / 1_000.0,
        retries.load(Ordering::Relaxed),
    );
    if failed.load(Ordering::Relaxed) || panicked > 0 {
        std::process::exit(1);
    }
}
