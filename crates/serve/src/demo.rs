//! End-to-end demo/fixture builder: synthesize a small universe, train
//! an AMS model the same way the evaluation harness does (train-split
//! standardization, leakage-safe correlation graph), and export a
//! [`ModelArtifact`].
//!
//! Used by the `serve --demo` quickstart, the crate's unit tests and
//! the workspace integration tests, so they all exercise one code
//! path.

use crate::artifact::{ModelArtifact, Provenance};
use ams_core::{AmsConfig, AmsModel, QuarterBatch};
use ams_data::{generate, FeatureSet, Standardizer, SynthConfig};
use ams_graph::{CompanyGraph, GraphConfig};
use ams_tensor::Matrix;

/// Everything the demo training run produces. `artifact` embeds copies
/// of the other fields; they are exposed separately so tests can
/// compare the served path against the in-process model.
pub struct TrainedBundle {
    /// The exported artifact (reference features = the test quarter).
    pub artifact: ModelArtifact,
    /// The in-process fitted model the artifact was exported from.
    pub model: AmsModel,
    /// Standardized test-quarter features (one row per company).
    pub test_x: Matrix,
    /// Standardized test-quarter labels.
    pub test_y: Matrix,
}

/// Train a small AMS on a seeded synthetic universe and export it.
///
/// The schedule mirrors one fold of the paper's expanding window:
/// quarters `k..=7` train, quarter 8 validates, quarter 9 is the test
/// quarter whose features become the artifact's reference features.
pub fn train_demo(seed: u64) -> TrainedBundle {
    let synth = generate(&SynthConfig::tiny(seed));
    let panel = &synth.panel;
    let k = 4;
    let fs = FeatureSet::build(panel, k);
    let (val_q, test_q) = (8, 9);

    let train_quarters: Vec<usize> = (k..val_q).collect();
    let train_ids = fs.samples_at_quarters(&train_quarters);
    let st = Standardizer::fit(&fs, &train_ids);
    let z = st.transform(&fs);

    // Correlation graph from revenue history strictly before the test
    // quarter (§III-C leakage discipline).
    let graph =
        CompanyGraph::from_series(&panel.all_revenue_series(0, test_q), GraphConfig::default());

    let batch_at = |t: usize| {
        let ids = z.samples_at_quarter(t);
        let (x, rows, cols, y) = z.design(&ids);
        QuarterBatch { x: Matrix::from_vec(rows, cols, x), y: Matrix::from_vec(rows, 1, y) }
    };
    let train: Vec<QuarterBatch> = train_quarters.iter().map(|&t| batch_at(t)).collect();
    let val = batch_at(val_q);
    let test = batch_at(test_q);

    // Slave model on a leading slice of the continuous block — small so
    // the demo trains in well under a second, and a strict subset so
    // the slave-column projection path is exercised end to end.
    let config = AmsConfig {
        nt_hidden: vec![16],
        gen_hidden: vec![16],
        epochs: 40,
        dropout: 0.0,
        slave_cols: Some((0..8).collect()),
        seed,
        ..AmsConfig::default()
    };
    let mut model = AmsModel::new(config);
    model.fit_with_validation(&graph, &train, Some(&val));

    let artifact = ModelArtifact::export(
        "ams-demo",
        1,
        &model,
        &graph,
        Some(&st),
        &fs.names,
        &test.x,
        Provenance {
            created_by: "ams-serve demo".to_string(),
            description: format!("synthetic tiny universe, seed {seed}, test quarter {test_q}"),
            seed,
        },
    );
    TrainedBundle { artifact, model, test_x: test.x, test_y: test.y }
}
