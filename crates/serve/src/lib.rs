//! # ams-serve — the inference half of the train/serve stack
//!
//! Training (in `ams-core`) ends with a fitted `AmsModel` that dies
//! with the process. This crate makes the trained model a deployable
//! unit:
//!
//! * [`artifact`] — versioned, serde-serializable [`ModelArtifact`]
//!   (weights, anchored LR, materialized per-company slave weights,
//!   standardization stats, CSR correlation graph, provenance), with
//!   the format version checked on load;
//! * [`engine`] — [`Engine`], a tape-free forward-only scorer: the
//!   exact arithmetic of `AmsModel::predict` on plain matrices, with a
//!   single-company dot-product fast path;
//! * [`registry`] — [`Registry`], named + versioned engines with
//!   atomic hot-swap under live traffic, checksum-verified file
//!   publishes, and a per-name circuit breaker;
//! * [`breaker`] — [`CircuitBreaker`], closed/open/half-open per-model
//!   protection against deterministic engine failures;
//! * [`server`] — [`Server`], a `std::net` TCP JSON-lines prediction
//!   service on a fixed worker pool with graceful shutdown, bounded
//!   admission (explicit shed), per-request deadlines, and graceful
//!   degradation to the artifact's fallback predictor;
//! * [`metrics`] — [`Metrics`], atomic counters and a latency
//!   histogram exposed through the `stats` request;
//! * [`net`] — shared client-side JSONL framing with explicit
//!   connect/read/write timeouts and jittered backoff, used by
//!   `loadgen` and the cluster router (crates/cluster);
//! * [`demo`] — train-and-export on a seeded synthetic universe (the
//!   `serve --demo` quickstart and the test fixture).
//!
//! Binaries: `serve` (the server) and `loadgen` (a concurrent client
//! reporting throughput and p50/p99 latency). See the README's
//! "Serving" section for the wire protocol.

pub mod artifact;
pub mod breaker;
pub mod demo;
pub mod engine;
pub mod metrics;
pub mod net;
pub mod plan;
pub mod registry;
pub mod server;

pub use artifact::{FallbackModel, ModelArtifact, Provenance, ARTIFACT_MAGIC, FORMAT_VERSION};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use engine::{Engine, PredictError};
pub use metrics::{Metrics, MetricsSnapshot};
pub use net::{JsonlConn, Timeouts};
pub use plan::{ForwardPlan, Plane, PlaneRef};
pub use registry::Registry;
pub use server::{Server, ServerConfig};

#[cfg(test)]
pub(crate) mod testutil {
    pub use crate::demo::TrainedBundle;

    /// Train the demo fixture (small enough for unit tests).
    pub fn trained_fixture(seed: u64) -> TrainedBundle {
        crate::demo::train_demo(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_fixture;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::Arc;

    fn send(stream: &mut TcpStream, request: &str) -> serde::Value {
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        serde_json::from_str(&line).unwrap()
    }

    #[test]
    fn server_round_trip_all_request_types() {
        let fx = trained_fixture(61);
        let registry = Arc::new(Registry::new());
        registry.publish(fx.artifact.clone()).unwrap();
        let server = Server::start(
            ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..Default::default() },
            Arc::clone(&registry),
        )
        .unwrap();
        let addr = server.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();

        // health
        let health = send(&mut conn, r#"{"type":"health"}"#);
        assert_eq!(health.get("ok").and_then(serde::Value::as_bool), Some(true));
        assert_eq!(health.get("status").and_then(serde::Value::as_str), Some("healthy"));

        // predict (model-space features) matches the engine exactly.
        let engine = registry.get("ams-demo").unwrap();
        let x = &fx.artifact.reference_features;
        let feat_json: Vec<String> = x.row(3).iter().map(|v| format!("{v}")).collect();
        let req = format!(
            r#"{{"type":"predict","model":"ams-demo","company":3,"features":[{}]}}"#,
            feat_json.join(",")
        );
        let resp = send(&mut conn, &req);
        assert_eq!(resp.get("ok").and_then(serde::Value::as_bool), Some(true));
        let served = resp.get("prediction").and_then(serde::Value::as_f64).unwrap();
        let local = engine.predict_company(3, x.row(3)).unwrap();
        assert_eq!(served.to_bits(), local.to_bits());

        // slave_weights
        let resp = send(&mut conn, r#"{"type":"slave_weights","company":0}"#);
        assert_eq!(resp.get("ok").and_then(serde::Value::as_bool), Some(true));
        let weights = resp.get("weights").and_then(serde::Value::as_array).unwrap();
        assert_eq!(weights.len(), fx.artifact.slave_weights.cols());

        // An unknown company is out-of-domain: answered from the
        // fallback, tagged degraded — not an error, not a closed
        // connection.
        let resp = send(&mut conn, r#"{"type":"predict","company":9999,"features":[]}"#);
        assert_eq!(resp.get("ok").and_then(serde::Value::as_bool), Some(true));
        assert_eq!(resp.get("degraded").and_then(serde::Value::as_bool), Some(true));
        assert!(resp.get("prediction").and_then(serde::Value::as_f64).unwrap().is_finite());

        // errors come back per-request, connection stays usable.
        let resp = send(&mut conn, "this is not json");
        assert_eq!(resp.get("ok").and_then(serde::Value::as_bool), Some(false));
        let resp = send(&mut conn, r#"{"type":"flarp"}"#);
        assert_eq!(resp.get("ok").and_then(serde::Value::as_bool), Some(false));

        // stats reflect the traffic above.
        let resp = send(&mut conn, r#"{"type":"stats"}"#);
        assert_eq!(resp.get("ok").and_then(serde::Value::as_bool), Some(true));
        let stats = resp.get("stats").unwrap();
        let requests = stats.get("requests").and_then(serde::Value::as_f64).unwrap();
        assert!(requests >= 6.0, "requests = {requests}");
        let errors = stats.get("errors").and_then(serde::Value::as_f64).unwrap();
        assert!(errors >= 2.0, "errors = {errors}");
        let degraded = stats.get("degraded").and_then(serde::Value::as_f64).unwrap();
        assert!(degraded >= 1.0, "degraded = {degraded}");

        drop(conn);
        server.shutdown();
    }

    #[test]
    fn server_shutdown_joins_cleanly() {
        let registry = Arc::new(Registry::new());
        let server = Server::start(
            ServerConfig { addr: "127.0.0.1:0".into(), workers: 1, ..Default::default() },
            registry,
        )
        .unwrap();
        // No traffic at all: shutdown must still join promptly.
        server.shutdown();
    }
}
