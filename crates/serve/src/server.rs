//! Concurrent TCP prediction server, `std::net` only.
//!
//! Wire protocol: JSON lines. Each request is one JSON object on one
//! line; each response is one JSON object on one line. Connections are
//! persistent — a client may pipeline many requests. Floats travel as
//! shortest-round-trip JSON numbers, so a served prediction is
//! bit-for-bit the engine's output.
//!
//! Requests (`model` may be omitted when exactly one model is
//! published; `version` pins an older retained version; `deadline_ms`
//! bounds how long the server may spend on this request):
//!
//! ```text
//! {"type":"predict","model":"ams","company":3,"features":[...]}
//! {"type":"predict","company":3,"features":[...],"raw":true}
//! {"type":"batch_predict","features":[[...],[...],...],"deadline_ms":50}
//! {"type":"multi_predict","requests":[{"company":3,"features":[...]},...]}
//! {"type":"slave_weights","company":3}
//! {"type":"health"}
//! {"type":"stats"}
//! ```
//!
//! Responses: `{"ok":true,...}` or `{"ok":false,"error":"..."}` — a
//! bad request gets an error response on its line, never a dropped
//! connection or a panic.
//!
//! ## Overload and degradation
//!
//! Admission is bounded: when [`ServerConfig::queue_capacity`]
//! connections are already waiting, a new connection receives an
//! explicit `{"ok":false,"shed":true,...}` line and is closed instead
//! of queueing without bound. Per-model circuit breakers (see
//! [`crate::breaker`]) trip after consecutive engine failures; while a
//! breaker is open — and for any out-of-domain input (non-finite
//! features, unknown company) — predictions are served from the
//! artifact's fallback predictor and tagged `"degraded":true` with a
//! `degraded_reason`. The `health` response reports each model as
//! `healthy`, `degraded`, or `open-circuit`.

use crate::engine::{Engine, PredictError};
use crate::metrics::Metrics;
use crate::net::{read_line_bounded, BoundedLine, MAX_LINE_BYTES};
use crate::registry::Registry;
use ams_fault::{apply_delay, corrupt_bytes, flip_non_finite, FaultAction, FaultPlan, FaultSite};
use ams_tensor::runtime::{Backend, BackendChoice, Workspace};
use serde::Value;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a blocked read wakes to check shutdown and idle time.
const READ_TICK: Duration = Duration::from_millis(100);

/// Server settings.
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Fixed worker-thread count (min 1).
    pub workers: usize,
    /// Execution backend spec (`"seq"`, `"par"`, `"par:N"`, `"simd"`,
    /// `"f32"`, `"f32:SPEC"`); `None` means sequential. The f64 specs
    /// all produce bit-identical predictions — they only choose how the
    /// kernels execute. A `"f32"` prefix switches batch prediction to
    /// the quantized mixed-precision path (DESIGN.md §14): `"f32"`
    /// alone runs it on the vectorized `simd` backend, `"f32:seq"` /
    /// `"f32:par:N"` pick the execution strategy explicitly. Results
    /// stay within the documented epsilon of the f64 path, not
    /// bit-identical; single-company predicts are untouched.
    pub backend: Option<String>,
    /// Bounded admission queue: connections beyond this many waiting
    /// are shed with an explicit response (min 1).
    pub queue_capacity: usize,
    /// Close a connection idle for this long, counting it in
    /// `idle_disconnects`; `0` disables the idle timeout.
    pub idle_timeout_ms: u64,
    /// Default per-request deadline; `0` means none. A request's
    /// `deadline_ms` field overrides it.
    pub default_deadline_ms: u64,
    /// Fault-injection plan for chaos testing; `None` (the production
    /// default) injects nothing.
    pub faults: Option<Arc<dyn FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            backend: None,
            queue_capacity: 64,
            idle_timeout_ms: 30_000,
            default_deadline_ms: 0,
            faults: None,
        }
    }
}

/// Everything a worker needs per request, shared across the pool.
struct Shared {
    registry: Arc<Registry>,
    metrics: Arc<Metrics>,
    backend: Arc<dyn Backend>,
    /// `Some` puts batch prediction on the quantized f32 path, run on
    /// this backend; `None` (the default) keeps the bit-exact f64 path.
    backend_f32: Option<Arc<dyn Backend<f32>>>,
    shutdown: Arc<AtomicBool>,
    idle_timeout: Option<Duration>,
    default_deadline: Option<Duration>,
    faults: Arc<dyn FaultPlan>,
}

/// A running prediction server. Dropping without [`Server::shutdown`]
/// detaches the threads; call `shutdown` for a clean stop.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Metrics>,
}

impl Server {
    /// Bind, spawn the acceptor and the worker pool, and return.
    pub fn start(config: ServerConfig, registry: Arc<Registry>) -> std::io::Result<Self> {
        let bad_spec = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, e);
        // An `f32` prefix selects the precision; the remainder (default
        // `simd`) selects the execution strategy for that precision.
        type Backends = (Arc<dyn Backend>, Option<Arc<dyn Backend<f32>>>);
        let (backend, backend_f32): Backends = match config.backend.as_deref() {
            None => (ams_tensor::runtime::seq(), None),
            Some("f32") => (ams_tensor::runtime::seq(), Some(BackendChoice::Simd.create_f32())),
            Some(spec) => match spec.strip_prefix("f32:") {
                Some(rest) => {
                    let choice = BackendChoice::parse(rest)
                        .map_err(|e| bad_spec(format!("f32 backend: {e}")))?;
                    (ams_tensor::runtime::seq(), Some(choice.create_f32()))
                }
                None => (
                    BackendChoice::parse(spec).map_err(|e| bad_spec(e.to_string()))?.create(),
                    None,
                ),
            },
        };
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::new());
        let shared = Arc::new(Shared {
            registry,
            metrics: Arc::clone(&metrics),
            backend,
            backend_f32,
            shutdown: Arc::clone(&shutdown),
            idle_timeout: match config.idle_timeout_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            default_deadline: match config.default_deadline_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            faults: config.faults.unwrap_or_else(|| Arc::new(ams_fault::NoFaults)),
        });

        // Bounded admission: the acceptor sheds (with an explicit
        // response) once this many connections are waiting, so a burst
        // degrades into fast refusals instead of unbounded memory
        // growth and unbounded queueing delay.
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            mpsc::sync_channel(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &shared))
            })
            .collect();

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_metrics = Arc::clone(&metrics);
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => match tx.try_send(s) {
                        Ok(()) => {}
                        Err(TrySendError::Full(s)) => shed_connection(s, &accept_metrics),
                        Err(TrySendError::Disconnected(_)) => break,
                    },
                    Err(_) => continue,
                }
            }
            // `tx` drops here: workers drain the queue and exit.
        });

        Ok(Self { local_addr, shutdown, accept_handle: Some(accept_handle), workers, metrics })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared metrics handle.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Graceful shutdown: stop accepting, let workers finish the
    /// request they are on, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection — connected
        // then dropped, never read from, so only the connect is bounded.
        // ams-lint: allow(no-connect-without-timeout) — write-less nudge, no read to time out
        let _ = TcpStream::connect_timeout(&self.local_addr, READ_TICK);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Refuse one connection with an explicit shed line, then close it.
/// The client sees *why* it was refused instead of a silent hang.
fn shed_connection(mut stream: TcpStream, metrics: &Metrics) {
    metrics.record_shed();
    let _ = stream.set_nodelay(true);
    let _ = stream.write_all(
        b"{\"ok\":false,\"shed\":true,\"error\":\"server overloaded: connection shed\"}\n",
    );
    let _ = stream.flush();
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Shared) {
    // Per-worker scratch arenas (one per precision): request handling
    // borrows them mutably, so buffers recycle across every request
    // this worker serves and the prediction hot path stops allocating
    // once warm. The f32 arena stays empty unless the server runs the
    // mixed-precision path.
    let mut ws = Workspace::new();
    let mut ws32: Workspace<f32> = Workspace::new();
    loop {
        // Hold the queue lock only while dequeuing; the timeout lets the
        // worker notice shutdown even when no connections arrive.
        let conn = {
            // A poisoned queue lock means a sibling worker panicked
            // while dequeuing; the receiver is still usable, so recover
            // instead of taking the whole pool down.
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv_timeout(Duration::from_millis(50))
        };
        match conn {
            Ok(stream) => handle_connection(stream, shared, &mut ws, &mut ws32),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    shared: &Shared,
    ws: &mut Workspace,
    ws32: &mut Workspace<f32>,
) {
    if stream.set_nodelay(true).is_err() {
        shared.metrics.record_config_error();
    }
    // A finite read timeout keeps an idle connection from pinning its
    // worker past shutdown (and drives the idle-timeout accounting). A
    // refused timeout is a real degradation — this connection can now
    // pin its worker — so it is counted, not ignored.
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        shared.metrics.record_config_error();
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut idle = Duration::ZERO;
    loop {
        // The buffer is cleared after each processed line, not here: a
        // timeout tick leaves partial bytes that the next call resumes.
        match read_line_bounded(&mut reader, &mut line, MAX_LINE_BYTES) {
            Ok(BoundedLine::Line(_)) => idle = Duration::ZERO,
            Ok(BoundedLine::Closed) => return, // client closed
            Ok(BoundedLine::TooLarge) => {
                // A line past the cap cannot be re-synchronized (the
                // rest of it would parse as garbage requests): refuse
                // with a typed error, then close.
                shared.metrics.record("oversized", Duration::ZERO, true);
                let refusal = format!(
                    "{{\"ok\":false,\"error\":\"request line exceeded {MAX_LINE_BYTES} bytes\"}}\n"
                );
                let _ = writer.write_all(refusal.as_bytes());
                let _ = writer.flush();
                return;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                idle += READ_TICK;
                if let Some(limit) = shared.idle_timeout {
                    if idle >= limit {
                        shared.metrics.record_idle_disconnect();
                        return;
                    }
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            line.clear();
            continue;
        }
        // Injected faults (NoFaults in production — every decide() is
        // None): a stalled client, corrupted request bytes, a slow
        // worker. The server must absorb all of them without crashing.
        if let Some(FaultAction::Stall { millis }) =
            shared.faults.decide(FaultSite::ConnectionStall)
        {
            apply_delay(millis);
        }
        if let Some(FaultAction::CorruptBytes { xor_seed, density }) =
            shared.faults.decide(FaultSite::RequestBytes)
        {
            let mut bytes = std::mem::take(&mut line).into_bytes();
            corrupt_bytes(&mut bytes, xor_seed, density);
            line = String::from_utf8_lossy(&bytes).into_owned();
        }
        if let Some(FaultAction::Delay { millis }) = shared.faults.decide(FaultSite::WorkerDelay) {
            apply_delay(millis);
        }
        let started = Instant::now();
        let (kind, response) = handle_request(line.trim(), shared, ws, ws32);
        let is_error = matches!(response.get("ok").and_then(Value::as_bool), Some(false) | None);
        shared.metrics.record(&kind, started.elapsed(), is_error);
        let mut encoded = serde_json::to_string(&response).unwrap_or_else(|_| {
            r#"{"ok":false,"error":"internal: response serialization failed"}"#.to_string()
        });
        // ams-lint: allow(no-unbounded-queue-in-serve) — one newline per response
        encoded.push('\n');
        if let Some(FaultAction::Truncate) = shared.faults.decide(FaultSite::ConnectionTruncate) {
            // Simulate the connection dying mid-response.
            let _ = writer.write_all(&encoded.as_bytes()[..encoded.len() / 2]);
            return;
        }
        if writer.write_all(encoded.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
    }
}

/// Dispatch one request line. Returns `(request kind, response)`;
/// every failure path becomes an `{"ok":false,...}` response.
fn handle_request(
    line: &str,
    shared: &Shared,
    ws: &mut Workspace,
    ws32: &mut Workspace<f32>,
) -> (String, Value) {
    let parsed: Result<Value, _> = serde_json::from_str(line);
    let request = match parsed {
        Ok(v) => v,
        Err(e) => return ("invalid".to_string(), error_response(&format!("invalid JSON: {e}"))),
    };
    let kind = request.get("type").and_then(Value::as_str).unwrap_or("missing").to_string();
    // Per-request deadline: the request's own budget wins over the
    // server default; the clock starts when handling starts.
    let deadline = request
        .get("deadline_ms")
        .and_then(Value::as_f64)
        .filter(|&ms| ms > 0.0)
        .map(|ms| Duration::from_millis(ms as u64))
        .or(shared.default_deadline)
        .map(|budget| Instant::now() + budget);
    let response = match kind.as_str() {
        "predict" => handle_predict(&request, shared, deadline),
        "multi_predict" => handle_multi_predict(&request, shared, deadline),
        "batch_predict" => handle_batch_predict(&request, shared, ws, ws32, deadline),
        "slave_weights" => handle_slave_weights(&request, &shared.registry),
        "health" => Ok(handle_health(&shared.registry)),
        "stats" => Ok(Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("stats".to_string(), serde::Serialize::to_value(&shared.metrics.snapshot())),
        ])),
        other => Err(format!("unknown request type `{other}`")),
    };
    (kind, response.unwrap_or_else(|e| error_response(&e)))
}

fn error_response(message: &str) -> Value {
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::String(message.to_string())),
    ])
}

/// Resolve the engine a request addresses.
fn resolve_engine(request: &Value, registry: &Registry) -> Result<Arc<Engine>, String> {
    let version = request.get("version").and_then(Value::as_f64);
    match request.get("model").and_then(Value::as_str) {
        Some(name) => match version {
            Some(v) => registry
                .get_version(name, v as u64)
                .ok_or_else(|| format!("no model `{name}` at version {v}")),
            None => registry.get(name).ok_or_else(|| format!("no model `{name}`")),
        },
        None => {
            let names = registry.list();
            match names.as_slice() {
                [] => Err("no models published".to_string()),
                [(only, _, _)] => registry.get(only).ok_or_else(|| format!("no model `{only}`")),
                _ => Err(format!("`model` required ({} models published)", names.len())),
            }
        }
    }
}

fn features_field(request: &Value) -> Result<Vec<f64>, String> {
    let raw = request.get("features").ok_or_else(|| "missing `features`".to_string())?;
    serde::Deserialize::from_value(raw).map_err(|e| format!("bad `features`: {e}"))
}

fn company_field(request: &Value) -> Result<usize, String> {
    let v = request
        .get("company")
        .and_then(Value::as_f64)
        .ok_or_else(|| "missing `company`".to_string())?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("bad `company` {v}"));
    }
    Ok(v as usize)
}

fn deadline_expired(deadline: Option<Instant>) -> bool {
    matches!(deadline, Some(d) if Instant::now() >= d)
}

/// Build a degraded (`"degraded":true`) single-company response from
/// the engine's fallback ladder. Infallible by construction.
fn degraded_predict(
    engine: &Engine,
    company: usize,
    features: &[f64],
    standardizer: Option<&ams_data::Standardizer>,
    reason: &str,
    metrics: &Metrics,
) -> Value {
    metrics.record_degraded();
    let feats = if features.len() == engine.feature_width() { Some(features) } else { None };
    let mut prediction = engine.fallback_predict(Some(company), feats);
    if let Some(st) = standardizer {
        prediction = st.destandardize_label(prediction);
    }
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("degraded".to_string(), Value::Bool(true)),
        ("degraded_reason".to_string(), Value::String(reason.to_string())),
        ("model".to_string(), Value::String(engine.artifact().name.clone())),
        ("version".to_string(), Value::Number(engine.artifact().version as f64)),
        ("company".to_string(), Value::Number(company as f64)),
        ("prediction".to_string(), Value::Number(prediction)),
    ])
}

/// The degradation ladder, in order:
/// 1. malformed request → error response (no health signal);
/// 2. out-of-domain input (non-finite features, unknown company) →
///    fallback, tagged degraded — the *model* is fine;
/// 3. open circuit → fallback, tagged degraded, engine untouched;
/// 4. expired deadline → explicit deadline error;
/// 5. engine failure → breaker takes a failure, request still answered
///    from the fallback, tagged degraded.
fn handle_predict(
    request: &Value,
    shared: &Shared,
    deadline: Option<Instant>,
) -> Result<Value, String> {
    let engine = resolve_engine(request, &shared.registry)?;
    predict_resolved(&engine, request, shared, deadline)
}

/// Coalesced single predictions: the cluster router's micro-batching
/// endpoint. The engine resolves once per envelope; each element runs
/// the full [`handle_predict`] ladder independently, so one malformed
/// or out-of-domain element degrades (or errors) on its own slot and
/// never poisons its batch-mates. `results[i]` answers `requests[i]`.
fn handle_multi_predict(
    request: &Value,
    shared: &Shared,
    deadline: Option<Instant>,
) -> Result<Value, String> {
    let engine = resolve_engine(request, &shared.registry)?;
    let elements = request
        .get("requests")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing `requests`".to_string())?;
    let mut results = Vec::with_capacity(elements.len());
    for element in elements {
        let resp = predict_resolved(&engine, element, shared, deadline)
            .unwrap_or_else(|e| error_response(&e));
        results.push(resp);
    }
    Ok(Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("model".to_string(), Value::String(engine.artifact().name.clone())),
        ("version".to_string(), Value::Number(engine.artifact().version as f64)),
        ("results".to_string(), Value::Array(results)),
    ]))
}

/// The per-request body of [`handle_predict`], after engine
/// resolution — shared with [`handle_multi_predict`].
fn predict_resolved(
    engine: &Arc<Engine>,
    request: &Value,
    shared: &Shared,
    deadline: Option<Instant>,
) -> Result<Value, String> {
    let company = company_field(request)?;
    let mut features = features_field(request)?;
    // Injected fault: out-of-domain feature values. Exercises the same
    // path a poisoned upstream panel would.
    if let Some(FaultAction::FlipNonFinite { flips, kind_seed }) =
        shared.faults.decide(FaultSite::Features)
    {
        flip_non_finite(&mut features, flips, kind_seed);
    }
    let raw = request.get("raw").and_then(Value::as_bool).unwrap_or(false);
    // Resolve the standardizer once so raw-space handling has a single
    // fallible step instead of a checked lookup plus a later unwrap.
    let standardizer =
        if raw {
            Some(engine.artifact().standardizer.as_ref().ok_or_else(|| {
                "model has no standardizer; send model-space features".to_string()
            })?)
        } else {
            None
        };
    if let Some(st) = standardizer {
        if features.len() != st.width() {
            return Err(format!("feature width {} != model width {}", features.len(), st.width()));
        }
        st.transform_row(&mut features);
    }
    // Out-of-domain input: degraded answer, no breaker involvement.
    if company >= engine.num_companies() {
        return Ok(degraded_predict(
            engine,
            company,
            &features,
            standardizer,
            "unknown company",
            &shared.metrics,
        ));
    }
    if features.len() != engine.feature_width() {
        return Err(format!(
            "feature width {} != model width {}",
            features.len(),
            engine.feature_width()
        ));
    }
    if features.iter().any(|v| !v.is_finite()) {
        return Ok(degraded_predict(
            engine,
            company,
            &features,
            standardizer,
            "non-finite features",
            &shared.metrics,
        ));
    }
    if deadline_expired(deadline) {
        shared.metrics.record_deadline_exceeded();
        return Err("deadline exceeded".to_string());
    }
    // All validation passed: from here on, every admitted request
    // reports a success or a failure back to the breaker.
    let breaker = shared.registry.breaker(&engine.artifact().name);
    if let Some(b) = &breaker {
        if !b.allow() {
            return Ok(degraded_predict(
                engine,
                company,
                &features,
                standardizer,
                "circuit open",
                &shared.metrics,
            ));
        }
    }
    match engine.predict_company_checked(company, &features) {
        Ok(mut prediction) => {
            if let Some(b) = &breaker {
                b.record_success();
            }
            if let Some(st) = standardizer {
                prediction = st.destandardize_label(prediction);
            }
            Ok(Value::Object(vec![
                ("ok".to_string(), Value::Bool(true)),
                ("model".to_string(), Value::String(engine.artifact().name.clone())),
                ("version".to_string(), Value::Number(engine.artifact().version as f64)),
                ("company".to_string(), Value::Number(company as f64)),
                ("prediction".to_string(), Value::Number(prediction)),
            ]))
        }
        Err(PredictError::Engine(_)) => {
            if let Some(b) = &breaker {
                b.record_failure();
            }
            Ok(degraded_predict(
                engine,
                company,
                &features,
                standardizer,
                "engine error",
                &shared.metrics,
            ))
        }
        // Unreachable after the validation above, but classified
        // defensively: a caller mistake is not an engine failure.
        Err(e) => {
            if let Some(b) = &breaker {
                b.release_probe();
            }
            Err(e.to_string())
        }
    }
}

/// Degraded batch answer: every row through the fallback ladder.
fn degraded_batch(
    engine: &Engine,
    x: &ams_tensor::Matrix,
    standardizer: Option<&ams_data::Standardizer>,
    reason: &str,
    metrics: &Metrics,
) -> Value {
    metrics.record_degraded();
    let out: Vec<Value> = (0..x.rows())
        .map(|i| {
            let mut p = engine.fallback_predict(Some(i), Some(x.row(i)));
            if let Some(st) = standardizer {
                p = st.destandardize_label(p);
            }
            Value::Number(p)
        })
        .collect();
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("degraded".to_string(), Value::Bool(true)),
        ("degraded_reason".to_string(), Value::String(reason.to_string())),
        ("model".to_string(), Value::String(engine.artifact().name.clone())),
        ("version".to_string(), Value::Number(engine.artifact().version as f64)),
        ("predictions".to_string(), Value::Array(out)),
    ])
}

fn handle_batch_predict(
    request: &Value,
    shared: &Shared,
    ws: &mut Workspace,
    ws32: &mut Workspace<f32>,
    deadline: Option<Instant>,
) -> Result<Value, String> {
    let engine = resolve_engine(request, &shared.registry)?;
    let rows_value = request.get("features").ok_or_else(|| "missing `features`".to_string())?;
    let rows: Vec<Vec<f64>> =
        serde::Deserialize::from_value(rows_value).map_err(|e| format!("bad `features`: {e}"))?;
    let n = engine.num_companies();
    if rows.len() != n {
        return Err(format!("batch has {} rows but the model has {n} companies", rows.len()));
    }
    let d = engine.feature_width();
    let raw = request.get("raw").and_then(Value::as_bool).unwrap_or(false);
    let standardizer =
        if raw {
            Some(engine.artifact().standardizer.as_ref().ok_or_else(|| {
                "model has no standardizer; send model-space features".to_string()
            })?)
        } else {
            None
        };
    // The feature matrix comes from (and returns to) the worker's
    // arena: only JSON parsing and response building allocate, the
    // inference path itself is allocation-free once the arena is warm.
    let mut flat = ws.take(n * d);
    flat.clear();
    for (i, mut row) in rows.into_iter().enumerate() {
        if row.len() != d {
            ws.give(flat);
            return Err(format!("row {i} has width {} (expected {d})", row.len()));
        }
        if let Some(st) = standardizer {
            st.transform_row(&mut row);
        }
        flat.extend_from_slice(&row);
    }
    if let Some(FaultAction::FlipNonFinite { flips, kind_seed }) =
        shared.faults.decide(FaultSite::Features)
    {
        flip_non_finite(&mut flat, flips, kind_seed);
    }
    let x = ams_tensor::Matrix::from_vec(n, d, flat);
    // Out-of-domain batch: degraded answer, no breaker involvement.
    if x.as_slice().iter().any(|v| !v.is_finite()) {
        let resp =
            degraded_batch(&engine, &x, standardizer, "non-finite features", &shared.metrics);
        ws.give(x.into_vec());
        return Ok(resp);
    }
    if deadline_expired(deadline) {
        shared.metrics.record_deadline_exceeded();
        ws.give(x.into_vec());
        return Err("deadline exceeded".to_string());
    }
    let breaker = shared.registry.breaker(&engine.artifact().name);
    if let Some(b) = &breaker {
        if !b.allow() {
            let resp = degraded_batch(&engine, &x, standardizer, "circuit open", &shared.metrics);
            ws.give(x.into_vec());
            return Ok(resp);
        }
    }
    // Precision dispatch: the f32 backend (when configured) serves the
    // batch on the quantized plan; otherwise the bit-exact f64 path.
    // Both return f64 predictions, so everything downstream is shared.
    let attempt = match &shared.backend_f32 {
        Some(b32) => engine.predict_batch_f32_deadline(&x, b32.as_ref(), ws32, ws, deadline),
        None => engine.predict_batch_deadline(&x, shared.backend.as_ref(), ws, deadline),
    };
    let pred = match attempt {
        Ok(p) => {
            if let Some(b) = &breaker {
                b.record_success();
            }
            p
        }
        Err(PredictError::DeadlineExceeded) => {
            // The probe (if this was one) ended without a verdict.
            if let Some(b) = &breaker {
                b.release_probe();
            }
            shared.metrics.record_deadline_exceeded();
            ws.give(x.into_vec());
            return Err("deadline exceeded".to_string());
        }
        Err(PredictError::Engine(_)) => {
            if let Some(b) = &breaker {
                b.record_failure();
            }
            let resp = degraded_batch(&engine, &x, standardizer, "engine error", &shared.metrics);
            ws.give(x.into_vec());
            return Ok(resp);
        }
        Err(e @ PredictError::BadRequest(_)) => {
            if let Some(b) = &breaker {
                b.release_probe();
            }
            ws.give(x.into_vec());
            return Err(e.to_string());
        }
    };
    ws.give(x.into_vec());
    let out: Vec<Value> = (0..n)
        .map(|i| {
            let mut p = pred[(i, 0)];
            if let Some(st) = standardizer {
                p = st.destandardize_label(p);
            }
            Value::Number(p)
        })
        .collect();
    ws.give(pred.into_vec());
    Ok(Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("model".to_string(), Value::String(engine.artifact().name.clone())),
        ("version".to_string(), Value::Number(engine.artifact().version as f64)),
        ("predictions".to_string(), Value::Array(out)),
    ]))
}

fn handle_slave_weights(request: &Value, registry: &Registry) -> Result<Value, String> {
    let engine = resolve_engine(request, registry)?;
    let company = company_field(request)?;
    let weights = engine.slave_weights_row(company)?;
    let names = engine.slave_feature_names();
    Ok(Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("company".to_string(), Value::Number(company as f64)),
        ("weights".to_string(), Value::Array(weights.iter().map(|&w| Value::Number(w)).collect())),
        ("feature_names".to_string(), Value::Array(names.into_iter().map(Value::String).collect())),
    ]))
}

fn handle_health(registry: &Registry) -> Value {
    let mut all_healthy = true;
    let models: Vec<Value> = registry
        .list()
        .into_iter()
        .map(|(name, version, retained)| {
            let state = registry.health_state(&name).unwrap_or("healthy");
            all_healthy &= state == "healthy";
            let mut fields = vec![
                ("name".to_string(), Value::String(name.clone())),
                ("version".to_string(), Value::Number(version as f64)),
                ("retained_versions".to_string(), Value::Number(retained as f64)),
                ("state".to_string(), Value::String(state.to_string())),
            ];
            if let Some(engine) = registry.get(&name) {
                fields
                    .push(("companies".to_string(), Value::Number(engine.num_companies() as f64)));
                fields.push((
                    "feature_width".to_string(),
                    Value::Number(engine.feature_width() as f64),
                ));
            }
            Value::Object(fields)
        })
        .collect();
    let status = if all_healthy { "healthy" } else { "degraded" };
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("status".to_string(), Value::String(status.to_string())),
        ("models".to_string(), Value::Array(models)),
    ])
}
