//! Concurrent TCP prediction server, `std::net` only.
//!
//! Wire protocol: JSON lines. Each request is one JSON object on one
//! line; each response is one JSON object on one line. Connections are
//! persistent — a client may pipeline many requests. Floats travel as
//! shortest-round-trip JSON numbers, so a served prediction is
//! bit-for-bit the engine's output.
//!
//! Requests (`model` may be omitted when exactly one model is
//! published; `version` pins an older retained version):
//!
//! ```text
//! {"type":"predict","model":"ams","company":3,"features":[...]}
//! {"type":"predict","company":3,"features":[...],"raw":true}
//! {"type":"batch_predict","features":[[...],[...],...]}
//! {"type":"slave_weights","company":3}
//! {"type":"health"}
//! {"type":"stats"}
//! ```
//!
//! Responses: `{"ok":true,...}` or `{"ok":false,"error":"..."}` — a
//! bad request gets an error response on its line, never a dropped
//! connection or a panic.

use crate::engine::Engine;
use crate::metrics::Metrics;
use crate::registry::Registry;
use ams_tensor::runtime::{Backend, BackendChoice, Workspace};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server settings.
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Fixed worker-thread count (min 1).
    pub workers: usize,
    /// Execution backend spec (`"seq"`, `"par"`, `"par:N"`); `None`
    /// means sequential. All backends produce bit-identical
    /// predictions — this only chooses how the kernels execute.
    pub backend: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { addr: "127.0.0.1:0".to_string(), workers: 4, backend: None }
    }
}

/// A running prediction server. Dropping without [`Server::shutdown`]
/// detaches the threads; call `shutdown` for a clean stop.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Metrics>,
}

impl Server {
    /// Bind, spawn the acceptor and the worker pool, and return.
    pub fn start(config: ServerConfig, registry: Arc<Registry>) -> std::io::Result<Self> {
        let backend: Arc<dyn Backend> = match &config.backend {
            Some(spec) => BackendChoice::parse(spec)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?
                .create(),
            None => ams_tensor::runtime::seq(),
        };
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::new());

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let registry = Arc::clone(&registry);
                let metrics = Arc::clone(&metrics);
                let shutdown = Arc::clone(&shutdown);
                let backend = Arc::clone(&backend);
                std::thread::spawn(move || {
                    worker_loop(&rx, &registry, &metrics, &shutdown, &backend)
                })
            })
            .collect();

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // `tx` drops here: workers drain the queue and exit.
        });

        Ok(Self { local_addr, shutdown, accept_handle: Some(accept_handle), workers, metrics })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared metrics handle.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Graceful shutdown: stop accepting, let workers finish the
    /// request they are on, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    registry: &Registry,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    backend: &Arc<dyn Backend>,
) {
    // Per-worker scratch arena: request handling borrows it mutably,
    // so buffers recycle across every request this worker serves and
    // the prediction hot path stops allocating once warm.
    let mut ws = Workspace::new();
    loop {
        // Hold the queue lock only while dequeuing; the timeout lets the
        // worker notice shutdown even when no connections arrive.
        let conn = {
            // A poisoned queue lock means a sibling worker panicked
            // while dequeuing; the receiver is still usable, so recover
            // instead of taking the whole pool down.
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv_timeout(Duration::from_millis(50))
        };
        match conn {
            Ok(stream) => handle_connection(stream, registry, metrics, shutdown, backend, &mut ws),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    backend: &Arc<dyn Backend>,
    ws: &mut Workspace,
) {
    let _ = stream.set_nodelay(true);
    // A finite read timeout keeps an idle connection from pinning its
    // worker past shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let (kind, response) = handle_request(line.trim(), registry, metrics, backend, ws);
        let is_error = matches!(response.get("ok").and_then(Value::as_bool), Some(false) | None);
        metrics.record(&kind, started.elapsed(), is_error);
        let mut encoded = serde_json::to_string(&response).unwrap_or_else(|_| {
            r#"{"ok":false,"error":"internal: response serialization failed"}"#.to_string()
        });
        encoded.push('\n');
        if writer.write_all(encoded.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Dispatch one request line. Returns `(request kind, response)`;
/// every failure path becomes an `{"ok":false,...}` response.
fn handle_request(
    line: &str,
    registry: &Registry,
    metrics: &Metrics,
    backend: &Arc<dyn Backend>,
    ws: &mut Workspace,
) -> (String, Value) {
    let parsed: Result<Value, _> = serde_json::from_str(line);
    let request = match parsed {
        Ok(v) => v,
        Err(e) => return ("invalid".to_string(), error_response(&format!("invalid JSON: {e}"))),
    };
    let kind = request.get("type").and_then(Value::as_str).unwrap_or("missing").to_string();
    let response = match kind.as_str() {
        "predict" => handle_predict(&request, registry),
        "batch_predict" => handle_batch_predict(&request, registry, backend, ws),
        "slave_weights" => handle_slave_weights(&request, registry),
        "health" => Ok(handle_health(registry)),
        "stats" => Ok(Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("stats".to_string(), serde::Serialize::to_value(&metrics.snapshot())),
        ])),
        other => Err(format!("unknown request type `{other}`")),
    };
    (kind, response.unwrap_or_else(|e| error_response(&e)))
}

fn error_response(message: &str) -> Value {
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::String(message.to_string())),
    ])
}

/// Resolve the engine a request addresses.
fn resolve_engine(request: &Value, registry: &Registry) -> Result<Arc<Engine>, String> {
    let version = request.get("version").and_then(Value::as_f64);
    match request.get("model").and_then(Value::as_str) {
        Some(name) => match version {
            Some(v) => registry
                .get_version(name, v as u64)
                .ok_or_else(|| format!("no model `{name}` at version {v}")),
            None => registry.get(name).ok_or_else(|| format!("no model `{name}`")),
        },
        None => {
            let names = registry.list();
            match names.as_slice() {
                [] => Err("no models published".to_string()),
                [(only, _, _)] => registry.get(only).ok_or_else(|| format!("no model `{only}`")),
                _ => Err(format!("`model` required ({} models published)", names.len())),
            }
        }
    }
}

fn features_field(request: &Value) -> Result<Vec<f64>, String> {
    let raw = request.get("features").ok_or_else(|| "missing `features`".to_string())?;
    serde::Deserialize::from_value(raw).map_err(|e| format!("bad `features`: {e}"))
}

fn company_field(request: &Value) -> Result<usize, String> {
    let v = request
        .get("company")
        .and_then(Value::as_f64)
        .ok_or_else(|| "missing `company`".to_string())?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("bad `company` {v}"));
    }
    Ok(v as usize)
}

fn handle_predict(request: &Value, registry: &Registry) -> Result<Value, String> {
    let engine = resolve_engine(request, registry)?;
    let company = company_field(request)?;
    let mut features = features_field(request)?;
    let raw = request.get("raw").and_then(Value::as_bool).unwrap_or(false);
    // Resolve the standardizer once so raw-space handling has a single
    // fallible step instead of a checked lookup plus a later unwrap.
    let standardizer =
        if raw {
            Some(engine.artifact().standardizer.as_ref().ok_or_else(|| {
                "model has no standardizer; send model-space features".to_string()
            })?)
        } else {
            None
        };
    if let Some(st) = standardizer {
        if features.len() != st.width() {
            return Err(format!("feature width {} != model width {}", features.len(), st.width()));
        }
        st.transform_row(&mut features);
    }
    let mut prediction = engine.predict_company(company, &features)?;
    if let Some(st) = standardizer {
        prediction = st.destandardize_label(prediction);
    }
    Ok(Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("model".to_string(), Value::String(engine.artifact().name.clone())),
        ("version".to_string(), Value::Number(engine.artifact().version as f64)),
        ("company".to_string(), Value::Number(company as f64)),
        ("prediction".to_string(), Value::Number(prediction)),
    ]))
}

fn handle_batch_predict(
    request: &Value,
    registry: &Registry,
    backend: &Arc<dyn Backend>,
    ws: &mut Workspace,
) -> Result<Value, String> {
    let engine = resolve_engine(request, registry)?;
    let rows_value = request.get("features").ok_or_else(|| "missing `features`".to_string())?;
    let rows: Vec<Vec<f64>> =
        serde::Deserialize::from_value(rows_value).map_err(|e| format!("bad `features`: {e}"))?;
    let n = engine.num_companies();
    if rows.len() != n {
        return Err(format!("batch has {} rows but the model has {n} companies", rows.len()));
    }
    let d = engine.feature_width();
    let raw = request.get("raw").and_then(Value::as_bool).unwrap_or(false);
    let standardizer =
        if raw {
            Some(engine.artifact().standardizer.as_ref().ok_or_else(|| {
                "model has no standardizer; send model-space features".to_string()
            })?)
        } else {
            None
        };
    // The feature matrix comes from (and returns to) the worker's
    // arena: only JSON parsing and response building allocate, the
    // inference path itself is allocation-free once the arena is warm.
    let mut flat = ws.take(n * d);
    flat.clear();
    for (i, mut row) in rows.into_iter().enumerate() {
        if row.len() != d {
            ws.give(flat);
            return Err(format!("row {i} has width {} (expected {d})", row.len()));
        }
        if let Some(st) = standardizer {
            st.transform_row(&mut row);
        }
        flat.extend_from_slice(&row);
    }
    let x = ams_tensor::Matrix::from_vec(n, d, flat);
    let pred = match engine.predict_batch_with(&x, backend.as_ref(), ws) {
        Ok(p) => p,
        Err(e) => {
            ws.give(x.into_vec());
            return Err(e);
        }
    };
    ws.give(x.into_vec());
    let out: Vec<Value> = (0..n)
        .map(|i| {
            let mut p = pred[(i, 0)];
            if let Some(st) = standardizer {
                p = st.destandardize_label(p);
            }
            Value::Number(p)
        })
        .collect();
    ws.give(pred.into_vec());
    Ok(Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("model".to_string(), Value::String(engine.artifact().name.clone())),
        ("version".to_string(), Value::Number(engine.artifact().version as f64)),
        ("predictions".to_string(), Value::Array(out)),
    ]))
}

fn handle_slave_weights(request: &Value, registry: &Registry) -> Result<Value, String> {
    let engine = resolve_engine(request, registry)?;
    let company = company_field(request)?;
    let weights = engine.slave_weights_row(company)?;
    let names = engine.slave_feature_names();
    Ok(Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("company".to_string(), Value::Number(company as f64)),
        ("weights".to_string(), Value::Array(weights.iter().map(|&w| Value::Number(w)).collect())),
        ("feature_names".to_string(), Value::Array(names.into_iter().map(Value::String).collect())),
    ]))
}

fn handle_health(registry: &Registry) -> Value {
    let models: Vec<Value> = registry
        .list()
        .into_iter()
        .map(|(name, version, retained)| {
            let mut fields = vec![
                ("name".to_string(), Value::String(name.clone())),
                ("version".to_string(), Value::Number(version as f64)),
                ("retained_versions".to_string(), Value::Number(retained as f64)),
            ];
            if let Some(engine) = registry.get(&name) {
                fields
                    .push(("companies".to_string(), Value::Number(engine.num_companies() as f64)));
                fields.push((
                    "feature_width".to_string(),
                    Value::Number(engine.feature_width() as f64),
                ));
            }
            Value::Object(fields)
        })
        .collect();
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("status".to_string(), Value::String("healthy".to_string())),
        ("models".to_string(), Value::Array(models)),
    ])
}
