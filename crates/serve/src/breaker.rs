//! Per-model circuit breaker.
//!
//! The registry gives every model entry one [`CircuitBreaker`]. The
//! server records an engine outcome after each prediction: consecutive
//! *engine* failures (non-finite output, corrupt-snapshot errors — not
//! client mistakes, which say nothing about the model's health) trip
//! the breaker open. While open, requests skip the engine entirely and
//! go straight to the fallback predictor; after a cooldown one probe
//! request is let through (half-open), and its outcome decides between
//! closing the breaker and re-opening it for another cooldown.
//!
//! Classic pattern (Nygard, *Release It!*): the point is to stop
//! hammering a deterministically-failing component, shed that load,
//! and re-detect recovery automatically.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Breaker tuning, shared by every entry of a registry.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive engine failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 5, cooldown: Duration::from_secs(1) }
    }
}

/// Observable breaker state, reported through `health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; requests reach the engine.
    Closed,
    /// Tripped; requests go straight to the fallback until the
    /// cooldown elapses.
    Open,
    /// Cooldown elapsed; exactly one probe request is in flight.
    HalfOpen,
}

#[derive(Debug)]
enum Inner {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

/// Thread-safe circuit breaker. All methods take `&self`; the mutex is
/// held only for the few instructions of a state transition.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        Self { config, inner: Mutex::new(Inner::Closed { consecutive_failures: 0 }) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A thread panicking inside these tiny critical sections cannot
        // leave the state torn (each transition is one assignment), so
        // recover rather than poisoning the whole model entry.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// May this request use the engine? `false` means: serve the
    /// fallback instead. When the cooldown has elapsed this admits the
    /// caller as the half-open probe — callers MUST then report the
    /// outcome via [`CircuitBreaker::record_success`] /
    /// [`CircuitBreaker::record_failure`], or the breaker stays
    /// half-open until another probe resolves it.
    pub fn allow(&self) -> bool {
        let mut inner = self.lock();
        match &*inner {
            Inner::Closed { .. } => true,
            Inner::Open { until } => {
                if Instant::now() >= *until {
                    *inner = Inner::HalfOpen;
                    true
                } else {
                    false
                }
            }
            Inner::HalfOpen => false,
        }
    }

    /// Record a successful engine call: closes a half-open breaker,
    /// resets the failure streak.
    pub fn record_success(&self) {
        *self.lock() = Inner::Closed { consecutive_failures: 0 };
    }

    /// Record an engine failure: extends the streak, trips the breaker
    /// at the threshold, re-opens a half-open breaker immediately.
    pub fn record_failure(&self) {
        let mut inner = self.lock();
        let open = Inner::Open { until: Instant::now() + self.config.cooldown };
        match &mut *inner {
            Inner::Closed { consecutive_failures } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.config.failure_threshold {
                    *inner = open;
                }
            }
            Inner::HalfOpen => *inner = open,
            Inner::Open { .. } => {}
        }
    }

    /// The admitted half-open probe ended without a verdict on the
    /// model (e.g. its deadline expired mid-flight): re-open, and probe
    /// again after another cooldown. No-op in every other state.
    pub fn release_probe(&self) {
        let mut inner = self.lock();
        if matches!(&*inner, Inner::HalfOpen) {
            *inner = Inner::Open { until: Instant::now() + self.config.cooldown };
        }
    }

    /// Current state (an open breaker past its cooldown still reads
    /// `Open` until a request probes it).
    pub fn state(&self) -> BreakerState {
        match &*self.lock() {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { .. } => BreakerState::Open,
            Inner::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Consecutive failures while closed (0 when open/half-open); a
    /// non-zero streak reports the model as `degraded` in health.
    pub fn failure_streak(&self) -> u32 {
        match &*self.lock() {
            Inner::Closed { consecutive_failures } => *consecutive_failures,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_breaker(threshold: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(20),
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = fast_breaker(3);
        b.record_failure();
        b.record_failure();
        b.record_success(); // streak broken
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        b.record_failure(); // third consecutive
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn probe_after_cooldown_then_close_on_success() {
        let b = fast_breaker(1);
        b.record_failure();
        assert!(!b.allow());
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow(), "cooldown elapsed: one probe admitted");
        assert!(!b.allow(), "only one probe while half-open");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = fast_breaker(1);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn inconclusive_probe_reopens_without_a_verdict() {
        let b = fast_breaker(1);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow());
        b.release_probe(); // probe's deadline expired: no verdict
        assert_eq!(b.state(), BreakerState::Open);
        // A closed breaker is untouched by a release.
        let c = fast_breaker(1);
        c.release_probe();
        assert_eq!(c.state(), BreakerState::Closed);
        assert!(c.allow());
    }

    #[test]
    fn failure_streak_reports_degradation() {
        let b = fast_breaker(5);
        assert_eq!(b.failure_streak(), 0);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.failure_streak(), 2);
        b.record_success();
        assert_eq!(b.failure_streak(), 0);
    }
}
