//! The trained-model artifact: everything a serving process needs to
//! score companies without retraining — and without the training-side
//! crates' autodiff machinery ever running.
//!
//! An artifact is a single JSON document (floats are written with
//! shortest-round-trip formatting, so parameters survive export →
//! import bit-for-bit). The layout is versioned: [`FORMAT_VERSION`] is
//! embedded on export and checked on load, so a serving binary refuses
//! an artifact written by an incompatible build instead of
//! mis-scoring it.

use ams_core::{AmsModel, ModelSnapshot};
use ams_data::Standardizer;
use ams_graph::CompanyGraph;
use ams_tensor::Matrix;

/// Current artifact layout version. Bump on any breaking change to
/// [`ModelArtifact`] or the structures it embeds. (Additive `Option`
/// fields — like `fallback` — do not need a bump: missing fields read
/// back as `None`.)
pub const FORMAT_VERSION: u32 = 1;

/// Header magic for artifact files written by
/// [`ModelArtifact::write_file`].
pub const ARTIFACT_MAGIC: &str = "AMS-ART";

/// The cheap degraded-mode predictor carried inside an artifact: the
/// anchored LR (a single global linear model, §III-B's `B_acr`) plus
/// every company's last-good prediction from export time. When the GAT
/// engine errors, the circuit is open, or the input is out of domain,
/// the server answers from this instead of failing the request.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FallbackModel {
    /// Anchored-LR weights in slave-column space (`m×1`).
    pub anchor: Matrix,
    /// Per-company predictions at the reference features (`n×1`),
    /// materialized at export.
    pub last_good: Matrix,
}

impl FallbackModel {
    /// Degradation ladder for one company:
    /// 1. finite slave-space features → anchored-LR dot product;
    /// 2. unusable features but a known company → its last-good
    ///    prediction;
    /// 3. neither → the cross-company mean of the last-good vector.
    ///
    /// Always returns a finite number — the whole point of the
    /// fallback is that it cannot itself fail.
    pub fn predict(&self, company: Option<usize>, slave_row: Option<&[f64]>) -> f64 {
        if let Some(row) = slave_row {
            if row.len() == self.anchor.rows() && row.iter().all(|v| v.is_finite()) {
                let dot: f64 = row.iter().zip(self.anchor.as_slice()).map(|(&x, &w)| x * w).sum();
                if dot.is_finite() {
                    return dot;
                }
            }
        }
        if let Some(c) = company {
            if c < self.last_good.rows() {
                let p = self.last_good[(c, 0)];
                if p.is_finite() {
                    return p;
                }
            }
        }
        let n = self.last_good.rows().max(1) as f64;
        let mean = self.last_good.as_slice().iter().filter(|v| v.is_finite()).sum::<f64>() / n;
        if mean.is_finite() {
            mean
        } else {
            0.0
        }
    }
}

/// Where an artifact came from: enough to reproduce or audit it.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Provenance {
    /// Tool that produced the artifact (e.g. `train_and_export`).
    pub created_by: String,
    /// Free-form description (dataset, fold, experiment id…).
    pub description: String,
    /// Training seed, duplicated out of the config for quick audit.
    pub seed: u64,
}

/// A self-contained, versioned export of a fitted AMS model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelArtifact {
    /// Artifact layout version; must equal [`FORMAT_VERSION`] on load.
    pub format_version: u32,
    /// Registry name (e.g. `"ams"`).
    pub name: String,
    /// Monotonically increasing model version within a name.
    pub version: u64,
    /// Learned parameters: node-transform, GAT and generator weights,
    /// the anchored LR `B_acr`, the assembly `β_c`, the training-graph
    /// mask and the full [`ams_core::AmsConfig`].
    pub snapshot: ModelSnapshot,
    /// The correlation graph the model was trained on (CSR form; the
    /// snapshot's dense mask is its materialization).
    pub graph: CompanyGraph,
    /// Train-split standardization stats, when the model was trained on
    /// standardized features. Lets the server accept raw feature rows.
    pub standardizer: Option<Standardizer>,
    /// Feature column names, aligned with the feature width.
    pub feature_names: Vec<String>,
    /// Per-company slave-LR weights `β` (n×m, slave-column space),
    /// materialized at [`ModelArtifact::reference_features`]. The
    /// single-company fast path is a dot product against one row.
    pub slave_weights: Matrix,
    /// The (standardized) feature matrix the slave weights were
    /// materialized at — one row per graph node.
    pub reference_features: Matrix,
    /// Degraded-mode predictor (anchored LR + last-good predictions).
    /// `None` in artifacts written before this field existed; the
    /// engine rebuilds it from the snapshot on load.
    pub fallback: Option<FallbackModel>,
    /// Reproducibility metadata.
    pub provenance: Provenance,
}

impl ModelArtifact {
    /// Export a fitted model. Materializes the per-company slave
    /// weights by running the master once on `reference_features`.
    ///
    /// # Panics
    /// Panics if the model is unfitted or `reference_features` has the
    /// wrong row count (both are caller bugs, not runtime conditions).
    #[allow(clippy::too_many_arguments)] // an export IS the bundling of these inputs
    pub fn export(
        name: &str,
        version: u64,
        model: &AmsModel,
        graph: &CompanyGraph,
        standardizer: Option<&Standardizer>,
        feature_names: &[String],
        reference_features: &Matrix,
        provenance: Provenance,
    ) -> Self {
        let (slave_weights, _beta_v) = model.slave_weights(reference_features);
        let snapshot = model.snapshot();
        let fallback = snapshot.b_acr.as_ref().map(|anchor| FallbackModel {
            anchor: anchor.clone(),
            last_good: model.predict(reference_features),
        });
        Self {
            format_version: FORMAT_VERSION,
            name: name.to_string(),
            version,
            snapshot,
            graph: graph.clone(),
            standardizer: standardizer.cloned(),
            feature_names: feature_names.to_vec(),
            slave_weights,
            reference_features: reference_features.clone(),
            fallback,
            provenance,
        }
    }

    /// Atomically write this artifact to `path` under a checksummed
    /// header (write-temp + fsync + rename), so a crash mid-export
    /// never leaves a torn file and at-rest bit rot is detected on
    /// load instead of silently mis-scoring.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        ams_fault::framed::write_atomic(path, ARTIFACT_MAGIC, &self.to_json())
    }

    /// Read an artifact written by [`ModelArtifact::write_file`],
    /// verifying the checksum before parsing — a corrupted file is
    /// rejected with the frame error, never partially loaded.
    pub fn read_file(path: &std::path::Path) -> Result<Self, String> {
        let body = ams_fault::framed::read_verified(path, ARTIFACT_MAGIC)
            .map_err(|e| format!("artifact {}: {e}", path.display()))?;
        Self::from_json(&body)
    }

    /// Serialize to a JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serialization is infallible")
    }

    /// Parse and validate a JSON artifact. The format version is
    /// checked *before* the full structure is decoded so a future
    /// layout fails with "unsupported version", not a field error.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let value = serde_json::from_str::<serde::Value>(json)
            .map_err(|e| format!("artifact: invalid JSON: {e}"))?;
        let version = value
            .get("format_version")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| "artifact: missing format_version".to_string())?;
        if version != FORMAT_VERSION as f64 {
            return Err(format!(
                "artifact: unsupported format_version {version} (this build reads {FORMAT_VERSION})"
            ));
        }
        let artifact: ModelArtifact =
            serde::Deserialize::from_value(&value).map_err(|e| format!("artifact: {e}"))?;
        artifact.validate()?;
        Ok(artifact)
    }

    /// Cross-field consistency checks, run on every load.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.graph.num_nodes();
        if self.slave_weights.rows() != n {
            return Err(format!(
                "artifact: slave_weights has {} rows but the graph has {n} nodes",
                self.slave_weights.rows()
            ));
        }
        if self.reference_features.rows() != n {
            return Err(format!(
                "artifact: reference_features has {} rows but the graph has {n} nodes",
                self.reference_features.rows()
            ));
        }
        if !self.feature_names.is_empty()
            && self.feature_names.len() != self.reference_features.cols()
        {
            return Err(format!(
                "artifact: {} feature names for width {}",
                self.feature_names.len(),
                self.reference_features.cols()
            ));
        }
        if let Some(st) = &self.standardizer {
            if st.width() != self.reference_features.cols() {
                return Err(format!(
                    "artifact: standardizer width {} != feature width {}",
                    st.width(),
                    self.reference_features.cols()
                ));
            }
        }
        match &self.snapshot.mask {
            Some(mask) if mask.rows() == n && mask.cols() == n => {}
            Some(mask) => {
                return Err(format!(
                    "artifact: mask is {}x{} but the graph has {n} nodes",
                    mask.rows(),
                    mask.cols()
                ))
            }
            None => return Err("artifact: snapshot has no mask (unfitted model?)".to_string()),
        }
        let d = self.reference_features.cols();
        if let Some(cols) = &self.snapshot.config.slave_cols {
            if cols.iter().any(|&c| c >= d) {
                return Err("artifact: slave column index out of feature range".to_string());
            }
            if self.slave_weights.cols() != cols.len() {
                return Err(format!(
                    "artifact: slave_weights width {} != {} slave columns",
                    self.slave_weights.cols(),
                    cols.len()
                ));
            }
        } else if self.slave_weights.cols() != d {
            return Err(format!(
                "artifact: slave_weights width {} != feature width {d}",
                self.slave_weights.cols()
            ));
        }
        Ok(())
    }

    /// Quantize the forward-pass weights to f32 (DESIGN.md §14): every
    /// parameter rounded once, at export/load time, to the nearest f32.
    /// The result is the plan the engine's mixed-precision batch path
    /// executes, and it serializes standalone via
    /// [`crate::plan::ForwardPlan::to_bytes`].
    pub fn quantize_f32(&self) -> Result<crate::plan::ForwardPlan<f32>, String> {
        crate::plan::ForwardPlan::from_artifact(self)
    }

    /// Number of companies (graph nodes) this model scores.
    pub fn num_companies(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Full feature width the model consumes.
    pub fn feature_width(&self) -> usize {
        self.reference_features.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_fixture;

    #[test]
    fn json_round_trip_is_bit_exact() {
        let fx = trained_fixture(31);
        let json = fx.artifact.to_json();
        let back = ModelArtifact::from_json(&json).expect("round trip");
        assert_eq!(back.format_version, FORMAT_VERSION);
        assert_eq!(back.name, fx.artifact.name);
        assert_eq!(back.version, fx.artifact.version);
        assert_eq!(back.graph, fx.artifact.graph);
        assert_eq!(back.feature_names, fx.artifact.feature_names);
        let (a, b) = (&back.slave_weights, &fx.artifact.slave_weights);
        assert_eq!(a.shape(), b.shape());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_eq!(a[(i, j)].to_bits(), b[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn rejects_unknown_format_version() {
        let fx = trained_fixture(32);
        let mut bumped = fx.artifact.clone();
        bumped.format_version = FORMAT_VERSION + 1;
        let err = ModelArtifact::from_json(&bumped.to_json()).unwrap_err();
        assert!(err.contains("unsupported format_version"), "{err}");
    }

    #[test]
    fn rejects_inconsistent_shapes() {
        let fx = trained_fixture(33);
        let mut bad = fx.artifact.clone();
        bad.slave_weights = Matrix::zeros(1, bad.slave_weights.cols());
        let err = ModelArtifact::from_json(&bad.to_json()).unwrap_err();
        assert!(err.contains("slave_weights"), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(ModelArtifact::from_json("not json").is_err());
        assert!(ModelArtifact::from_json("{}").is_err());
    }

    #[test]
    fn export_populates_fallback() {
        let fx = trained_fixture(34);
        let fb = fx.artifact.fallback.as_ref().expect("fitted model exports a fallback");
        assert_eq!(fb.anchor.cols(), 1);
        assert_eq!(fb.anchor.rows(), fx.artifact.slave_weights.cols());
        assert_eq!(fb.last_good.rows(), fx.artifact.num_companies());
        assert!(fb.last_good.as_slice().iter().all(|v| v.is_finite()));
        // The ladder always yields a finite number, whatever it's fed.
        assert!(fb.predict(Some(0), None).is_finite());
        assert!(fb.predict(None, Some(&vec![f64::NAN; fb.anchor.rows()])).is_finite());
        assert!(fb.predict(Some(usize::MAX), None).is_finite());
    }

    #[test]
    fn file_round_trip_and_bit_flip_rejection() {
        let fx = trained_fixture(35);
        let dir = std::env::temp_dir().join(format!("ams-art-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.artifact");
        fx.artifact.write_file(&path).expect("write");
        let back = ModelArtifact::read_file(&path).expect("read back");
        assert_eq!(back.to_json(), fx.artifact.to_json());
        // A single flipped bit anywhere must be caught by the checksum.
        ams_fault::bit_flip_file(&path, 8 * 200 + 3).expect("flip");
        let err = ModelArtifact::read_file(&path).unwrap_err();
        assert!(
            err.contains("checksum") || err.contains("header") || err.contains("magic"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
