//! Shared client-side JSONL connection layer.
//!
//! Every component that *talks to* a prediction server — the `loadgen`
//! binary, the cluster router's upstream pool, the health prober, the
//! chaos benches — needs the same three things: a TCP connection whose
//! connect/read/write are all bounded by explicit timeouts, one-line
//! request/response framing, and jittered backoff for reconnects. This
//! module is that layer, extracted so the router (crates/cluster) does
//! not re-derive it.
//!
//! Policy (enforced by the `no-connect-without-timeout` lint): no
//! request-path socket may be created without a connect timeout, and
//! every connection sets read + write timeouts immediately. A hung
//! upstream must cost a bounded wait, never a pinned thread.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Hard cap on one JSONL request/response line, shared by every tier
/// that reads framed lines off a socket (serve's request loop, the
/// router's client loop, the upstream pool). A peer that streams an
/// endless line must cost at most this much memory, then get a typed
/// refusal — never an unbounded `String`.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Outcome of [`read_line_bounded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundedLine {
    /// A full newline-terminated line is in the buffer; total buffered
    /// bytes (newline included).
    Line(usize),
    /// The peer closed — at a line boundary (empty buffer) or mid-line
    /// (partial bytes remain, never newline-terminated).
    Closed,
    /// The line hit the byte cap before a newline arrived. The stream
    /// cannot be re-synchronized mid-line; the caller should send a
    /// typed refusal and close.
    TooLarge,
}

/// Read one `\n`-terminated line into `buf`, never growing `buf` past
/// `max` bytes. The buffer is *not* cleared: a read interrupted by a
/// timeout (`WouldBlock`/`TimedOut` propagate as errors) keeps its
/// partial bytes, so tick-loop callers just call again and the budget
/// shrinks accordingly. The `take` budget and the read share one
/// statement so the cap is evident at the call site (and to the taint
/// audit).
pub fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    buf: &mut String,
    max: usize,
) -> std::io::Result<BoundedLine> {
    let budget = max.saturating_sub(buf.len());
    let n = reader.by_ref().take(budget as u64).read_line(buf)?;
    if n == 0 && buf.is_empty() {
        return Ok(BoundedLine::Closed);
    }
    if !buf.ends_with('\n') {
        // No newline: either the budget ran out (oversized line) or
        // the peer closed mid-line.
        return Ok(if buf.len() >= max { BoundedLine::TooLarge } else { BoundedLine::Closed });
    }
    Ok(BoundedLine::Line(buf.len()))
}

/// Explicit bounds on every socket operation of a [`JsonlConn`].
#[derive(Debug, Clone, Copy)]
pub struct Timeouts {
    /// TCP connect budget.
    pub connect: Duration,
    /// Per-`read_line` budget (also the failover detection latency).
    pub read: Duration,
    /// Per-write budget.
    pub write: Duration,
}

impl Timeouts {
    /// The same budget for connect, read and write.
    pub fn uniform(d: Duration) -> Self {
        Self { connect: d, read: d, write: d }
    }
}

impl Default for Timeouts {
    fn default() -> Self {
        Self {
            connect: Duration::from_millis(500),
            read: Duration::from_secs(2),
            write: Duration::from_secs(2),
        }
    }
}

/// Resolve `host:port` to the first socket address. `connect_timeout`
/// needs a concrete [`SocketAddr`], so resolution is a separate,
/// fallible step.
pub fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no addresses"))
}

/// Jittered exponential backoff for attempt `k` (0-based): base
/// `10·2^k` ms plus up to that much deterministic jitter, so clients
/// that were shed together do not reconnect in lockstep.
pub fn backoff(attempt: u32, salt: u64) -> Duration {
    let base = 10u64 << attempt.min(10);
    let jitter = ams_fault::mix64(salt ^ u64::from(attempt).wrapping_mul(0x9E37_79B9)) % base;
    Duration::from_millis(base + jitter)
}

/// One persistent JSON-lines client connection with every socket
/// operation bounded: requests go out as single lines, responses come
/// back as single lines.
pub struct JsonlConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    addr: SocketAddr,
}

impl JsonlConn {
    /// Connect with explicit timeouts on connect, read and write.
    pub fn connect(addr: SocketAddr, timeouts: &Timeouts) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeouts.connect)?;
        stream.set_read_timeout(Some(timeouts.read))?;
        stream.set_write_timeout(Some(timeouts.write))?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { writer: stream, reader, addr })
    }

    /// [`JsonlConn::connect`] by hostname, resolving first.
    pub fn connect_str(addr: &str, timeouts: &Timeouts) -> Result<Self, String> {
        let sockaddr = resolve(addr)?;
        Self::connect(sockaddr, timeouts).map_err(|e| format!("connect {addr}: {e}"))
    }

    /// The upstream this connection talks to.
    pub fn peer(&self) -> SocketAddr {
        self.addr
    }

    /// Re-bound the read budget (the write/connect budgets are fixed at
    /// connect time). The underlying socket is shared with the buffered
    /// reader, so this takes effect on the next read.
    pub fn set_read_timeout(&self, d: Duration) -> std::io::Result<()> {
        self.writer.set_read_timeout(Some(d))
    }

    /// Write one request line (newline appended) and flush.
    pub fn send_line(&mut self, request: &str) -> std::io::Result<()> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read one response line into `buf` (cleared first), capped at
    /// [`MAX_LINE_BYTES`]. `Ok(0)` means the peer closed; an oversized
    /// response is `InvalidData` (a server that streams an endless
    /// line is as broken as one that closes mid-response); a timeout
    /// surfaces as `WouldBlock`/`TimedOut`.
    pub fn read_line_into(&mut self, buf: &mut String) -> std::io::Result<usize> {
        buf.clear();
        match read_line_bounded(&mut self.reader, buf, MAX_LINE_BYTES)? {
            BoundedLine::Line(n) => Ok(n),
            BoundedLine::Closed => Ok(0),
            BoundedLine::TooLarge => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response line exceeded {MAX_LINE_BYTES} bytes"),
            )),
        }
    }

    /// One request/response round trip; the response line lands in
    /// `buf`. A closed connection is an error, not an empty line.
    pub fn round_trip_into(&mut self, request: &str, buf: &mut String) -> Result<(), String> {
        self.send_line(request).map_err(|e| format!("send to {}: {e}", self.addr))?;
        let n = self.read_line_into(buf).map_err(|e| format!("read from {}: {e}", self.addr))?;
        if n == 0 {
            return Err(format!("{} closed the connection", self.addr));
        }
        Ok(())
    }

    /// Round trip returning the parsed response object.
    pub fn round_trip_value(&mut self, request: &str) -> Result<serde::Value, String> {
        let mut buf = String::new();
        self.round_trip_into(request, &mut buf)?;
        serde_json::from_str(buf.trim())
            .map_err(|e| format!("bad response from {}: {e}", self.addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::server::{Server, ServerConfig};
    use std::sync::Arc;

    #[test]
    fn round_trip_against_a_live_server() {
        let registry = Arc::new(Registry::new());
        let server = Server::start(
            ServerConfig { addr: "127.0.0.1:0".into(), workers: 1, ..Default::default() },
            registry,
        )
        .unwrap();
        let mut conn = JsonlConn::connect(server.local_addr(), &Timeouts::default()).unwrap();
        let health = conn.round_trip_value(r#"{"type":"health"}"#).unwrap();
        assert_eq!(health.get("ok").and_then(serde::Value::as_bool), Some(true));
        let mut buf = String::new();
        conn.round_trip_into(r#"{"type":"health"}"#, &mut buf).unwrap();
        assert!(buf.trim_end().ends_with('}'));
        server.shutdown();
    }

    #[test]
    fn connect_to_a_dead_port_fails_within_the_budget() {
        // Bind-then-drop: nobody is listening on this port right after.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let t = Timeouts::uniform(Duration::from_millis(200));
        let started = std::time::Instant::now();
        assert!(JsonlConn::connect(addr, &t).is_err());
        assert!(started.elapsed() < Duration::from_secs(5), "connect did not bound its wait");
    }

    #[test]
    fn read_timeout_surfaces_instead_of_hanging() {
        // A listener that accepts and never answers.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let t = Timeouts::uniform(Duration::from_millis(100));
        let mut conn = JsonlConn::connect(addr, &t).unwrap();
        let mut buf = String::new();
        let err = conn.round_trip_into(r#"{"type":"health"}"#, &mut buf).unwrap_err();
        assert!(err.contains("read from"), "{err}");
        drop(hold.join());
    }

    #[test]
    fn resolve_and_backoff_are_sane() {
        assert!(resolve("127.0.0.1:80").is_ok());
        assert!(resolve("definitely not an address").is_err());
        let mut prev = Duration::ZERO;
        for attempt in 0..6 {
            let d = backoff(attempt, 42);
            let base = 10u64 << attempt;
            assert!(d >= Duration::from_millis(base));
            assert!(d <= Duration::from_millis(2 * base));
            assert!(d >= prev / 4, "backoff collapsed at attempt {attempt}");
            prev = d;
        }
    }
}
