//! Lock-free serving metrics: request/error counters and a latency
//! histogram, all plain atomics so the hot path never takes a lock.
//!
//! The histogram uses power-of-two nanosecond buckets (1 µs, 2 µs, …,
//! ~4 s, +overflow). Quantiles are read back as the upper bound of the
//! bucket containing the requested rank — a ≤ 2× overestimate by
//! construction, which is the right bias for latency reporting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Smallest histogram bucket: everything below 1 µs lands in bucket 0.
const BASE_NANOS: u64 = 1_000;
/// Number of power-of-two buckets before the overflow bucket.
const N_BUCKETS: usize = 23;

/// Serving counters + latency histogram. Cheap to share (`Arc`); all
/// methods take `&self`.
#[derive(Default)]
pub struct Metrics {
    requests: AtomicU64,
    errors: AtomicU64,
    predict: AtomicU64,
    batch_predict: AtomicU64,
    slave_weights: AtomicU64,
    /// Connections refused by the bounded admission queue.
    shed: AtomicU64,
    /// Requests answered by the fallback predictor (`degraded: true`).
    degraded: AtomicU64,
    /// Requests rejected because their deadline expired mid-flight.
    deadline_exceeded: AtomicU64,
    /// Connections closed by the server for idling past the timeout —
    /// a distinct kind, not folded into `errors`.
    idle_disconnects: AtomicU64,
    /// Socket-configuration failures (e.g. `set_read_timeout` refused)
    /// that were previously ignored silently.
    config_errors: AtomicU64,
    /// `buckets[i]` counts latencies in `[BASE·2^(i-1), BASE·2^i)`;
    /// the last bucket is the overflow.
    buckets: [AtomicU64; N_BUCKETS + 1],
    /// Total latency in nanoseconds (for the mean).
    total_nanos: AtomicU64,
}

/// A point-in-time copy of the metrics, for reporting.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    pub requests: u64,
    pub errors: u64,
    pub predict: u64,
    pub batch_predict: u64,
    pub slave_weights: u64,
    pub shed: u64,
    pub degraded: u64,
    pub deadline_exceeded: u64,
    pub idle_disconnects: u64,
    pub config_errors: u64,
    pub mean_latency_us: f64,
    pub p50_latency_us: f64,
    pub p99_latency_us: f64,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one finished request. `kind` is the request type string
    /// from the wire protocol; unknown kinds still count as requests.
    pub fn record(&self, kind: &str, latency: Duration, is_error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        match kind {
            "predict" => self.predict.fetch_add(1, Ordering::Relaxed),
            "batch_predict" => self.batch_predict.fetch_add(1, Ordering::Relaxed),
            "slave_weights" => self.slave_weights.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        let nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one connection shed by the bounded admission queue.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request answered by the fallback predictor.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request whose deadline expired mid-flight.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one connection the server closed for idling.
    pub fn record_idle_disconnect(&self) {
        self.idle_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one socket-configuration failure.
    pub fn record_config_error(&self) {
        self.config_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current values. Buckets are read without a global
    /// lock, so a snapshot taken mid-request may be off by a count —
    /// fine for monitoring.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        let mean_nanos = if total > 0 {
            self.total_nanos.load(Ordering::Relaxed) as f64 / total as f64
        } else {
            0.0
        };
        MetricsSnapshot {
            requests,
            errors: self.errors.load(Ordering::Relaxed),
            predict: self.predict.load(Ordering::Relaxed),
            batch_predict: self.batch_predict.load(Ordering::Relaxed),
            slave_weights: self.slave_weights.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            idle_disconnects: self.idle_disconnects.load(Ordering::Relaxed),
            config_errors: self.config_errors.load(Ordering::Relaxed),
            mean_latency_us: mean_nanos / 1_000.0,
            p50_latency_us: quantile_nanos(&counts, total, 0.50) / 1_000.0,
            p99_latency_us: quantile_nanos(&counts, total, 0.99) / 1_000.0,
        }
    }
}

/// Histogram bucket for a latency in nanoseconds.
fn bucket_index(nanos: u64) -> usize {
    if nanos < BASE_NANOS {
        return 0;
    }
    let mut bound = BASE_NANOS;
    for i in 0..N_BUCKETS {
        if nanos < bound {
            return i;
        }
        bound = bound.saturating_mul(2);
    }
    N_BUCKETS
}

/// Upper bound (ns) of the bucket holding quantile `q`.
fn quantile_nanos(counts: &[u64], total: u64, q: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            // Bucket i spans up to BASE·2^i (bucket 0 = sub-µs).
            return (BASE_NANOS << i.min(N_BUCKETS)) as f64;
        }
    }
    (BASE_NANOS << N_BUCKETS) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.record("predict", Duration::from_micros(10), false);
        m.record("predict", Duration::from_micros(20), false);
        m.record("batch_predict", Duration::from_micros(100), true);
        m.record("health", Duration::from_micros(1), false);
        let s = m.snapshot();
        assert_eq!(s.requests, 4);
        assert_eq!(s.errors, 1);
        assert_eq!(s.predict, 2);
        assert_eq!(s.batch_predict, 1);
        assert_eq!(s.slave_weights, 0);
        assert!(s.mean_latency_us > 0.0);
    }

    #[test]
    fn quantiles_are_ordered_and_bracketing() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record("predict", Duration::from_micros(50), false);
        }
        m.record("predict", Duration::from_millis(80), false);
        let s = m.snapshot();
        // p50 must sit in the ~50 µs range (≤ 2× bucket bias), p99 must
        // see the slow outlier.
        assert!(s.p50_latency_us >= 50.0 && s.p50_latency_us <= 128.0, "{}", s.p50_latency_us);
        assert!(s.p99_latency_us >= 50.0, "{}", s.p99_latency_us);
        assert!(s.p50_latency_us <= s.p99_latency_us);
    }

    #[test]
    fn bucket_index_monotone() {
        let mut prev = 0;
        for nanos in [0, 500, 1_000, 1_999, 2_000, 1_000_000, u64::MAX] {
            let b = bucket_index(nanos);
            assert!(b >= prev, "bucket not monotone at {nanos}");
            prev = b;
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.requests, 0);
        assert_eq!(s.p99_latency_us, 0.0);
    }

    #[test]
    fn resilience_counters_are_independent_of_requests() {
        let m = Metrics::new();
        m.record_shed();
        m.record_shed();
        m.record_degraded();
        m.record_deadline_exceeded();
        m.record_idle_disconnect();
        m.record_config_error();
        let s = m.snapshot();
        assert_eq!(s.shed, 2);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.idle_disconnects, 1);
        assert_eq!(s.config_errors, 1);
        // None of the above are requests or generic errors.
        assert_eq!(s.requests, 0);
        assert_eq!(s.errors, 0);
    }
}
