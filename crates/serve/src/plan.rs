//! Precision-typed forward plan: the engine's weights, frozen into the
//! scalar they will execute in.
//!
//! [`Engine`](crate::Engine) scores through a [`ForwardPlan`] rather
//! than reading `Matrix` weights out of the snapshot on every request.
//! The plan for `E = f64` holds exact copies of the snapshot (narrowing
//! is the identity), so the f64 path stays bit-for-bit equal to
//! training-side `AmsModel::predict`. The plan for `E = f32` is the
//! quantized model: every weight rounded once, at load time, to the
//! nearest f32 — the serving-side half of the mixed-precision path
//! described in DESIGN.md §14.
//!
//! The f32 plan also has a standalone binary serialization
//! ([`ForwardPlan::to_bytes`] / [`ForwardPlan::from_bytes`]) so a
//! quantized model can be shipped without the f64 artifact. Decoding is
//! length-checked at every field: a truncated or corrupt byte string
//! returns `Err`, never panics, and never allocates more memory than
//! the input could justify.

use crate::artifact::ModelArtifact;
use ams_tensor::runtime::Element;
use ams_tensor::Matrix;

/// Header magic for serialized f32 plans.
pub const PLAN32_MAGIC: &[u8; 8] = b"AMSPLN32";
/// Layout version embedded after the magic; bump on breaking change.
pub const PLAN32_VERSION: u8 = 1;

/// An owned row-major `rows × cols` buffer of one scalar type — the
/// plan-side analogue of [`Matrix`], generic over the element.
#[derive(Debug, Clone, PartialEq)]
pub struct Plane<E: Element> {
    rows: usize,
    cols: usize,
    data: Vec<E>,
}

impl<E: Element> Plane<E> {
    /// Wrap an existing buffer (`data.len()` must equal `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<E>) -> Self {
        assert_eq!(data.len(), rows * cols, "plane data does not match {rows}x{cols}");
        Self { rows, cols, data }
    }

    /// Narrow (or copy, for `E = f64`) a matrix into a plane.
    pub fn from_matrix(m: &Matrix) -> Self {
        let data = m.as_slice().iter().map(|&v| E::from_f64(v)).collect();
        Self { rows: m.rows(), cols: m.cols(), data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[E] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A borrowed, `Copy` view of the whole plane.
    pub fn view(&self) -> PlaneRef<'_, E> {
        PlaneRef { rows: self.rows, cols: self.cols, data: &self.data }
    }

    /// Surrender the backing buffer (for returning it to a workspace).
    pub fn into_vec(self) -> Vec<E> {
        self.data
    }
}

impl Plane<f64> {
    /// Reinterpret an f64 plane as a [`Matrix`] without copying.
    pub fn into_matrix(self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data)
    }
}

/// A borrowed view of a plane (or of a [`Matrix`], for `E = f64`).
#[derive(Debug, Clone, Copy)]
pub struct PlaneRef<'a, E: Element> {
    pub rows: usize,
    pub cols: usize,
    pub data: &'a [E],
}

impl<'a> PlaneRef<'a, f64> {
    /// View a matrix as an f64 plane.
    pub fn of_matrix(m: &'a Matrix) -> Self {
        Self { rows: m.rows(), cols: m.cols(), data: m.as_slice() }
    }
}

/// One affine layer of the plan (`w` is `in×out`, `b` is `1×out`).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanLinear<E: Element> {
    pub w: Plane<E>,
    pub b: Plane<E>,
}

/// One attention head of the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanGatHead<E: Element> {
    pub w: Plane<E>,
    pub a_left: Plane<E>,
    pub a_right: Plane<E>,
}

/// One GAT layer of the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanGatLayer<E: Element> {
    pub heads: Vec<PlanGatHead<E>>,
    pub leaky_slope: E,
}

/// Every parameter the batch forward pass reads, in the scalar it will
/// execute in. Built once per engine (per precision) at load time.
#[derive(Debug, Clone)]
pub struct ForwardPlan<E: Element> {
    /// Full feature width `d` the model consumes.
    pub width: usize,
    /// Companies (graph nodes) `n`.
    pub companies: usize,
    /// Node-transform layers (Eq. 1).
    pub nt: Vec<PlanLinear<E>>,
    /// GAT stack (Eqs. 2–3).
    pub gat: Vec<PlanGatLayer<E>>,
    /// Concatenate the node-transform output after the GAT stack.
    pub residual: bool,
    /// Generator layers (Eq. 6).
    pub gen: Vec<PlanLinear<E>>,
    /// Assembly weight γ (Eq. 10).
    pub gamma: E,
    /// `1 − γ`, computed in f64 *before* narrowing so both plans scale
    /// β_c by the same rounded constant.
    pub gamma_c: E,
    /// `β_cᵀ` (`1×m`), pre-transposed — a transpose is an exact
    /// element copy, so hoisting it out of the request path preserves
    /// the f64 bit contract.
    pub beta_c_t: Plane<E>,
    /// Dense adjacency mask (`n×n`).
    pub mask: Plane<E>,
    /// 0/1 projection from full feature space to slave columns
    /// (`d×m`), `None` when the slave model uses every column.
    pub selection: Option<Plane<E>>,
}

impl<E: Element> ForwardPlan<E> {
    /// Freeze an artifact's weights into `E`. For `E = f64` this is an
    /// exact copy; for `E = f32` it is the quantization step.
    pub fn from_artifact(artifact: &ModelArtifact) -> Result<Self, String> {
        let snap = &artifact.snapshot;
        let mask = snap
            .mask
            .as_ref()
            .ok_or_else(|| "artifact has no adjacency mask (corrupt snapshot)".to_string())?;
        let d = artifact.feature_width();
        let selection = snap.config.slave_cols.as_ref().map(|cols| {
            let mut s = vec![E::ZERO; d * cols.len()];
            for (j, &c) in cols.iter().enumerate() {
                s[c * cols.len() + j] = E::ONE;
            }
            Plane::from_vec(d, cols.len(), s)
        });
        let beta_c_t = {
            let (r, c) = snap.beta_c.shape();
            let mut data = vec![E::ZERO; r * c];
            for i in 0..r {
                for j in 0..c {
                    data[j * r + i] = E::from_f64(snap.beta_c[(i, j)]);
                }
            }
            Plane::from_vec(c, r, data)
        };
        let linear = |l: &ams_core::LinearLayer| PlanLinear {
            w: Plane::from_matrix(&l.w),
            b: Plane::from_matrix(&l.b),
        };
        Ok(Self {
            width: d,
            companies: artifact.num_companies(),
            nt: snap.nt.iter().map(linear).collect(),
            gat: snap
                .gat
                .iter()
                .map(|layer| PlanGatLayer {
                    heads: layer
                        .heads
                        .iter()
                        .map(|h| PlanGatHead {
                            w: Plane::from_matrix(&h.w),
                            a_left: Plane::from_matrix(&h.a_left),
                            a_right: Plane::from_matrix(&h.a_right),
                        })
                        .collect(),
                    leaky_slope: E::from_f64(layer.leaky_slope),
                })
                .collect(),
            residual: snap.config.residual,
            gen: snap.gen.iter().map(linear).collect(),
            gamma: E::from_f64(snap.config.gamma),
            gamma_c: E::from_f64(1.0 - snap.config.gamma),
            beta_c_t,
            mask: Plane::from_matrix(mask),
            selection,
        })
    }
}

// ---- f32 plan serialization -------------------------------------------
//
// Layout (all integers little-endian):
//   magic[8] | version u8 | residual u8 | has_selection u8
//   width u32 | companies u32 | nt u32 | gat u32 | gen u32
//   gamma f32 | gamma_c f32
//   nt × (plane w, plane b)
//   gat × (heads u32, leaky_slope f32, heads × (plane w, a_left, a_right))
//   gen × (plane w, plane b)
//   plane beta_c_t | plane mask | [plane selection]
// where plane = rows u32 | cols u32 | rows·cols × f32.

impl ForwardPlan<f32> {
    /// Serialize the quantized plan to a standalone byte string.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(PLAN32_MAGIC);
        out.push(PLAN32_VERSION);
        out.push(self.residual as u8);
        out.push(self.selection.is_some() as u8);
        for v in [
            self.width as u32,
            self.companies as u32,
            self.nt.len() as u32,
            self.gat.len() as u32,
            self.gen.len() as u32,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.gamma.to_le_bytes());
        out.extend_from_slice(&self.gamma_c.to_le_bytes());
        for l in &self.nt {
            write_plane(&mut out, &l.w);
            write_plane(&mut out, &l.b);
        }
        for layer in &self.gat {
            out.extend_from_slice(&(layer.heads.len() as u32).to_le_bytes());
            out.extend_from_slice(&layer.leaky_slope.to_le_bytes());
            for h in &layer.heads {
                write_plane(&mut out, &h.w);
                write_plane(&mut out, &h.a_left);
                write_plane(&mut out, &h.a_right);
            }
        }
        for l in &self.gen {
            write_plane(&mut out, &l.w);
            write_plane(&mut out, &l.b);
        }
        write_plane(&mut out, &self.beta_c_t);
        write_plane(&mut out, &self.mask);
        if let Some(sel) = &self.selection {
            write_plane(&mut out, sel);
        }
        out
    }

    /// Decode a plan written by [`ForwardPlan::to_bytes`]. Every read
    /// is bounds-checked against the remaining input, so truncated or
    /// corrupt bytes fail with `Err` — this function cannot panic, and
    /// it never allocates beyond what the input length can account for.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut cur = Cursor { buf: bytes, pos: 0 };
        let magic = cur.take(PLAN32_MAGIC.len())?;
        if magic != PLAN32_MAGIC {
            return Err("plan32: bad magic (not an f32 plan)".to_string());
        }
        let version = cur.u8()?;
        if version != PLAN32_VERSION {
            return Err(format!(
                "plan32: unsupported version {version} (this build reads {PLAN32_VERSION})"
            ));
        }
        let residual = cur.u8()? != 0;
        let has_selection = cur.u8()? != 0;
        let width = cur.u32()? as usize;
        let companies = cur.u32()? as usize;
        let nt_len = cur.u32()? as usize;
        let gat_len = cur.u32()? as usize;
        let gen_len = cur.u32()? as usize;
        let gamma = cur.f32()?;
        let gamma_c = cur.f32()?;
        // Layer counts are not trusted: each iteration consumes bytes,
        // so a lying count fails on `take` long before it can balloon
        // the growing Vecs past the input size.
        let mut nt = Vec::new();
        for _ in 0..nt_len {
            // ams-lint: allow(no-unbounded-queue-in-serve) — bounded by the take()-checked input length
            nt.push(PlanLinear { w: read_plane(&mut cur)?, b: read_plane(&mut cur)? });
        }
        let mut gat = Vec::new();
        for _ in 0..gat_len {
            let n_heads = cur.u32()? as usize;
            let leaky_slope = cur.f32()?;
            let mut heads = Vec::new();
            for _ in 0..n_heads {
                // ams-lint: allow(no-unbounded-queue-in-serve) — bounded by the take()-checked input length
                heads.push(PlanGatHead {
                    w: read_plane(&mut cur)?,
                    a_left: read_plane(&mut cur)?,
                    a_right: read_plane(&mut cur)?,
                });
            }
            // ams-lint: allow(no-unbounded-queue-in-serve) — bounded by the take()-checked input length
            gat.push(PlanGatLayer { heads, leaky_slope });
        }
        let mut gen = Vec::new();
        for _ in 0..gen_len {
            // ams-lint: allow(no-unbounded-queue-in-serve) — bounded by the take()-checked input length
            gen.push(PlanLinear { w: read_plane(&mut cur)?, b: read_plane(&mut cur)? });
        }
        let beta_c_t = read_plane(&mut cur)?;
        let mask = read_plane(&mut cur)?;
        let selection = if has_selection { Some(read_plane(&mut cur)?) } else { None };
        if cur.pos != bytes.len() {
            return Err(format!("plan32: {} trailing bytes", bytes.len() - cur.pos));
        }
        if mask.rows() != companies || mask.cols() != companies {
            return Err(format!(
                "plan32: mask is {}x{} but the plan declares {companies} companies",
                mask.rows(),
                mask.cols()
            ));
        }
        Ok(Self {
            width,
            companies,
            nt,
            gat,
            residual,
            gen,
            gamma,
            gamma_c,
            beta_c_t,
            mask,
            selection,
        })
    }
}

fn write_plane(out: &mut Vec<u8>, p: &Plane<f32>) {
    out.extend_from_slice(&(p.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(p.cols() as u32).to_le_bytes());
    for v in p.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_plane(cur: &mut Cursor<'_>) -> Result<Plane<f32>, String> {
    let rows = cur.u32()? as usize;
    let cols = cur.u32()? as usize;
    let n = rows.checked_mul(cols).ok_or_else(|| "plan32: plane size overflows".to_string())?;
    let byte_len = n.checked_mul(4).ok_or_else(|| "plan32: plane size overflows".to_string())?;
    // Reserve nothing until the bytes are proven present — the length
    // check is what keeps a forged header from forcing a huge alloc.
    let raw = cur.take(byte_len)?;
    let data = raw.chunks_exact(4).map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])).collect();
    Ok(Plane::from_vec(rows, cols, data))
}

/// Length-checked reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("plan32: truncated at byte {} (need {n} more)", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Result<f32, String> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_fixture;

    #[test]
    fn f64_plan_copies_weights_exactly() {
        let fx = trained_fixture(71);
        let plan: ForwardPlan<f64> = ForwardPlan::from_artifact(&fx.artifact).unwrap();
        let snap = &fx.artifact.snapshot;
        assert_eq!(plan.nt.len(), snap.nt.len());
        for (pl, l) in plan.nt.iter().zip(&snap.nt) {
            assert_eq!(pl.w.as_slice(), l.w.as_slice());
            assert_eq!(pl.b.as_slice(), l.b.as_slice());
        }
        // The pre-transposed β_cᵀ holds the same values.
        let bc = &snap.beta_c;
        assert_eq!(plan.beta_c_t.rows(), bc.cols());
        assert_eq!(plan.beta_c_t.cols(), bc.rows());
        for i in 0..bc.rows() {
            for j in 0..bc.cols() {
                assert_eq!(plan.beta_c_t.row(j)[i].to_bits(), bc[(i, j)].to_bits());
            }
        }
        assert_eq!(plan.gamma, snap.config.gamma);
    }

    #[test]
    fn f32_plan_is_nearest_rounding() {
        let fx = trained_fixture(72);
        let p64: ForwardPlan<f64> = ForwardPlan::from_artifact(&fx.artifact).unwrap();
        let p32: ForwardPlan<f32> = ForwardPlan::from_artifact(&fx.artifact).unwrap();
        for (a, b) in p64.nt.iter().zip(&p32.nt) {
            for (x, y) in a.w.as_slice().iter().zip(b.w.as_slice()) {
                assert_eq!((*x as f32).to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn bytes_round_trip_is_exact() {
        let fx = trained_fixture(73);
        let plan: ForwardPlan<f32> = ForwardPlan::from_artifact(&fx.artifact).unwrap();
        let bytes = plan.to_bytes();
        let back = ForwardPlan::from_bytes(&bytes).unwrap();
        assert_eq!(back.width, plan.width);
        assert_eq!(back.companies, plan.companies);
        assert_eq!(back.residual, plan.residual);
        assert_eq!(back.gamma.to_bits(), plan.gamma.to_bits());
        assert_eq!(back.gamma_c.to_bits(), plan.gamma_c.to_bits());
        assert_eq!(back.nt, plan.nt);
        assert_eq!(back.gat, plan.gat);
        assert_eq!(back.gen, plan.gen);
        assert_eq!(back.beta_c_t, plan.beta_c_t);
        assert_eq!(back.mask, plan.mask);
        assert_eq!(back.selection, plan.selection);
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let fx = trained_fixture(74);
        let plan: ForwardPlan<f32> = ForwardPlan::from_artifact(&fx.artifact).unwrap();
        let bytes = plan.to_bytes();
        for len in 0..bytes.len() {
            assert!(
                ForwardPlan::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let fx = trained_fixture(75);
        let plan: ForwardPlan<f32> = ForwardPlan::from_artifact(&fx.artifact).unwrap();
        let mut bytes = plan.to_bytes();
        bytes[8] = PLAN32_VERSION + 1;
        assert!(ForwardPlan::from_bytes(&bytes).unwrap_err().contains("version"));
        bytes[0] ^= 0xFF;
        assert!(ForwardPlan::from_bytes(&bytes).unwrap_err().contains("magic"));
    }

    #[test]
    fn forged_plane_header_cannot_force_a_huge_alloc() {
        // A header claiming u32::MAX × u32::MAX elements must fail the
        // length check (or the overflow check), not attempt the alloc.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(PLAN32_MAGIC);
        bytes.push(PLAN32_VERSION);
        bytes.extend_from_slice(&[0, 0]);
        for v in [1u32, 1, 1, 0, 0] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        bytes.extend_from_slice(&0.5f32.to_le_bytes());
        bytes.extend_from_slice(&0.5f32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(ForwardPlan::from_bytes(&bytes).is_err());
    }
}
