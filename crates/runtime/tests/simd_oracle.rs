//! Property tests for the vectorized fast path: `SimdSeq` (intrinsics
//! or portable) agrees with the naive reference **within a documented
//! epsilon bound** on random shapes and data.
//!
//! This is the relaxed cousin of `equivalence.rs`. The deterministic
//! kernels are held to a bit oracle there; the multi-accumulator
//! micro-kernel reassociates the `k`-sum, so the contract here is the
//! error bound from DESIGN.md §14:
//!
//! ```text
//! |simd − naive|  ≤  rel · (|A|·|B|)  +  abs      (element-wise)
//! ```
//!
//! with `rel = 1e-12, abs = 1e-12` for f64 and `rel = 1e-4,
//! abs = 1e-4` for f32 (f32 is compared against the *f64* naive
//! product, so the bound also covers the quantization rounding).
//! `|A|·|B|` is the naive product of element-wise absolute values —
//! the natural magnitude against which a reassociated sum's rounding
//! is measured. Shapes deliberately straddle the MR/NR register-tile
//! and KC/MC cache-block fringes.

use ams_runtime::simd::{matmul_f32, matmul_f64, portable_matmul};
use ams_runtime::{kernels, Backend, SimdSeq};
use proptest::prelude::*;

const MAX_M: usize = 20;
const MAX_K: usize = 40;
const MAX_N: usize = 36;

/// Per-element tolerance reference: naive f64 product and the
/// magnitude matrix `|A|·|B|`.
fn oracle(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut want = vec![0.0; m * n];
    kernels::matmul_naive(a, b, &mut want, m, k, n);
    let aa: Vec<f64> = a.iter().map(|v| v.abs()).collect();
    let ba: Vec<f64> = b.iter().map(|v| v.abs()).collect();
    let mut mag = vec![0.0; m * n];
    kernels::matmul_naive(&aa, &ba, &mut mag, m, k, n);
    (want, mag)
}

fn assert_close(
    want: &[f64],
    mag: &[f64],
    got: &[f64],
    rel: f64,
    abs: f64,
    label: &str,
) -> Result<(), String> {
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        let tol = rel * mag[i] + abs;
        if (w - g).abs() > tol {
            return Err(format!("{label}: elem {i}: want {w} got {g} tol {tol}"));
        }
    }
    Ok(())
}

proptest! {
    /// f64 fast path vs naive, within the documented f64 bound.
    #[test]
    fn simd_f64_matches_naive_within_epsilon(
        m in 0usize..MAX_M,
        k in 0usize..MAX_K,
        n in 1usize..MAX_N,
        pool in prop::collection::vec(-8.0f64..8.0, MAX_M * MAX_K + MAX_K * MAX_N),
    ) {
        let a = &pool[..m * k];
        let b = &pool[MAX_M * MAX_K..MAX_M * MAX_K + k * n];
        let (want, mag) = oracle(a, b, m, k, n);
        let mut got = vec![0.0; m * n];
        matmul_f64(a, b, &mut got, m, k, n);
        assert_close(&want, &mag, &got, 1e-12, 1e-12, "simd-f64")?;
    }

    /// f32 fast path vs the f64 naive reference, within the f32 bound
    /// (covers both reassociation and narrowing).
    #[test]
    fn simd_f32_matches_f64_naive_within_epsilon(
        m in 0usize..MAX_M,
        k in 0usize..MAX_K,
        n in 1usize..MAX_N,
        pool in prop::collection::vec(-8.0f64..8.0, MAX_M * MAX_K + MAX_K * MAX_N),
    ) {
        let a = &pool[..m * k];
        let b = &pool[MAX_M * MAX_K..MAX_M * MAX_K + k * n];
        let (want, mag) = oracle(a, b, m, k, n);
        let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let mut got32 = vec![0.0f32; m * n];
        matmul_f32(&a32, &b32, &mut got32, m, k, n);
        let got: Vec<f64> = got32.iter().map(|&v| v as f64).collect();
        assert_close(&want, &mag, &got, 1e-4, 1e-4, "simd-f32")?;
    }

    /// The portable unrolled fallback obeys the same f64 bound — it is
    /// the fast path on builds/CPUs without the intrinsics.
    #[test]
    fn portable_matches_naive_within_epsilon(
        m in 0usize..MAX_M,
        k in 0usize..MAX_K,
        n in 1usize..MAX_N,
        pool in prop::collection::vec(-8.0f64..8.0, MAX_M * MAX_K + MAX_K * MAX_N),
    ) {
        let a = &pool[..m * k];
        let b = &pool[MAX_M * MAX_K..MAX_M * MAX_K + k * n];
        let (want, mag) = oracle(a, b, m, k, n);
        let mut got = vec![0.0; m * n];
        portable_matmul(a, b, &mut got, m, k, n);
        assert_close(&want, &mag, &got, 1e-12, 1e-12, "portable")?;
    }

    /// Via the `Backend` trait object the fused bias path lands on the
    /// same fast kernel and stays within the bound.
    #[test]
    fn simd_backend_fused_bias_within_epsilon(
        m in 1usize..MAX_M,
        k in 1usize..MAX_K,
        n in 1usize..MAX_N,
        pool in prop::collection::vec(-4.0f64..4.0, MAX_M * MAX_K + MAX_K * MAX_N + MAX_N),
    ) {
        let a = &pool[..m * k];
        let b = &pool[MAX_M * MAX_K..MAX_M * MAX_K + k * n];
        let bias = &pool[MAX_M * MAX_K + MAX_K * MAX_N..MAX_M * MAX_K + MAX_K * MAX_N + n];
        let backend: &dyn Backend = &SimdSeq;
        let mut got = vec![0.0; m * n];
        backend.matmul_add_bias(a, b, bias, &mut got, m, k, n);
        let (mut want, mag) = oracle(a, b, m, k, n);
        for row in want.chunks_exact_mut(n) {
            for (o, &bv) in row.iter_mut().zip(bias) {
                *o += bv;
            }
        }
        assert_close(&want, &mag, &got, 1e-12, 1e-12, "simd-fused-bias")?;
    }
}

/// The fast path is deterministic run-to-run: same inputs, same bits
/// (reassociation is fixed by the tile shape, not by chance).
#[test]
fn simd_is_bitwise_deterministic_run_to_run() {
    let (m, k, n) = (37, 65, 29);
    let a: Vec<f64> = (0..m * k).map(|i| ((i * 31) % 17) as f64 * 0.375 - 3.0).collect();
    let b: Vec<f64> = (0..k * n).map(|i| ((i * 11) % 13) as f64 * 0.5 - 3.0).collect();
    let mut first = vec![0.0; m * n];
    matmul_f64(&a, &b, &mut first, m, k, n);
    for _ in 0..5 {
        let mut again = vec![0.0; m * n];
        matmul_f64(&a, &b, &mut again, m, k, n);
        for (f, g) in first.iter().zip(&again) {
            assert_eq!(f.to_bits(), g.to_bits());
        }
    }
}
