//! Property tests: the blocked kernels and the `Par` backend are
//! bit-identical to the naive reference on random shapes — including
//! the degenerate `k = 0` inner dimension and `1×n` rows — and `Par`
//! output does not depend on the thread count.

use ams_runtime::{kernels, Backend, Par, Seq};
use proptest::prelude::*;

const MAX_M: usize = 13;
const MAX_K: usize = 40;
const MAX_N: usize = 21;

/// Inject exact zeros so the zero-skip fast path is exercised.
fn sparsify(mut data: Vec<f64>) -> Vec<f64> {
    for v in &mut data {
        if v.abs() < 2.0 {
            *v = 0.0;
        }
    }
    data
}

fn assert_bits_eq(want: &[f64], got: &[f64], label: &str) -> Result<(), String> {
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        if w.to_bits() != g.to_bits() {
            return Err(format!("{label}: bit mismatch at {i}: {w:?} vs {g:?}"));
        }
    }
    Ok(())
}

proptest! {
    /// Blocked matmul is bit-identical to the naive triple loop,
    /// including empty inner dimension (k = 0) and single-row (1×n)
    /// shapes.
    #[test]
    fn blocked_matmul_matches_naive_bitwise(
        m in 0usize..MAX_M,
        k in 0usize..MAX_K,
        n in 1usize..MAX_N,
        pool in prop::collection::vec(-8.0f64..8.0, MAX_M * MAX_K + MAX_K * MAX_N)
            .prop_map(sparsify),
    ) {
        let a = &pool[..m * k];
        let b = &pool[MAX_M * MAX_K..MAX_M * MAX_K + k * n];
        let mut want = vec![0.0; m * n];
        kernels::matmul_naive(a, b, &mut want, m, k, n);
        let mut got = vec![0.0; m * n];
        kernels::matmul(a, b, &mut got, m, k, n);
        assert_bits_eq(&want, &got, "blocked")?;
    }

    /// The transposed-B micro-kernel agrees bitwise with the naive
    /// product of the materialized transpose.
    #[test]
    fn transb_matches_naive_bitwise(
        m in 1usize..MAX_M,
        k in 0usize..MAX_K,
        n in 1usize..MAX_N,
        pool in prop::collection::vec(-8.0f64..8.0, MAX_M * MAX_K + MAX_K * MAX_N)
            .prop_map(sparsify),
    ) {
        let a = &pool[..m * k];
        let bt = &pool[MAX_M * MAX_K..MAX_M * MAX_K + n * k]; // n×k = logical Bᵀ
        // Materialize B (k×n) from bt and multiply naively.
        let mut b = vec![0.0; k * n];
        for kk in 0..k {
            for j in 0..n {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let mut want = vec![0.0; m * n];
        kernels::matmul_naive(a, &b, &mut want, m, k, n);
        let mut got = vec![0.0; m * n];
        kernels::matmul_transb(a, bt, &mut got, m, k, n);
        assert_bits_eq(&want, &got, "transb")?;
    }

    /// Aᵀ·G fused kernel agrees bitwise with naive on the materialized
    /// transpose.
    #[test]
    fn transa_matches_naive_bitwise(
        r in 0usize..MAX_K,
        m in 1usize..MAX_M,
        n in 1usize..MAX_N,
        pool in prop::collection::vec(-8.0f64..8.0, MAX_K * MAX_M + MAX_K * MAX_N)
            .prop_map(sparsify),
    ) {
        let a = &pool[..r * m]; // r×m
        let g = &pool[MAX_K * MAX_M..MAX_K * MAX_M + r * n]; // r×n
        let mut at = vec![0.0; m * r];
        for rr in 0..r {
            for i in 0..m {
                at[i * r + rr] = a[rr * m + i];
            }
        }
        let mut want = vec![0.0; m * n];
        kernels::matmul_naive(&at, g, &mut want, m, r, n);
        let mut got = vec![0.0; m * n];
        kernels::matmul_transa(a, g, &mut got, r, m, n);
        assert_bits_eq(&want, &got, "transa")?;
    }

    /// The Par backend at 1, 2, and 8 threads produces the same bits
    /// as Seq for every shape — the determinism guarantee consumers
    /// rely on. Shapes are scaled up so some cases cross the parallel
    /// dispatch threshold and some stay under it.
    #[test]
    fn par_is_bitwise_deterministic_across_thread_counts(
        m in 1usize..48,
        k in 0usize..32,
        n in 1usize..24,
        pool in prop::collection::vec(-8.0f64..8.0, 48 * 32 + 32 * 24).prop_map(sparsify),
    ) {
        let a = &pool[..m * k];
        let b = &pool[48 * 32..48 * 32 + k * n];
        let mut want = vec![0.0; m * n];
        Seq.matmul(a, b, &mut want, m, k, n);
        for threads in [1usize, 2, 8] {
            let par = Par::new(threads);
            let mut got = vec![0.0; m * n];
            par.matmul(a, b, &mut got, m, k, n);
            assert_bits_eq(&want, &got, &format!("par:{threads}"))?;
        }
    }
}

/// Repeated runs on the same pool instance give the same bits — the
/// run-to-run half of the determinism guarantee.
#[test]
fn par_is_bitwise_deterministic_run_to_run() {
    let (m, k, n) = (64, 48, 32);
    let a: Vec<f64> = (0..m * k).map(|i| ((i * 31) % 17) as f64 * 0.375 - 3.0).collect();
    let b: Vec<f64> = (0..k * n).map(|i| ((i * 11) % 13) as f64 * 0.5 - 3.0).collect();
    let par = Par::new(4);
    let mut first = vec![0.0; m * n];
    par.matmul(&a, &b, &mut first, m, k, n);
    for _ in 0..5 {
        let mut again = vec![0.0; m * n];
        par.matmul(&a, &b, &mut again, m, k, n);
        for (f, g) in first.iter().zip(&again) {
            assert_eq!(f.to_bits(), g.to_bits());
        }
    }
}
