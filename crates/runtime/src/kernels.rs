//! Sequential micro-kernels over row-major [`Element`] slices.
//!
//! The kernels are generic over the scalar ([`Element`]: `f64` or
//! `f32`), but the `f64` instantiation is **bit-compatible** with the
//! historical `Matrix` loops it replaces. Two rules make that possible
//! and must be preserved by any future optimization of *this* module
//! (the explicitly vectorized [`crate::simd`] path is exempt and pays
//! for it with an epsilon oracle instead of a bit oracle):
//!
//! 1. each output element is produced by a *single* accumulator chain
//!    that adds terms in strictly increasing `k` order (blocking over
//!    rows/`k`-panels is fine, multi-accumulator unrolling is not);
//! 2. the historical zero-skip (`if a == 0.0 { continue; }`) is kept.
//!    Besides being a real win on the GAT attention matrices (masked
//!    softmax rows are mostly exact zeros), it is semantically load
//!    bearing: skipping is how `0 · ∞ = NaN` never enters an
//!    accumulator the old code kept clean.
//!
//! Both rules live in exactly one place: [`mac_row`], the shared
//! multiply-accumulate core. All three matmul variants (`A·B`,
//! `A·Bᵀ`, `Aᵀ·G`) and the naive oracle call it, so there is one MAC
//! loop to audit, not three near-duplicates.
//!
//! Cache strategy: `B` is row-major, so a `k`-panel of `B` is already
//! a packed contiguous block — the classic "pack B" step of a blocked
//! GEMM is a no-op here. [`matmul`] therefore blocks over `i` and `k`
//! and streams whole rows of `B`; [`matmul_transb`] is the
//! transposed-B micro-kernel, where `B`'s row-major data *is* the
//! packed `Bᵀ` panel and each output element is one contiguous dot
//! product. The backward pass uses it (and [`matmul_transa`]) to fuse
//! out the tape's materialized transposes.

use crate::element::Element;

/// Rows of `A`/`out` processed per cache block.
const MC: usize = 32;
/// Depth (`k`) processed per cache block; `KC` rows of `B` (`KC × n`
/// values) stay hot across the `MC` rows of the block.
const KC: usize = 256;

/// The one multiply-accumulate core: `out[j] += av * b[j]` for every
/// `j`, skipped entirely when `av == 0` (bit-compat rule 2 — the
/// zero-skip that keeps `0 · ∞` out of the accumulators). Every
/// output element of every matmul variant is built from calls to this
/// function with strictly increasing `k`, which is bit-compat rule 1.
#[inline(always)]
pub fn mac_row<E: Element>(out: &mut [E], av: E, b: &[E]) {
    if av == E::ZERO {
        return;
    }
    for (o, &bv) in out.iter_mut().zip(b) {
        *o += av * bv;
    }
}

/// `out[m×n] += 0` is assumed: callers pass a zeroed output buffer.
/// Cache-blocked `out = A·B` with the seed's ikj accumulation order.
///
/// Debug-asserts slice lengths; shape validation belongs to callers.
pub fn matmul<E: Element>(a: &[E], b: &[E], out: &mut [E], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k, "matmul: lhs buffer");
    debug_assert_eq!(b.len(), k * n, "matmul: rhs buffer");
    debug_assert_eq!(out.len(), m * n, "matmul: out buffer");
    matmul_rows(a, b, out, 0, m, k, n);
}

/// The row-range worker behind [`matmul`]: computes output rows
/// `lo..hi` into `out` (which holds exactly those rows, `(hi-lo)×n`).
/// The `Par` backend calls this per chunk; because every output row is
/// produced by this same sequential code whatever the chunking, results
/// are bit-identical across thread counts.
pub fn matmul_rows<E: Element>(
    a: &[E],
    b: &[E],
    out: &mut [E],
    lo: usize,
    hi: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), (hi - lo) * n, "matmul_rows: out buffer");
    for i0 in (lo..hi).step_by(MC) {
        let i1 = (i0 + MC).min(hi);
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            for i in i0..i1 {
                let arow = &a[i * k..(i + 1) * k];
                let out_row = &mut out[(i - lo) * n..(i - lo + 1) * n];
                for (kk, &av) in arow[k0..k1].iter().enumerate() {
                    let brow = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
                    mac_row(out_row, av, brow);
                }
            }
        }
    }
}

/// `out = A·Bᵀ` where `bt` holds `B` row-major as `n×k` — i.e. `bt`'s
/// rows are the columns of the logical right operand. This is the
/// packed/transposed-B micro-kernel: each output element is a single
/// contiguous dot product. Bit-identical to materializing the
/// transpose and calling [`matmul`] (same per-element accumulation
/// chain, same zero-skip on the left operand).
pub fn matmul_transb<E: Element>(a: &[E], bt: &[E], out: &mut [E], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k, "matmul_transb: lhs buffer");
    debug_assert_eq!(bt.len(), n * k, "matmul_transb: rhs buffer");
    debug_assert_eq!(out.len(), m * n, "matmul_transb: out buffer");
    matmul_transb_rows(a, bt, out, 0, m, k, n);
}

/// Row-range worker behind [`matmul_transb`] (same contract as
/// [`matmul_rows`]). The contiguous dot product is phrased as `k`
/// single-lane [`mac_row`] calls on the accumulator; `mac_row` is
/// `inline(always)`, so the accumulator stays in a register and the
/// loop compiles to the same scalar chain the hand-written dot did.
pub fn matmul_transb_rows<E: Element>(
    a: &[E],
    bt: &[E],
    out: &mut [E],
    lo: usize,
    hi: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), (hi - lo) * n, "matmul_transb_rows: out buffer");
    for i in lo..hi {
        let arow = &a[i * k..(i + 1) * k];
        let out_row = &mut out[(i - lo) * n..(i - lo + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let brow = &bt[j * k..(j + 1) * k];
            let mut acc = *o; // zero from the caller's buffer
            for (&av, bv) in arow.iter().zip(brow) {
                mac_row(std::slice::from_mut(&mut acc), av, std::slice::from_ref(bv));
            }
            *o = acc;
        }
    }
}

/// `out = Aᵀ·G` where `a` is `r×m` and `g` is `r×n`, producing `m×n` —
/// the `∂L/∂B = Aᵀ·g` term of the matmul VJP, without materializing
/// `Aᵀ`. Bit-identical to `a.t().matmul(g)`: for each output element
/// the terms are added in increasing `r` order and the zero-skip tests
/// the (transposed) left factor `a[r,i]`, exactly as the seed loop
/// tested `Aᵀ[i,r]`.
pub fn matmul_transa<E: Element>(a: &[E], g: &[E], out: &mut [E], r: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), r * m, "matmul_transa: lhs buffer");
    debug_assert_eq!(g.len(), r * n, "matmul_transa: rhs buffer");
    debug_assert_eq!(out.len(), m * n, "matmul_transa: out buffer");
    matmul_transa_cols(a, g, out, 0, m, r, m, n);
}

/// Column-range worker behind [`matmul_transa`]: computes output rows
/// `lo..hi` (columns `lo..hi` of the logical `A`) into `out`, which
/// holds exactly those rows. `full_m` is the row stride of `a`.
#[allow(clippy::too_many_arguments)]
pub fn matmul_transa_cols<E: Element>(
    a: &[E],
    g: &[E],
    out: &mut [E],
    lo: usize,
    hi: usize,
    r: usize,
    full_m: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), (hi - lo) * n, "matmul_transa_cols: out buffer");
    for i in lo..hi {
        let out_row = &mut out[(i - lo) * n..(i - lo + 1) * n];
        for rr in 0..r {
            let av = a[rr * full_m + i];
            let grow = &g[rr * n..(rr + 1) * n];
            mac_row(out_row, av, grow);
        }
    }
}

/// In-place row-broadcast bias add: `out[r][c] += bias[c]` for every
/// row of the `rows×n` buffer. Combined with [`matmul`] this is the
/// fused `matmul_add_bias` — the adds happen in the same row-major
/// order the tape's separate `add_row_broadcast` op used.
pub fn add_bias_rows<E: Element>(out: &mut [E], bias: &[E], rows: usize, n: usize) {
    debug_assert_eq!(out.len(), rows * n, "add_bias_rows: out buffer");
    debug_assert_eq!(bias.len(), n, "add_bias_rows: bias width");
    for row in out.chunks_exact_mut(n).take(rows) {
        for (o, &b) in row.iter_mut().zip(bias) {
            *o += b;
        }
    }
}

/// `y += alpha * x` — the optimizer-update axpy.
pub fn axpy<E: Element>(y: &mut [E], x: &[E], alpha: E) {
    debug_assert_eq!(y.len(), x.len(), "axpy: length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Row-wise softmax over positions where `mask != 0`; masked positions
/// output exactly 0 and a fully masked row stays all zero. `out` must
/// arrive zeroed. Identical structure to the historical tape op,
/// including the final divide over *all* columns (masked entries hold
/// `0.0`, and `0.0 / denom == 0.0` for the always-positive denom).
pub fn masked_softmax_rows<E: Element>(
    x: &[E],
    mask: &[E],
    out: &mut [E],
    rows: usize,
    cols: usize,
) {
    debug_assert_eq!(x.len(), rows * cols, "masked_softmax_rows: input buffer");
    debug_assert_eq!(mask.len(), rows * cols, "masked_softmax_rows: mask buffer");
    debug_assert_eq!(out.len(), rows * cols, "masked_softmax_rows: out buffer");
    masked_softmax_rows_range(x, mask, out, 0, rows, cols);
}

/// Row-range worker behind [`masked_softmax_rows`].
pub fn masked_softmax_rows_range<E: Element>(
    x: &[E],
    mask: &[E],
    out: &mut [E],
    lo: usize,
    hi: usize,
    cols: usize,
) {
    debug_assert_eq!(out.len(), (hi - lo) * cols, "masked_softmax_rows_range: out buffer");
    for r in lo..hi {
        let xrow = &x[r * cols..(r + 1) * cols];
        let mrow = &mask[r * cols..(r + 1) * cols];
        let orow = &mut out[(r - lo) * cols..(r - lo + 1) * cols];
        let mut maxv = E::NEG_INFINITY;
        for (xv, mv) in xrow.iter().zip(mrow) {
            if *mv != E::ZERO {
                maxv = maxv.max(*xv);
            }
        }
        if maxv == E::NEG_INFINITY {
            continue; // fully masked row
        }
        let mut denom = E::ZERO;
        for ((o, xv), mv) in orow.iter_mut().zip(xrow).zip(mrow) {
            if *mv != E::ZERO {
                let e = (*xv - maxv).exp();
                *o = e;
                denom += e;
            }
        }
        for o in orow.iter_mut() {
            *o /= denom;
        }
    }
}

/// `out[r] = dot(a.row(r), b.row(r))` over `rows×cols` inputs; `out`
/// has `rows` elements. The explicit fold from `E::ZERO` is the same
/// accumulation chain the historical `.sum()` performed.
pub fn rowwise_dot<E: Element>(a: &[E], b: &[E], out: &mut [E], rows: usize, cols: usize) {
    debug_assert_eq!(a.len(), rows * cols, "rowwise_dot: lhs buffer");
    debug_assert_eq!(b.len(), rows * cols, "rowwise_dot: rhs buffer");
    debug_assert_eq!(out.len(), rows, "rowwise_dot: out buffer");
    for (r, o) in out.iter_mut().enumerate() {
        let arow = &a[r * cols..(r + 1) * cols];
        let brow = &b[r * cols..(r + 1) * cols];
        let mut acc = E::ZERO;
        for (&x, &y) in arow.iter().zip(brow) {
            acc += x * y;
        }
        *o = acc;
    }
}

/// Reference triple loop — the seed `Matrix::matmul` verbatim, kept as
/// the equivalence oracle for the blocked/parallel/vectorized kernels.
pub fn matmul_naive<E: Element>(a: &[E], b: &[E], out: &mut [E], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            let brow = &b[kk * n..(kk + 1) * n];
            let out_row = &mut out[i * n..(i + 1) * n];
            mac_row(out_row, av, brow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        let mut v = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                v[r * cols + c] = f(r, c);
            }
        }
        v
    }

    #[test]
    fn blocked_matches_naive_bitwise_across_block_boundaries() {
        // Sizes straddling MC/KC boundaries, plus degenerate shapes.
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 2), (33, 257, 7), (64, 64, 64), (0, 4, 4), (4, 0, 4), (1, 300, 1)]
        {
            let a = mat(m, k, |r, c| ((r * 31 + c * 17) % 13) as f64 - 6.0);
            let b = mat(k, n, |r, c| ((r * 7 + c * 3) % 11) as f64 / 3.0 - 1.5);
            let mut want = vec![0.0; m * n];
            matmul_naive(&a, &b, &mut want, m, k, n);
            let mut got = vec![0.0; m * n];
            matmul(&a, &b, &mut got, m, k, n);
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.to_bits(), g.to_bits(), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn zero_skip_keeps_inf_out_of_the_accumulator() {
        // a = [0, 1], b column holds [inf, 2]: the historical semantics
        // give 2.0 (the 0·inf term is skipped, not NaN).
        let a = [0.0, 1.0];
        let b = [f64::INFINITY, 2.0];
        let mut out = [0.0];
        matmul(&a, &b, &mut out, 1, 2, 1);
        assert_eq!(out[0], 2.0);
        let mut out_t = [0.0];
        matmul_transb(&a, &b, &mut out_t, 1, 2, 1);
        assert_eq!(out_t[0], 2.0);
    }

    #[test]
    fn transb_matches_matmul_with_materialized_transpose() {
        let (m, k, n) = (9, 37, 6);
        let a = mat(m, k, |r, c| (r as f64 - 3.0) * 0.25 + c as f64 * 0.125);
        let bt = mat(n, k, |r, c| ((r * 5 + c) % 17) as f64 * 0.5 - 4.0);
        // Materialize B from Bᵀ and run the reference kernel.
        let b = mat(k, n, |r, c| bt[c * k + r]);
        let mut want = vec![0.0; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0; m * n];
        matmul_transb(&a, &bt, &mut got, m, k, n);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn transa_matches_matmul_with_materialized_transpose() {
        let (r, m, n) = (11, 5, 8);
        let a = mat(r, m, |i, j| ((i * 3 + j * 7) % 9) as f64 - 4.0);
        let g = mat(r, n, |i, j| (i as f64 * 0.5 - j as f64 * 0.25).sin());
        let at = mat(m, r, |i, j| a[j * m + i]);
        let mut want = vec![0.0; m * n];
        matmul_naive(&at, &g, &mut want, m, r, n);
        let mut got = vec![0.0; m * n];
        matmul_transa(&a, &g, &mut got, r, m, n);
        for (w, gv) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), gv.to_bits());
        }
    }

    #[test]
    fn fused_bias_equals_separate_add() {
        let (m, k, n) = (4, 3, 5);
        let a = mat(m, k, |r, c| (r + c) as f64 * 0.3);
        let b = mat(k, n, |r, c| (r as f64 - c as f64) * 0.7);
        let bias: Vec<f64> = (0..n).map(|c| c as f64 * 0.11 - 0.2).collect();
        let mut fused = vec![0.0; m * n];
        matmul(&a, &b, &mut fused, m, k, n);
        add_bias_rows(&mut fused, &bias, m, n);
        let mut separate = vec![0.0; m * n];
        matmul(&a, &b, &mut separate, m, k, n);
        for r in 0..m {
            for c in 0..n {
                separate[r * n + c] += bias[c];
            }
        }
        for (f, s) in fused.iter().zip(&separate) {
            assert_eq!(f.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn softmax_rows_and_fully_masked_row() {
        let x: [f64; 6] = [1.0, 2.0, 3.0, 0.0, 0.0, 0.0];
        let mask = [1.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let mut out = [0.0; 6];
        masked_softmax_rows(&x, &mask, &mut out, 2, 3);
        assert_eq!(out[1], 0.0);
        assert!((out[0] + out[2] - 1.0).abs() < 1e-12);
        assert!(out[2] > out[0]);
        assert_eq!(&out[3..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn axpy_and_rowwise_dot() {
        let mut y = [1.0, 1.0];
        axpy(&mut y, &[4.0, 8.0], -0.25);
        assert_eq!(y, [0.0, -1.0]);
        let mut out = [0.0; 2];
        rowwise_dot(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0], &mut out, 2, 2);
        assert_eq!(out, [17.0, 53.0]);
    }

    #[test]
    fn f32_instantiation_computes_the_same_small_product() {
        let a: [f32; 4] = [1.0, 2.0, 3.0, 4.0];
        let b: [f32; 4] = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0f32; 4];
        matmul(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
        let mut naive = [0.0f32; 4];
        matmul_naive(&a, &b, &mut naive, 2, 2, 2);
        assert_eq!(out, naive);
    }
}
