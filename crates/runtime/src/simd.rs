//! Explicitly vectorized single-core matmul: the `SimdSeq` backend.
//!
//! [`SimdSeq`] trades the bit-reproducibility contract of
//! [`crate::kernels`] for throughput. Its matmul uses a register-tiled
//! micro-kernel — `MR` rows of `A` against `NR` columns of `B`, every
//! output element carried in `MR×NR/lane` independent vector
//! accumulators — which reassociates the `k`-sum and therefore rounds
//! differently from the single-chain scalar kernels. The contract is
//! an **epsilon oracle**, not a bit oracle: for finite inputs the
//! result stays within a documented error bound of the naive
//! reference (`|err| ≤ rel · Σ|a||b| + abs`, see `DESIGN.md` §14 and
//! `crates/runtime/tests/simd_oracle.rs`). Two consequences:
//!
//! - training and any path that must replay bit-exactly keeps using
//!   `Seq`/`Par`; `SimdSeq` is for inference/serving;
//! - the historical zero-skip is *not* performed, so `0 · ∞ = NaN`
//!   can surface with non-finite inputs. `SimdSeq` requires finite
//!   inputs; the serve engine already validates finiteness of weights
//!   (artifact load) and outputs (predict).
//!
//! Two implementations sit behind the [`matmul_f64`]/[`matmul_f32`]
//! dispatchers:
//!
//! 1. `avx_matmul_*` — AVX2+FMA `core::arch` intrinsics, compiled
//!    under the `simd-intrinsics` feature (default-on) on x86_64 and
//!    selected at runtime via CPU feature detection;
//! 2. [`portable_matmul`] — a generic 8-lane unrolled kernel the
//!    autovectorizer cannot miss, used everywhere else.
//!
//! Only `matmul` (and through it the fused `matmul_add_bias`) is
//! overridden: it dominates the forward pass. The remaining `Backend`
//! methods fall back to the deterministic generic kernels, so e.g. the
//! masked softmax stays bit-identical to `Seq` even on this backend.

use crate::backend::Backend;
use crate::element::Element;
use crate::kernels;

#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
use core::arch::x86_64::*;

/// Rows of `A` per register tile (the BLIS-style 6×8 f64 tile: 12
/// vector accumulators, 2 packed-`B` vectors, 1 broadcast — 15 of the
/// 16 YMM registers).
const MR: usize = 6;
/// Depth (`k`) per cache block: the packed `B` tile (`KC × NR`
/// values, 32 KiB) stays cache-resident across the row strips of an
/// `MC` block, and one block covers the full depth of every matrix
/// in the bench/serve range so `out` is loaded and stored once.
const KC: usize = 512;
/// Rows of `A`/`out` per cache block (strip-mined over `MR` tiles).
const MC: usize = 96;

/// The vectorized sequential backend. One core, epsilon-accurate.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimdSeq;

/// Whether the intrinsics fast path is compiled in *and* the CPU
/// supports it at runtime. `false` means [`portable_matmul`] serves.
pub fn accelerated() -> bool {
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    {
        return is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
    }
    #[allow(unreachable_code)]
    false
}

impl Backend<f64> for SimdSeq {
    fn name(&self) -> String {
        "simd".to_string()
    }

    fn matmul(&self, a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        matmul_f64(a, b, out, m, k, n);
    }
}

impl Backend<f32> for SimdSeq {
    fn name(&self) -> String {
        "simd".to_string()
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_f32(a, b, out, m, k, n);
    }
}

/// Below this many multiply-adds the blocked AVX kernel's per-call
/// packing outweighs its throughput and the portable kernel is
/// faster. Static, so backend choice stays run-to-run deterministic.
const TILE_CUTOVER_FLOPS: usize = 32 * 32 * 32;

/// `out += A·B` in f64 via the fastest kernel this build and CPU
/// offer. Same zeroed-output contract as [`kernels::matmul`].
pub fn matmul_f64(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k, "matmul_f64: lhs buffer");
    debug_assert_eq!(b.len(), k * n, "matmul_f64: rhs buffer");
    debug_assert_eq!(out.len(), m * n, "matmul_f64: out buffer");
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    {
        if m * k * n >= TILE_CUTOVER_FLOPS && accelerated() {
            // SAFETY: `accelerated()` verified avx2+fma at runtime;
            // slice lengths are debug-asserted above and the kernel
            // stays in bounds for any m/k/n consistent with them.
            unsafe { avx_matmul_f64(a, b, out, m, k, n) };
            return;
        }
    }
    portable_matmul(a, b, out, m, k, n);
}

/// `out += A·B` in f32 (see [`matmul_f64`]).
pub fn matmul_f32(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k, "matmul_f32: lhs buffer");
    debug_assert_eq!(b.len(), k * n, "matmul_f32: rhs buffer");
    debug_assert_eq!(out.len(), m * n, "matmul_f32: out buffer");
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    {
        if m * k * n >= TILE_CUTOVER_FLOPS && accelerated() {
            // SAFETY: as in `matmul_f64`.
            unsafe { avx_matmul_f32(a, b, out, m, k, n) };
            return;
        }
    }
    portable_matmul(a, b, out, m, k, n);
}

/// Generic unrolled fallback: 8 fixed-width lane accumulators per row
/// strip, a shape every autovectorizer turns into vector FMAs. Not
/// bit-compatible with [`kernels::matmul`] (multi-accumulator, no
/// zero-skip) — epsilon oracle only.
pub fn portable_matmul<E: Element>(a: &[E], b: &[E], out: &mut [E], m: usize, k: usize, n: usize) {
    const LANES: usize = 8;
    let n_main = n - n % LANES;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j < n_main {
            let mut acc = [E::ZERO; LANES];
            for (kk, &av) in arow.iter().enumerate() {
                let brow = &b[kk * n + j..kk * n + j + LANES];
                for (l, &bv) in brow.iter().enumerate() {
                    acc[l] += av * bv;
                }
            }
            for (o, &v) in out_row[j..j + LANES].iter_mut().zip(acc.iter()) {
                *o += v;
            }
            j += LANES;
        }
        while j < n {
            let mut acc = E::ZERO;
            for (kk, &av) in arow.iter().enumerate() {
                acc += av * b[kk * n + j];
            }
            out_row[j] += acc;
            j += 1;
        }
    }
}

/// AVX2+FMA f64 kernel: 6×8 register tiles (12 YMM accumulators),
/// `KC`-blocked depth, `MC`-blocked rows. Each `KC × 8` panel of `B`
/// is packed into a contiguous stack tile first — at large `n`
/// the raw panel strides by a page per `k` step, which defeats the
/// prefetchers; packed, it streams at 64 B/iteration from L1 and is
/// reused across every row strip of the `MC` block. Scalar
/// single-chain loops cover the `m % 6` / `n % 8` fringes.
///
/// # Safety
/// Caller must ensure the CPU supports avx2 and fma, and that slice
/// lengths match `m·k`, `k·n`, `m·n`.
#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
#[target_feature(enable = "avx2,fma")]
unsafe fn avx_matmul_f64(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    const NR: usize = 8; // two 4-lane vectors
    let m_main = m - m % MR;
    let n_main = n - n % NR;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = out.as_mut_ptr();
    let mut bt = [0.0f64; KC * NR]; // packed B tile, L1-resident
    for i0 in (0..m_main).step_by(MC) {
        let i1 = (i0 + MC).min(m_main);
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            let kc = k1 - k0;
            let mut j = 0;
            while j < n_main {
                let btp = bt.as_mut_ptr();
                for kk in 0..kc {
                    let src = bp.add((k0 + kk) * n + j);
                    _mm256_storeu_pd(btp.add(kk * NR), _mm256_loadu_pd(src));
                    _mm256_storeu_pd(btp.add(kk * NR + 4), _mm256_loadu_pd(src.add(4)));
                }
                let btp = bt.as_ptr();
                let mut i = i0;
                while i < i1 {
                    let mut acc = [_mm256_setzero_pd(); 2 * MR];
                    for r in 0..MR {
                        acc[2 * r] = _mm256_loadu_pd(op.add((i + r) * n + j) as *const f64);
                        acc[2 * r + 1] = _mm256_loadu_pd(op.add((i + r) * n + j + 4) as *const f64);
                    }
                    for kk in 0..kc {
                        let b0 = _mm256_loadu_pd(btp.add(kk * NR));
                        let b1 = _mm256_loadu_pd(btp.add(kk * NR + 4));
                        for r in 0..MR {
                            let av = _mm256_set1_pd(*ap.add((i + r) * k + k0 + kk));
                            acc[2 * r] = _mm256_fmadd_pd(av, b0, acc[2 * r]);
                            acc[2 * r + 1] = _mm256_fmadd_pd(av, b1, acc[2 * r + 1]);
                        }
                    }
                    for r in 0..MR {
                        _mm256_storeu_pd(op.add((i + r) * n + j), acc[2 * r]);
                        _mm256_storeu_pd(op.add((i + r) * n + j + 4), acc[2 * r + 1]);
                    }
                    i += MR;
                }
                j += NR;
            }
        }
    }
    // Fringe rows (single-chain scalar, all columns).
    if m_main < m {
        kernels::matmul_rows(a, b, &mut out[m_main * n..], m_main, m, k, n);
    }
    // Fringe columns for the vectorized rows.
    for i in 0..m_main {
        for j in n_main..n {
            let mut acc = out[i * n + j];
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// AVX2+FMA f32 kernel: 6×16 register tiles (12 YMM accumulators of
/// 8 lanes). Same packing, blocking and fringe policy as
/// [`avx_matmul_f64`].
///
/// # Safety
/// As for [`avx_matmul_f64`].
#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
#[target_feature(enable = "avx2,fma")]
unsafe fn avx_matmul_f32(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    const NR: usize = 16; // two 8-lane vectors
    let m_main = m - m % MR;
    let n_main = n - n % NR;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = out.as_mut_ptr();
    let mut bt = [0.0f32; KC * NR]; // packed B tile, L1-resident
    for i0 in (0..m_main).step_by(MC) {
        let i1 = (i0 + MC).min(m_main);
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            let kc = k1 - k0;
            let mut j = 0;
            while j < n_main {
                let btp = bt.as_mut_ptr();
                for kk in 0..kc {
                    let src = bp.add((k0 + kk) * n + j);
                    _mm256_storeu_ps(btp.add(kk * NR), _mm256_loadu_ps(src));
                    _mm256_storeu_ps(btp.add(kk * NR + 8), _mm256_loadu_ps(src.add(8)));
                }
                let btp = bt.as_ptr();
                let mut i = i0;
                while i < i1 {
                    let mut acc = [_mm256_setzero_ps(); 2 * MR];
                    for r in 0..MR {
                        acc[2 * r] = _mm256_loadu_ps(op.add((i + r) * n + j) as *const f32);
                        acc[2 * r + 1] = _mm256_loadu_ps(op.add((i + r) * n + j + 8) as *const f32);
                    }
                    for kk in 0..kc {
                        let b0 = _mm256_loadu_ps(btp.add(kk * NR));
                        let b1 = _mm256_loadu_ps(btp.add(kk * NR + 8));
                        for r in 0..MR {
                            let av = _mm256_set1_ps(*ap.add((i + r) * k + k0 + kk));
                            acc[2 * r] = _mm256_fmadd_ps(av, b0, acc[2 * r]);
                            acc[2 * r + 1] = _mm256_fmadd_ps(av, b1, acc[2 * r + 1]);
                        }
                    }
                    for r in 0..MR {
                        _mm256_storeu_ps(op.add((i + r) * n + j), acc[2 * r]);
                        _mm256_storeu_ps(op.add((i + r) * n + j + 8), acc[2 * r + 1]);
                    }
                    i += MR;
                }
                j += NR;
            }
        }
    }
    if m_main < m {
        kernels::matmul_rows(a, b, &mut out[m_main * n..], m_main, m, k, n);
    }
    for i in 0..m_main {
        for j in n_main..n {
            let mut acc = out[i * n + j];
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(len: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..len).map(f).collect()
    }

    /// Per-element tolerance: `rel · (|A|·|B|)[i,j] + abs`.
    #[allow(clippy::too_many_arguments)]
    fn check_close(
        a: &[f64],
        b: &[f64],
        got: &[f64],
        m: usize,
        k: usize,
        n: usize,
        rel: f64,
        abs: f64,
    ) {
        let mut want = vec![0.0; m * n];
        kernels::matmul_naive(a, b, &mut want, m, k, n);
        let aa: Vec<f64> = a.iter().map(|v| v.abs()).collect();
        let ba: Vec<f64> = b.iter().map(|v| v.abs()).collect();
        let mut mag = vec![0.0; m * n];
        kernels::matmul_naive(&aa, &ba, &mut mag, m, k, n);
        for idx in 0..m * n {
            let tol = rel * mag[idx] + abs;
            assert!(
                (want[idx] - got[idx]).abs() <= tol,
                "elem {idx}: want {} got {} tol {tol}",
                want[idx],
                got[idx]
            );
        }
    }

    #[test]
    fn simd_f64_within_epsilon_of_naive_across_fringes() {
        // Straddle MR/NR/KC/MC boundaries and degenerate shapes.
        for &(m, k, n) in
            &[(1, 1, 1), (4, 8, 8), (5, 9, 11), (64, 300, 17), (67, 130, 70), (0, 3, 3), (3, 0, 3)]
        {
            let a = mat(m * k, |i| ((i * 37) % 23) as f64 * 0.125 - 1.0);
            let b = mat(k * n, |i| ((i * 13) % 19) as f64 * 0.25 - 2.0);
            let mut got = vec![0.0; m * n];
            matmul_f64(&a, &b, &mut got, m, k, n);
            check_close(&a, &b, &got, m, k, n, 1e-12, 1e-12);
        }
    }

    #[test]
    fn simd_f32_within_epsilon_of_f64_naive() {
        for &(m, k, n) in &[(4, 16, 16), (7, 33, 21), (40, 100, 40)] {
            let a = mat(m * k, |i| ((i * 7) % 13) as f64 * 0.25 - 1.5);
            let b = mat(k * n, |i| ((i * 11) % 17) as f64 * 0.125 - 1.0);
            let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let mut got32 = vec![0.0f32; m * n];
            matmul_f32(&a32, &b32, &mut got32, m, k, n);
            let got: Vec<f64> = got32.iter().map(|&v| v as f64).collect();
            check_close(&a, &b, &got, m, k, n, 1e-4, 1e-4);
        }
    }

    #[test]
    fn portable_matches_naive_within_epsilon() {
        let (m, k, n) = (13, 67, 29);
        let a = mat(m * k, |i| (i as f64 * 0.37).sin());
        let b = mat(k * n, |i| (i as f64 * 0.71).cos());
        let mut got = vec![0.0; m * n];
        portable_matmul(&a, &b, &mut got, m, k, n);
        check_close(&a, &b, &got, m, k, n, 1e-12, 1e-12);
    }

    #[test]
    fn backend_override_reaches_the_fast_path_and_fuses_bias() {
        let (m, k, n) = (6, 20, 10);
        let a = mat(m * k, |i| (i % 5) as f64 - 2.0);
        let b = mat(k * n, |i| (i % 7) as f64 * 0.5 - 1.5);
        let bias = mat(n, |i| i as f64 * 0.1);
        let mut fused = vec![0.0; m * n];
        SimdSeq.matmul_add_bias(&a, &b, &bias, &mut fused, m, k, n);
        let mut plain = vec![0.0; m * n];
        matmul_f64(&a, &b, &mut plain, m, k, n);
        kernels::add_bias_rows(&mut plain, &bias, m, n);
        for (f, p) in fused.iter().zip(&plain) {
            assert_eq!(f.to_bits(), p.to_bits());
        }
        assert_eq!(Backend::<f64>::name(&SimdSeq), "simd");
        assert_eq!(Backend::<f32>::name(&SimdSeq), "simd");
    }
}
