//! A persistent, std-only scoped thread pool.
//!
//! Built from `std::sync` primitives because the workspace vendors no
//! threading crates. The design is a single injector queue behind a
//! `Mutex` + `Condvar`: [`ThreadPool::run`] pushes one job per task,
//! wakes the workers, and blocks until its batch completes. Because
//! the caller does not return until every task has finished, a job may
//! safely borrow the caller's stack — the closure travels as a raw
//! wide pointer whose referent is pinned by the blocked caller (the
//! same lifetime argument `std::thread::scope` makes, without paying a
//! thread spawn per call).
//!
//! Determinism: the pool assigns *tasks*, not data. Callers partition
//! work by task index with [`partition`], which depends only on the
//! problem size and task count — never on which worker picks a job up
//! or in what order — so any value computed through the pool is a pure
//! function of its inputs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Completion state shared between one `run` call and the workers
/// executing its tasks.
struct Batch {
    /// The task body; valid for the lifetime of the `run` call, which
    /// outlives every worker's use by construction (see module docs).
    task: *const (dyn Fn(usize) + Sync),
    remaining: AtomicUsize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `task` is only dereferenced while the `run` caller is blocked
// waiting for the batch, so the referent is alive; the referent is
// `Sync`, so shared calls from several workers are allowed.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

struct Job {
    batch: Arc<Batch>,
    index: usize,
}

struct Shared {
    queue: Mutex<QueueState>,
    work_cv: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// A fixed-size persistent worker pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("workers", &self.handles.len()).finish()
    }
}

impl ThreadPool {
    /// Spawn `workers` (min 1) threads that live until the pool drops.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            work_cv: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run `task(0..tasks)` across the pool and block until every call
    /// has returned. Tasks run concurrently; the caller's borrows stay
    /// alive for the whole call, so `task` may capture references.
    ///
    /// # Panics
    /// Propagates (as a fresh panic) if any task panicked.
    pub fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        // SAFETY: lifetime erasure only — the reference stays valid
        // because this call blocks until every task has run (module
        // docs). The raw pointer is never dereferenced afterwards.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let batch = Arc::new(Batch {
            task: task as *const _,
            remaining: AtomicUsize::new(tasks),
            panicked: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut q = lock(&self.shared.queue);
            for index in 0..tasks {
                q.jobs.push_back(Job { batch: Arc::clone(&batch), index });
            }
        }
        self.shared.work_cv.notify_all();
        let mut done = lock(&batch.done);
        while !*done {
            done = batch.done_cv.wait(done).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(done);
        assert!(!batch.panicked.load(Ordering::SeqCst), "runtime pool task panicked");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A poisoned queue means some task panicked while holding the
    // lock; the queue structure itself is still sound.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work_cv.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // SAFETY: the batch's `run` caller is blocked until `remaining`
        // reaches zero, which only happens below, after this call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.batch.task)(job.index) }));
        if result.is_err() {
            job.batch.panicked.store(true, Ordering::SeqCst);
        }
        if job.batch.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            let mut done = lock(&job.batch.done);
            *done = true;
            job.batch.done_cv.notify_all();
        }
    }
}

/// Deterministic fixed partition of `len` items into `chunks` ranges:
/// chunk `t` gets `[start, end)`. Depends only on `(len, chunks, t)`,
/// never on scheduling — the cornerstone of the `Par` backend's
/// bit-reproducibility guarantee.
pub fn partition(len: usize, chunks: usize, t: usize) -> (usize, usize) {
    let chunks = chunks.max(1);
    let base = len / chunks;
    let rem = len % chunks;
    let start = t * base + t.min(rem);
    let size = base + usize::from(t < rem);
    (start.min(len), (start + size).min(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly_once() {
        for len in [0, 1, 7, 64, 101] {
            for chunks in [1, 2, 3, 8, 16] {
                let mut covered = vec![0usize; len];
                for t in 0..chunks {
                    let (lo, hi) = partition(len, chunks, t);
                    for slot in covered.iter_mut().take(hi).skip(lo) {
                        *slot += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "len={len} chunks={chunks}");
            }
        }
    }

    #[test]
    fn pool_runs_all_tasks_with_borrowed_state() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0usize; 64];
        let ptr = out.as_mut_ptr() as usize;
        pool.run(8, &|t| {
            let (lo, hi) = partition(64, 8, t);
            // SAFETY: disjoint ranges per task.
            let slice =
                unsafe { std::slice::from_raw_parts_mut((ptr as *mut usize).add(lo), hi - lo) };
            for (i, v) in slice.iter_mut().enumerate() {
                *v = lo + i + 1;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn pool_survives_reuse_and_concurrent_batches() {
        let pool = Arc::new(ThreadPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        pool.run(4, &|_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 3 * 10 * 4);
    }

    #[test]
    #[should_panic(expected = "runtime pool task panicked")]
    fn task_panic_propagates_to_caller() {
        let pool = ThreadPool::new(2);
        pool.run(2, &|t| {
            if t == 1 {
                panic!("boom");
            }
        });
    }
}
