//! Scratch-buffer arena shared by the training step and the serve
//! engine.
//!
//! A [`Workspace`] hands out zero-filled `Vec<E>` buffers and takes
//! them back when the caller is done. Returned buffers are kept on a
//! free list and re-issued by best capacity fit, so a steady-state
//! loop — an epoch of training, a prediction request — performs zero
//! heap allocations after warm-up. The `allocs`/`reuses` counters make
//! that property testable: a hot path is allocation-free exactly when
//! a second pass adds zero to `allocs`.
//!
//! The arena is generic over the scalar ([`Element`]) with `f64` as
//! the default, so every pre-existing `Workspace` annotation keeps
//! meaning what it meant; the f32 serve path owns its own
//! `Workspace<f32>` alongside the f64 one (pools of different widths
//! must not mix — a buffer's capacity is measured in its own
//! element).

use crate::element::Element;

/// A reusable pool of scratch buffers of one scalar type.
#[derive(Debug)]
pub struct Workspace<E: Element = f64> {
    free: Vec<Vec<E>>,
    allocs: usize,
    reuses: usize,
}

impl<E: Element> Default for Workspace<E> {
    fn default() -> Self {
        Self { free: Vec::new(), allocs: 0, reuses: 0 }
    }
}

impl<E: Element> Workspace<E> {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow a zero-filled buffer of exactly `len` elements,
    /// preferring the free buffer whose capacity fits tightest.
    pub fn take(&mut self, len: usize) -> Vec<E> {
        let best = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                self.reuses += 1;
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                // ams-audit: allow(alloc): resize within reserved capacity — the best-fit filter guarantees capacity >= len, so this never reallocates
                buf.resize(len, E::ZERO);
                buf
            }
            None => {
                self.allocs += 1;
                // ams-audit: allow(alloc): cold-start warm-up allocation, counted in self.allocs and asserted zero at steady state by the counter tests
                vec![E::ZERO; len]
            }
        }
    }

    /// Return a buffer to the arena for reuse.
    pub fn give(&mut self, buf: Vec<E>) {
        if buf.capacity() > 0 {
            // ams-audit: allow(alloc): free-list bookkeeping — its capacity stabilizes after warm-up, covered by the same steady-state counter tests
            self.free.push(buf);
        }
    }

    /// `(allocs, reuses)` since construction. `allocs` counts fresh
    /// heap allocations; a hot path that adds zero here between two
    /// calls is allocation-free.
    pub fn counters(&self) -> (usize, usize) {
        (self.allocs, self.reuses)
    }

    /// Buffers currently sitting on the free list.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_after_reuse() {
        let mut ws: Workspace<f64> = Workspace::new();
        let mut buf = ws.take(8);
        buf.iter_mut().for_each(|v| *v = 3.0);
        ws.give(buf);
        let again = ws.take(8);
        assert!(again.iter().all(|&v| v == 0.0));
        assert_eq!(ws.counters(), (1, 1));
    }

    #[test]
    fn best_fit_prefers_tightest_capacity() {
        let mut ws: Workspace<f64> = Workspace::new();
        ws.give(vec![0.0; 100]);
        ws.give(vec![0.0; 10]);
        let buf = ws.take(8);
        assert!(buf.capacity() < 100, "should have reused the 10-cap buffer");
        assert_eq!(ws.counters(), (0, 1));
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let mut ws: Workspace<f64> = Workspace::new();
        for _ in 0..3 {
            let a = ws.take(32);
            let b = ws.take(64);
            ws.give(a);
            ws.give(b);
        }
        let (allocs, reuses) = ws.counters();
        assert_eq!(allocs, 2);
        assert_eq!(reuses, 4);
    }

    #[test]
    fn undersized_buffers_are_skipped() {
        let mut ws: Workspace<f64> = Workspace::new();
        ws.give(vec![0.0; 4]);
        let buf = ws.take(16);
        assert_eq!(buf.len(), 16);
        assert_eq!(ws.counters(), (1, 0));
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn f32_arena_pools_independently() {
        let mut ws: Workspace<f32> = Workspace::new();
        let buf = ws.take(16);
        assert_eq!(buf.len(), 16);
        ws.give(buf);
        let again = ws.take(12);
        assert!(again.iter().all(|&v| v == 0.0f32));
        assert_eq!(ws.counters(), (1, 1));
    }
}
