//! Execution backends: *where* a kernel runs, separated from *what*
//! it computes.
//!
//! [`Seq`] is the reference backend — it calls the [`crate::kernels`]
//! directly and is bit-exact with the historical single-threaded
//! `Matrix` loops. [`Par`] dispatches row ranges of the same kernels
//! across a persistent [`ThreadPool`]. Because the partition is a pure
//! function of the problem shape ([`partition`]) and every row is
//! computed by the identical sequential kernel, `Par` output is
//! bit-identical to `Seq` — run-to-run and across thread counts. That
//! guarantee is what lets training, inference and serving choose a
//! backend freely without perturbing a single ulp.
//!
//! The trait is generic over the scalar ([`Element`]) with `f64` as
//! the default type parameter, so `dyn Backend` everywhere in the
//! codebase still means the bit-reproducible double-precision policy.
//! `Seq` and `Par` implement `Backend<E>` for every element type with
//! the same generic kernels — same ops, same order — while the
//! vectorized [`crate::SimdSeq`] implements `Backend<f64>` and
//! `Backend<f32>` separately and is held to an epsilon oracle rather
//! than a bit oracle (see [`crate::simd`]).

use crate::element::Element;
use crate::kernels;
use crate::pool::{partition, ThreadPool};
use crate::simd::SimdSeq;
use crate::RuntimeError;
use std::sync::Arc;

/// Minimum `m·k·n` (or `rows·cols` for row-wise ops) before `Par`
/// bothers the pool; below this the dispatch overhead dwarfs the work
/// and the sequential kernel is used. Shape-dependent only, so the
/// choice is deterministic.
const PAR_FLOP_THRESHOLD: usize = 16 * 1024;

/// A kernel execution policy. All methods compute over row-major
/// [`Element`] slices with caller-validated shapes (`debug_assert`ed
/// in the kernels); output buffers must arrive zeroed, as
/// [`crate::Workspace`] hands them out.
pub trait Backend<E: Element = f64>: Send + Sync + std::fmt::Debug {
    /// Human-readable backend name (for logs and bench output).
    fn name(&self) -> String;

    /// Worker threads the backend computes with (1 for `Seq`).
    fn threads(&self) -> usize {
        1
    }

    /// `out = A·B` (`m×k` times `k×n`).
    fn matmul(&self, a: &[E], b: &[E], out: &mut [E], m: usize, k: usize, n: usize) {
        kernels::matmul(a, b, out, m, k, n);
    }

    /// `out = A·Bᵀ` where `bt` is the logical `Bᵀ` stored row-major
    /// (`n×k`) — the packed-panel micro-kernel.
    fn matmul_transb(&self, a: &[E], bt: &[E], out: &mut [E], m: usize, k: usize, n: usize) {
        kernels::matmul_transb(a, bt, out, m, k, n);
    }

    /// `out = Aᵀ·G` (`a` is `r×m`, `g` is `r×n`, out `m×n`).
    fn matmul_transa(&self, a: &[E], g: &[E], out: &mut [E], r: usize, m: usize, n: usize) {
        kernels::matmul_transa(a, g, out, r, m, n);
    }

    /// Fused `out = A·B + bias` (bias broadcast over rows).
    #[allow(clippy::too_many_arguments)]
    fn matmul_add_bias(
        &self,
        a: &[E],
        b: &[E],
        bias: &[E],
        out: &mut [E],
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.matmul(a, b, out, m, k, n);
        kernels::add_bias_rows(out, bias, m, n);
    }

    /// `y += alpha·x`.
    fn axpy(&self, y: &mut [E], x: &[E], alpha: E) {
        kernels::axpy(y, x, alpha);
    }

    /// Row-wise masked softmax (see [`kernels::masked_softmax_rows`]).
    fn masked_softmax_rows(&self, x: &[E], mask: &[E], out: &mut [E], rows: usize, cols: usize) {
        kernels::masked_softmax_rows(x, mask, out, rows, cols);
    }

    /// `out[r] = dot(a.row(r), b.row(r))`.
    fn rowwise_dot(&self, a: &[E], b: &[E], out: &mut [E], rows: usize, cols: usize) {
        kernels::rowwise_dot(a, b, out, rows, cols);
    }
}

/// The sequential reference backend.
#[derive(Debug, Default, Clone, Copy)]
pub struct Seq;

impl<E: Element> Backend<E> for Seq {
    fn name(&self) -> String {
        "seq".to_string()
    }
}

/// Row-parallel backend over a persistent thread pool with a
/// deterministic fixed partition. Bit-identical to [`Seq`] (see module
/// docs).
#[derive(Debug)]
pub struct Par {
    pool: ThreadPool,
}

impl Par {
    /// Pool with `threads` workers (min 1).
    pub fn new(threads: usize) -> Self {
        Self { pool: ThreadPool::new(threads) }
    }

    /// Split `rows` into per-task chunks and run `body(task, lo, hi)`
    /// across the pool. `body` must write only to its own rows.
    fn for_row_chunks(&self, rows: usize, body: &(dyn Fn(usize, usize, usize) + Sync)) {
        let tasks = self.pool.workers().min(rows.max(1));
        self.pool.run(tasks, &|t| {
            let (lo, hi) = partition(rows, tasks, t);
            if lo < hi {
                body(t, lo, hi);
            }
        });
    }
}

/// A raw mutable pointer that may cross thread boundaries. Each task
/// writes a disjoint row range, so the aliasing is sound.
struct SendPtr<E>(*mut E);
impl<E> Clone for SendPtr<E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> Copy for SendPtr<E> {}
unsafe impl<E> Send for SendPtr<E> {}
unsafe impl<E> Sync for SendPtr<E> {}

impl<E: Element> SendPtr<E> {
    /// # Safety
    /// `lo*width..hi*width` must be in bounds and disjoint from every
    /// other task's range.
    unsafe fn rows(self, lo: usize, hi: usize, width: usize) -> &'static mut [E] {
        std::slice::from_raw_parts_mut(self.0.add(lo * width), (hi - lo) * width)
    }
}

impl<E: Element> Backend<E> for Par {
    fn name(&self) -> String {
        format!("par:{}", self.pool.workers())
    }

    fn threads(&self) -> usize {
        self.pool.workers()
    }

    fn matmul(&self, a: &[E], b: &[E], out: &mut [E], m: usize, k: usize, n: usize) {
        if m * k * n < PAR_FLOP_THRESHOLD || self.pool.workers() == 1 {
            return kernels::matmul(a, b, out, m, k, n);
        }
        debug_assert_eq!(out.len(), m * n, "matmul: out buffer");
        let ptr = SendPtr(out.as_mut_ptr());
        self.for_row_chunks(m, &|_, lo, hi| {
            // SAFETY: chunks are disjoint row ranges of `out`.
            let rows = unsafe { ptr.rows(lo, hi, n) };
            kernels::matmul_rows(a, b, rows, lo, hi, k, n);
        });
    }

    fn matmul_transb(&self, a: &[E], bt: &[E], out: &mut [E], m: usize, k: usize, n: usize) {
        if m * k * n < PAR_FLOP_THRESHOLD || self.pool.workers() == 1 {
            return kernels::matmul_transb(a, bt, out, m, k, n);
        }
        debug_assert_eq!(out.len(), m * n, "matmul_transb: out buffer");
        let ptr = SendPtr(out.as_mut_ptr());
        self.for_row_chunks(m, &|_, lo, hi| {
            // SAFETY: chunks are disjoint row ranges of `out`.
            let rows = unsafe { ptr.rows(lo, hi, n) };
            kernels::matmul_transb_rows(a, bt, rows, lo, hi, k, n);
        });
    }

    fn matmul_transa(&self, a: &[E], g: &[E], out: &mut [E], r: usize, m: usize, n: usize) {
        if r * m * n < PAR_FLOP_THRESHOLD || self.pool.workers() == 1 {
            return kernels::matmul_transa(a, g, out, r, m, n);
        }
        debug_assert_eq!(out.len(), m * n, "matmul_transa: out buffer");
        let ptr = SendPtr(out.as_mut_ptr());
        self.for_row_chunks(m, &|_, lo, hi| {
            // SAFETY: chunks are disjoint row ranges of `out`.
            let rows = unsafe { ptr.rows(lo, hi, n) };
            kernels::matmul_transa_cols(a, g, rows, lo, hi, r, m, n);
        });
    }

    fn masked_softmax_rows(&self, x: &[E], mask: &[E], out: &mut [E], rows: usize, cols: usize) {
        if rows * cols < PAR_FLOP_THRESHOLD || self.pool.workers() == 1 {
            return kernels::masked_softmax_rows(x, mask, out, rows, cols);
        }
        debug_assert_eq!(out.len(), rows * cols, "masked_softmax_rows: out buffer");
        let ptr = SendPtr(out.as_mut_ptr());
        self.for_row_chunks(rows, &|_, lo, hi| {
            // SAFETY: chunks are disjoint row ranges of `out`.
            let chunk = unsafe { ptr.rows(lo, hi, cols) };
            kernels::masked_softmax_rows_range(x, mask, chunk, lo, hi, cols);
        });
    }
}

/// Parsed backend selection, the form configs carry ("seq", "par",
/// "par:8", "simd").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendChoice {
    /// Sequential reference backend.
    Seq,
    /// Parallel backend with an explicit worker count (`None` = one
    /// worker per available CPU).
    Par(Option<usize>),
    /// Vectorized single-core backend (epsilon-accurate fast path).
    Simd,
}

impl BackendChoice {
    /// Parse a backend spec: `seq`, `par`, `par:N`, or `simd`.
    pub fn parse(spec: &str) -> Result<Self, RuntimeError> {
        match spec.trim() {
            "seq" => Ok(Self::Seq),
            "par" => Ok(Self::Par(None)),
            "simd" => Ok(Self::Simd),
            other => match other.strip_prefix("par:").map(str::parse::<usize>) {
                Some(Ok(n)) if n >= 1 => Ok(Self::Par(Some(n))),
                _ => Err(RuntimeError::BadBackendSpec(spec.to_string())),
            },
        }
    }

    fn par_threads(n: &Option<usize>) -> usize {
        n.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    }

    /// Instantiate the chosen backend at the default (f64) precision.
    pub fn create(&self) -> Arc<dyn Backend> {
        match self {
            Self::Seq => Arc::new(Seq),
            Self::Par(n) => Arc::new(Par::new(Self::par_threads(n))),
            Self::Simd => Arc::new(SimdSeq),
        }
    }

    /// Instantiate the chosen backend at f32 — the quantized serving
    /// precision. Every choice is available in both widths; `Seq`/`Par`
    /// stay deterministic in f32 too, `SimdSeq` is the fast path.
    pub fn create_f32(&self) -> Arc<dyn Backend<f32>> {
        match self {
            Self::Seq => Arc::new(Seq),
            Self::Par(n) => Arc::new(Par::new(Self::par_threads(n))),
            Self::Simd => Arc::new(SimdSeq),
        }
    }
}

/// A shared handle to the sequential backend — the default execution
/// policy everywhere a caller does not thread its own.
pub fn seq() -> Arc<dyn Backend> {
    Arc::new(Seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..len).map(f).collect()
    }

    #[test]
    fn par_matches_seq_bitwise_at_1_2_8_threads() {
        // Big enough to clear the dispatch threshold.
        let (m, k, n) = (48, 40, 32);
        let a = filled(m * k, |i| ((i * 37) % 23) as f64 * 0.125 - 1.0);
        let b = filled(k * n, |i| ((i * 13) % 19) as f64 * 0.25 - 2.0);
        let mut want = vec![0.0; m * n];
        Seq.matmul(&a, &b, &mut want, m, k, n);
        for threads in [1, 2, 8] {
            let par = Par::new(threads);
            let mut got = vec![0.0; m * n];
            par.matmul(&a, &b, &mut got, m, k, n);
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.to_bits(), g.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn par_softmax_matches_seq() {
        let (rows, cols) = (160, 120);
        let x = filled(rows * cols, |i| ((i * 7) % 31) as f64 * 0.3 - 4.0);
        let mask = filled(rows * cols, |i| f64::from(i % 3 != 0));
        let mut want = vec![0.0; rows * cols];
        Seq.masked_softmax_rows(&x, &mask, &mut want, rows, cols);
        let par = Par::new(4);
        let mut got = vec![0.0; rows * cols];
        par.masked_softmax_rows(&x, &mask, &mut got, rows, cols);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn par_f32_matches_seq_f32_bitwise() {
        // The deterministic backends stay deterministic in f32: same
        // generic kernels, same partition, same chains.
        let (m, k, n) = (48, 40, 32);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 23) as f32 * 0.125 - 1.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 13) % 19) as f32 * 0.25 - 2.0).collect();
        let mut want = vec![0.0f32; m * n];
        Seq.matmul(&a, &b, &mut want, m, k, n);
        let par = Par::new(4);
        let mut got = vec![0.0f32; m * n];
        par.matmul(&a, &b, &mut got, m, k, n);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn choice_parsing() {
        assert_eq!(BackendChoice::parse("seq").unwrap(), BackendChoice::Seq);
        assert_eq!(BackendChoice::parse("par").unwrap(), BackendChoice::Par(None));
        assert_eq!(BackendChoice::parse(" par:8 ").unwrap(), BackendChoice::Par(Some(8)));
        assert_eq!(BackendChoice::parse("simd").unwrap(), BackendChoice::Simd);
        assert!(BackendChoice::parse("par:0").is_err());
        assert!(BackendChoice::parse("gpu").is_err());
        assert!(BackendChoice::parse("").is_err());
    }

    #[test]
    fn choice_creates_named_backends() {
        assert_eq!(BackendChoice::Seq.create().name(), "seq");
        let par = BackendChoice::Par(Some(3)).create();
        assert_eq!(par.name(), "par:3");
        assert_eq!(par.threads(), 3);
        assert_eq!(BackendChoice::Simd.create().name(), "simd");
        assert_eq!(BackendChoice::Seq.create_f32().name(), "seq");
        assert_eq!(BackendChoice::Simd.create_f32().name(), "simd");
        assert_eq!(BackendChoice::Par(Some(2)).create_f32().threads(), 2);
    }
}
