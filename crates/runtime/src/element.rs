//! Scalar element trait for the precision-generic runtime.
//!
//! [`Element`] abstracts the two floating-point widths the runtime
//! supports: `f64` (the training and default serving precision, whose
//! kernels are bit-reproducible) and `f32` (the quantized inference
//! precision served by the vectorized fast path). Every kernel in
//! [`crate::kernels`], the [`crate::Workspace`] arena and the
//! [`crate::Backend`] trait are generic over it, with `f64` as the
//! default type parameter so all pre-existing call sites compile —
//! and behave — exactly as before.
//!
//! The trait deliberately exposes only the operations the kernels
//! use: constants, conversion through `f64`, `exp`/`max` for the
//! masked softmax, and finiteness checks for output validation.
//! Keeping the surface minimal is what lets the f64 path stay
//! bit-identical under the refactor — there is no room for a generic
//! implementation to pick a different instruction.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A scalar the runtime kernels can compute with.
///
/// Implemented for `f64` and `f32` only. The arithmetic operator
/// bounds mirror exactly what the kernels perform; `from_f64`/`to_f64`
/// are the sanctioned narrowing/widening points (quantization happens
/// there and nowhere else).
pub trait Element:
    Copy
    + PartialEq
    + PartialOrd
    + Debug
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Negative infinity — the masked-softmax "excluded" sentinel.
    const NEG_INFINITY: Self;
    /// Short dtype tag used in artifacts, logs and benchmarks.
    const DTYPE: &'static str;

    /// Narrow (or pass through) an `f64` value.
    fn from_f64(v: f64) -> Self;
    /// Widen (or pass through) to `f64`.
    fn to_f64(self) -> f64;
    /// `e^self`, in this precision.
    fn exp(self) -> Self;
    /// IEEE-754 maximum (NaN-ignoring, like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// Neither NaN nor infinite.
    fn is_finite(self) -> bool;
}

impl Element for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f64::NEG_INFINITY;
    const DTYPE: &'static str = "f64";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn exp(self) -> Self {
        f64::exp(self)
    }

    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Element for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f32::NEG_INFINITY;
    const DTYPE: &'static str = "f32";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn exp(self) -> Self {
        f32::exp(self)
    }

    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum<E: Element>(xs: &[f64]) -> f64 {
        let mut acc = E::ZERO;
        for &x in xs {
            acc += E::from_f64(x);
        }
        acc.to_f64()
    }

    #[test]
    fn f64_round_trip_is_identity() {
        for v in [0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, -7.25e300] {
            assert_eq!(f64::from_f64(v).to_bits(), v.to_bits());
            assert_eq!(Element::to_f64(v).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn f32_narrowing_rounds_to_nearest() {
        let v = 0.1_f64;
        let narrowed = <f32 as Element>::from_f64(v);
        assert_eq!(narrowed, 0.1_f32);
        assert!((narrowed.to_f64() - v).abs() < 1e-8);
    }

    #[test]
    fn generic_sum_matches_concrete() {
        let xs = [1.0, 2.5, -0.5, 3.25];
        assert_eq!(sum::<f64>(&xs), 6.25);
        assert_eq!(sum::<f32>(&xs), 6.25);
    }

    #[test]
    fn constants_and_predicates() {
        assert_eq!(f64::NEG_INFINITY, <f64 as Element>::NEG_INFINITY);
        assert!(!<f32 as Element>::NEG_INFINITY.is_finite());
        assert!(<f32 as Element>::ONE.is_finite());
        assert_eq!(<f32 as Element>::DTYPE, "f32");
        assert_eq!(<f64 as Element>::DTYPE, "f64");
    }
}
