//! `ams-runtime` — the shared execution layer under training,
//! inference, and serving.
//!
//! The crate owns three things:
//!
//! 1. **Kernels** ([`kernels`]): cache-blocked row-major routines,
//!    generic over the scalar ([`Element`]: `f64` or `f32`) — blocked
//!    matmul with a packed/transposed-B micro-kernel, the two
//!    transpose-fused products the tape's backward pass needs, fused
//!    bias addition, `axpy`, row-wise masked softmax. The `f64`
//!    instantiation preserves the exact accumulation order of the
//!    historical `Matrix` loops, so refactoring onto the runtime
//!    changes no result bit.
//! 2. **Backends** ([`backend`]): the [`Backend`] trait separates
//!    *what* is computed from *where* (and, via its `Element`
//!    parameter, at which precision — `f64` is the default). [`Seq`]
//!    is the bit-exact reference; [`Par`] spreads disjoint row ranges
//!    of the same kernels over a persistent std-only
//!    [`pool::ThreadPool`] with a deterministic fixed partition —
//!    identical output run-to-run and across thread counts.
//!    [`SimdSeq`] ([`simd`]) is the explicitly vectorized single-core
//!    fast path, held to an epsilon oracle instead of the bit oracle.
//! 3. **Workspaces** ([`workspace`]): a scratch-buffer arena so the
//!    training step and the serve engine reuse buffers instead of
//!    allocating on the hot path.
//!
//! Shape validation surfaces as the typed [`RuntimeError`] rather than
//! a panic, which is what lets the serve layer honor its
//! no-panic-in-inference rule without suppressions.

pub mod backend;
pub mod element;
pub mod kernels;
pub mod pool;
pub mod simd;
pub mod workspace;

pub use backend::{seq, Backend, BackendChoice, Par, Seq};
pub use element::Element;
pub use pool::{partition, ThreadPool};
pub use simd::SimdSeq;
pub use workspace::Workspace;

/// Errors surfaced by the runtime API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Operand shapes do not compose, e.g. `m×k · k'×n` with `k ≠ k'`.
    ShapeMismatch {
        /// Operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Left operand shape `(rows, cols)`.
        lhs: (usize, usize),
        /// Right operand shape `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A backend spec string that parses as none of `seq`, `par`,
    /// `par:N` with `N ≥ 1`, or `simd`.
    BadBackendSpec(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: dimension mismatch ({}x{} vs {}x{})", lhs.0, lhs.1, rhs.0, rhs.1)
            }
            Self::BadBackendSpec(spec) => {
                write!(f, "invalid backend spec {spec:?} (expected seq, par, par:N, or simd)")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_mismatch_display_names_shapes() {
        let err = RuntimeError::ShapeMismatch { op: "matmul", lhs: (2, 3), rhs: (4, 5) };
        assert_eq!(err.to_string(), "matmul: dimension mismatch (2x3 vs 4x5)");
    }

    #[test]
    fn bad_spec_display() {
        let err = RuntimeError::BadBackendSpec("gpu".into());
        assert!(err.to_string().contains("gpu"));
    }
}
