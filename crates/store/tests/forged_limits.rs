//! Forged-length containment: a store file whose *skeleton* declares
//! hostile sizes — terabyte segments, millions of companies per
//! block, an absurd quarter axis — must be refused with a typed
//! [`StoreError::TooLarge`] / `Corrupt` **before** any allocation is
//! sized by the forged number. A counting global allocator proves the
//! "before": peak heap growth while rejecting a file that declares
//! terabytes stays under a few megabytes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use ams_data::{generate, SynthConfig};
use ams_fault::framed::{header_line, parse_header};
use ams_store::{limits, write_panel, Skeleton, StoreError, StoreReader, STORE_MAGIC};

struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let now = CURRENT.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(now, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Heap growth (bytes above the level at call time) while running `f`.
fn peak_heap_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = CURRENT.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(base))
}

/// Rejecting a forged file must never allocate anywhere near the
/// forged sizes; the skeleton itself is a few KiB of JSON.
const PEAK_ALLOWANCE: usize = 8 << 20;

/// Re-frame `orig` with a mutated skeleton: same data section, fresh
/// header CRC/len so the forgery survives frame verification and is
/// caught by the *semantic* limits, not the checksum.
fn forge(orig: &Path, tag: &str, mutate: impl FnOnce(&mut Skeleton)) -> PathBuf {
    let bytes = fs::read(orig).expect("read original store");
    let nl = bytes.iter().position(|&b| b == b'\n').expect("header line");
    let head = std::str::from_utf8(&bytes[..nl]).expect("utf-8 header");
    let (_, skel_len) = parse_header(head, STORE_MAGIC).expect("parse header");
    let body_start = nl + 1;
    let mut sk: Skeleton =
        serde_json::from_slice(&bytes[body_start..body_start + skel_len]).expect("skeleton JSON");
    mutate(&mut sk);
    let body = serde_json::to_string(&sk).expect("re-serialize skeleton");
    let mut out = header_line(STORE_MAGIC, body.as_bytes()).into_bytes();
    out.extend_from_slice(body.as_bytes());
    out.extend_from_slice(&bytes[body_start + skel_len..]);
    let path = std::env::temp_dir().join(format!("ams-forged-{tag}-{}.store", std::process::id()));
    fs::write(&path, out).expect("write forged store");
    path
}

fn open_refused(path: &Path) -> (StoreError, usize) {
    let (res, peak) = peak_heap_during(|| StoreReader::open(path));
    match res {
        Err(e) => (e, peak),
        Ok(_) => panic!("forged store {} must not open", path.display()),
    }
}

#[test]
fn forged_skeleton_numbers_are_refused_typed_and_without_matching_allocation() {
    let cfg = SynthConfig { n_companies: 30, ..SynthConfig::tiny(47) };
    let panel = generate(&cfg).panel;
    let orig = std::env::temp_dir().join(format!("ams-forged-base-{}.store", std::process::id()));
    write_panel(&orig, &panel, 8).expect("write");
    StoreReader::open(&orig).expect("untampered store opens");

    // A segment claiming 1 TiB: refused at open with the declared
    // number and the ceiling it broke, and nothing 1 TiB-shaped was
    // ever allocated.
    let forged_seg = forge(&orig, "seglen", |sk| {
        sk.blocks[0].obs_segs[0].len = 1 << 40;
    });
    let (err, peak) = open_refused(&forged_seg);
    match err {
        StoreError::TooLarge { ref what, declared, limit } => {
            assert!(what.contains("segment length"), "{err}");
            assert_eq!(declared, 1 << 40);
            assert_eq!(limit, limits::MAX_SEGMENT_BYTES);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
    assert!(peak < PEAK_ALLOWANCE, "rejection allocated {peak} bytes");

    // A block claiming more companies than the per-block ceiling —
    // the count that sizes the decoded-column vectors.
    let huge_block = limits::MAX_BLOCK_COMPANIES + 7;
    let forged_block = forge(&orig, "blockn", |sk| {
        let grow = huge_block - sk.blocks[0].n_companies;
        sk.blocks[0].n_companies = huge_block;
        sk.n_companies += grow;
    });
    let (err, peak) = open_refused(&forged_block);
    match err {
        StoreError::TooLarge { ref what, declared, limit } => {
            assert!(what.contains("block company count"), "{err}");
            assert_eq!(declared, huge_block);
            assert_eq!(limit, limits::MAX_BLOCK_COMPANIES);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
    assert!(peak < PEAK_ALLOWANCE, "rejection allocated {peak} bytes");

    // A top-level company count beyond the store ceiling.
    let forged_total = forge(&orig, "totaln", |sk| {
        sk.n_companies = limits::MAX_COMPANIES + 1;
    });
    let (err, peak) = open_refused(&forged_total);
    match err {
        StoreError::TooLarge { ref what, declared, limit } => {
            assert!(what.contains("n_companies"), "{err}");
            assert_eq!(declared, limits::MAX_COMPANIES + 1);
            assert_eq!(limit, limits::MAX_COMPANIES);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
    assert!(peak < PEAK_ALLOWANCE, "rejection allocated {peak} bytes");

    // A quarter axis longer than any real panel: structurally valid
    // (consecutive quarters) so only the limits table rejects it.
    let forged_axis = forge(&orig, "quarters", |sk| {
        while sk.quarters.len() <= limits::MAX_QUARTERS {
            let last = *sk.quarters.last().expect("non-empty axis");
            sk.quarters.push(last.next());
        }
    });
    let (err, peak) = open_refused(&forged_axis);
    match err {
        StoreError::TooLarge { ref what, declared, limit } => {
            assert!(what.contains("quarter axis"), "{err}");
            assert_eq!(declared, limits::MAX_QUARTERS as u64 + 1);
            assert_eq!(limit, limits::MAX_QUARTERS as u64);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
    assert!(peak < PEAK_ALLOWANCE, "rejection allocated {peak} bytes");

    // A *subtle* forgery — a segment length shaved by one byte stays
    // inside every ceiling and inside the file, so the file opens; the
    // segment's own CRC then catches it at read time, typed with the
    // block index, and still without outsized allocation.
    let forged_shave = forge(&orig, "shave", |sk| {
        sk.blocks[1].obs_segs[0].len -= 1;
    });
    let mut reader = StoreReader::open(&forged_shave).expect("shaved store still opens");
    let (res, peak) = peak_heap_during(|| reader.read_block(1));
    match res {
        Err(StoreError::Corrupt { block: 1, .. }) => {}
        other => panic!("expected Corrupt{{block: 1}}, got {other:?}"),
    }
    assert!(peak < PEAK_ALLOWANCE, "corrupt read allocated {peak} bytes");
    // Neighbouring blocks are untouched by the forgery.
    reader.read_block(0).expect("block 0 clean");

    for p in [orig, forged_seg, forged_block, forged_total, forged_axis, forged_shave] {
        fs::remove_file(p).ok();
    }
}
