//! End-to-end store tests: bit-exact round trips, byte-counted random
//! access, and corruption containment — the acceptance criteria of the
//! feature-store subsystem.

use std::fs;
use std::path::PathBuf;

use ams_data::{generate, materialize, PanelSource, SynthConfig, SynthStream};
use ams_store::{write_panel, write_source, StoreError, StoreReader};

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ams-store-{tag}-{}.store", std::process::id()))
}

fn assert_obs_bits_eq(a: &ams_data::Observation, b: &ams_data::Observation, ctx: &str) {
    assert_eq!(a.revenue.to_bits(), b.revenue.to_bits(), "revenue {ctx}");
    assert_eq!(a.consensus.to_bits(), b.consensus.to_bits(), "consensus {ctx}");
    assert_eq!(a.low_est.to_bits(), b.low_est.to_bits(), "low {ctx}");
    assert_eq!(a.high_est.to_bits(), b.high_est.to_bits(), "high {ctx}");
    assert_eq!(a.alt.len(), b.alt.len(), "alt width {ctx}");
    for (x, y) in a.alt.iter().zip(&b.alt) {
        assert_eq!(x.to_bits(), y.to_bits(), "alt {ctx}");
    }
}

#[test]
fn paper_panels_round_trip_bit_exact() {
    for (name, cfg) in
        [("tx", SynthConfig::transaction_paper(41)), ("mq", SynthConfig::map_query_paper(41))]
    {
        let panel = generate(&cfg).panel;
        let path = temp_store(&format!("roundtrip-{name}"));
        write_panel(&path, &panel, 16).expect("write");
        let mut reader = StoreReader::open(&path).expect("open");
        let back = reader.read_panel().expect("read");
        assert_eq!(back.quarters, panel.quarters);
        assert_eq!(back.alt_names, panel.alt_names);
        assert_eq!(back.num_companies(), panel.num_companies());
        for c in 0..panel.num_companies() {
            let (x, y) = (&back.companies[c], &panel.companies[c]);
            assert_eq!(x.id, y.id);
            assert_eq!(x.name, y.name);
            assert_eq!(x.sector, y.sector);
            assert_eq!(x.market_cap.to_bits(), y.market_cap.to_bits());
            assert_eq!(x.fiscal_offset, y.fiscal_offset);
            for t in 0..panel.num_quarters() {
                assert_obs_bits_eq(back.get(c, t), panel.get(c, t), &format!("c{c} t{t}"));
            }
        }
        fs::remove_file(&path).ok();
    }
}

#[test]
fn point_lookup_reads_only_that_companys_block() {
    let cfg = SynthConfig { n_companies: 200, ..SynthConfig::tiny(42) };
    let path = temp_store("pointlookup");
    let summary = write_source(&path, &mut SynthStream::new(&cfg).as_source(), 16).expect("write");
    assert_eq!(summary.n_companies, 200);
    assert_eq!(summary.n_blocks, 13); // 12 × 16 + 1 × 8

    let file_len = fs::metadata(&path).expect("metadata").len();
    let mut reader = StoreReader::open(&path).expect("open");
    let open_bytes = reader.bytes_read();
    assert_eq!(open_bytes, reader.data_start(), "open reads header + skeleton only");

    // Look up a company in the middle of the file.
    let id = 100u64;
    let block = reader.block_for_company(id).expect("block");
    let block_bytes = reader.skeleton().blocks[block].encoded_len();
    let h = reader.company_history(id).expect("history");
    assert_eq!(h.company.id, 100);
    assert_eq!(h.obs.len(), cfg.n_quarters);

    let lookup_bytes = reader.bytes_read() - open_bytes;
    assert_eq!(
        lookup_bytes, block_bytes,
        "lookup must read exactly the one block holding the company"
    );
    assert!(
        reader.bytes_read() * 4 < file_len,
        "point lookup ({} B) should touch a small fraction of the file ({file_len} B)",
        reader.bytes_read()
    );
    fs::remove_file(&path).ok();
}

#[test]
fn streamed_write_equals_panel_write() {
    // The bounded-memory streaming path and the in-memory panel path
    // must produce byte-identical files for the same data.
    let cfg = SynthConfig { n_companies: 37, ..SynthConfig::tiny(43) };
    let via_stream = temp_store("stream");
    write_source(&via_stream, &mut SynthStream::new(&cfg).as_source(), 8).expect("write stream");
    let panel = materialize(&mut SynthStream::new(&cfg).as_source()).expect("materialize");
    let via_panel = temp_store("panel");
    write_panel(&via_panel, &panel, 8).expect("write panel");
    assert_eq!(
        fs::read(&via_stream).expect("read stream file"),
        fs::read(&via_panel).expect("read panel file"),
        "stream-written and panel-written stores must be byte-identical"
    );
    fs::remove_file(&via_stream).ok();
    fs::remove_file(&via_panel).ok();
}

#[test]
fn reader_is_a_panel_source() {
    let panel = generate(&SynthConfig::tiny(44)).panel;
    let path = temp_store("source");
    write_panel(&path, &panel, 5).expect("write");
    let mut reader = StoreReader::open(&path).expect("open");
    // Batch boundaries cut across block boundaries (batch 3, block 5).
    let mut seen = 0usize;
    loop {
        let batch = reader.next_batch(3).expect("batch");
        if batch.is_empty() {
            break;
        }
        for h in &batch {
            assert_eq!(h.company.id, seen);
            for (t, o) in h.obs.iter().enumerate() {
                assert_obs_bits_eq(o, panel.get(seen, t), &format!("c{seen} t{t}"));
            }
            seen += 1;
        }
    }
    assert_eq!(seen, panel.num_companies());
    // And materialize() over the reader rebuilds the panel.
    reader.reset();
    let back = materialize(&mut reader).expect("materialize");
    assert_eq!(back.num_companies(), panel.num_companies());
    fs::remove_file(&path).ok();
}

#[test]
fn no_temp_files_survive_a_finished_write() {
    let panel = generate(&SynthConfig::tiny(45)).panel;
    let path = temp_store("cleanup");
    write_panel(&path, &panel, 4).expect("write");
    for suffix in [".tmp", ".data.tmp"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(suffix);
        assert!(!PathBuf::from(&p).exists(), "stray {suffix} file after finish");
    }
    fs::remove_file(&path).ok();
}

#[test]
fn single_bit_flip_is_detected_and_contained() {
    let cfg = SynthConfig { n_companies: 60, ..SynthConfig::tiny(46) };
    let path = temp_store("corrupt");
    write_source(&path, &mut SynthStream::new(&cfg).as_source(), 10).expect("write");

    // Locate a byte in the middle of block 2's first segment and flip
    // one bit there.
    let (data_start, seg_offset, seg_len, n_blocks) = {
        let reader = StoreReader::open(&path).expect("open");
        let seg = &reader.skeleton().blocks[2].obs_segs[1];
        (reader.data_start(), seg.offset, seg.len, reader.skeleton().blocks.len())
    };
    assert_eq!(n_blocks, 6);
    let flip_byte = data_start + seg_offset + seg_len / 2;
    ams_fault::bit_flip_file(&path, flip_byte * 8 + 3).expect("flip");

    // The skeleton is intact, so the store still opens...
    let mut reader = StoreReader::open(&path).expect("reopen");
    // ...every other block still reads cleanly...
    for idx in [0usize, 1, 3, 4, 5] {
        reader.read_block(idx).unwrap_or_else(|e| panic!("block {idx} should be clean: {e}"));
    }
    // ...and exactly the corrupted block is rejected, naming itself.
    match reader.read_block(2) {
        Err(StoreError::Corrupt { block: 2, .. }) => {}
        other => panic!("expected Corrupt{{block: 2}}, got {other:?}"),
    }
    // A company inside the bad block fails; neighbours are fine.
    assert!(reader.company_history(25).is_err());
    assert!(reader.company_history(15).is_ok());
    assert!(reader.company_history(35).is_ok());

    // A flip in the skeleton region is caught at open.
    ams_fault::bit_flip_file(&path, (data_start / 2) * 8).expect("flip skeleton");
    assert!(StoreReader::open(&path).is_err(), "skeleton corruption must fail open()");
    fs::remove_file(&path).ok();
}
