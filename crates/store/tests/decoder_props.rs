//! Decoder totality and allocation-proportionality properties: every
//! column codec, fed *arbitrary* bytes and an arbitrary declared value
//! count, must return (`Ok` or a typed error — never panic), must
//! produce exactly the declared count on success, and must never
//! allocate more than a small multiple of `count + input` bytes. The
//! last property is the DoS contract: segment bytes reach `decode`
//! only after the skeleton's counts passed the limits table, so an
//! allocation proportional to the declared count is by design — but an
//! allocation proportional to a number *read out of the bytes
//! themselves* would be a forged-length amplification, and the
//! counting allocator here would catch it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ams_store::encoding::{codec, Column, EncodingTag};
use proptest::prelude::*;

struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let now = CURRENT.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(now, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Heap growth (bytes above the level at call time) while running `f`.
fn peak_heap_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = CURRENT.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(base))
}

/// Decode may allocate the output column (≤ 24 B/value counting
/// shuffle's transient plane buffer), dictionary strings bounded by
/// the input, and small error strings — nothing sized by unvalidated
/// numbers parsed out of the segment.
fn alloc_envelope(n: usize, input_len: usize) -> usize {
    (1 << 20) + 24 * n + 8 * input_len
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totality: arbitrary bytes with an arbitrary declared count
    /// return a value, succeed only with exactly `n` decoded values,
    /// and stay inside the count-proportional allocation envelope on
    /// success *and* failure.
    #[test]
    fn decoders_are_total_and_allocation_is_count_proportional(
        tag_idx in 0usize..EncodingTag::ALL.len(),
        byte_codes in prop::collection::vec(0usize..256, 0..512),
        n in 0usize..(1usize << 20),
    ) {
        let bytes: Vec<u8> = byte_codes.iter().map(|&b| b as u8).collect();
        let c = codec(EncodingTag::ALL[tag_idx]);
        let (res, peak) = peak_heap_during(|| c.decode(&bytes, n));
        prop_assert!(
            peak <= alloc_envelope(n, bytes.len()),
            "{:?} decode of {} bytes, n={n}: peak {peak} outside envelope {}",
            EncodingTag::ALL[tag_idx], bytes.len(), alloc_envelope(n, bytes.len())
        );
        if let Ok(col) = res {
            prop_assert_eq!(col.len(), n, "{:?}", EncodingTag::ALL[tag_idx]);
            // Decoding is a pure function of (bytes, n).
            let again = c.decode(&bytes, n).expect("second decode of accepted input");
            prop_assert_eq!(col, again);
        }
    }

    /// Round-trip with a hostile *count*: encoded bytes are honest,
    /// but the caller's count disagrees with them. Only the honest
    /// count may decode; every lie must be a typed error (the block
    /// directory's count and the segment must corroborate each other).
    #[test]
    fn an_i64_roundtrip_with_a_lying_count_is_refused(
        vals in prop::collection::vec(-1000i64..1000, 1..64),
        lie in 1usize..4,
    ) {
        for tag in [EncodingTag::DeltaVarintI64, EncodingTag::BitPackI64] {
            let c = codec(tag);
            let bytes = c.encode(&Column::I64(vals.clone())).expect("encode");
            let back = c.decode(&bytes, vals.len()).expect("honest count decodes");
            prop_assert_eq!(&back, &Column::I64(vals.clone()), "{:?}", tag);
            // Delta-varint spends ≥ 1 byte per value, so any lie about
            // the count leaves the byte math inconsistent. BitPack
            // packs sub-byte: a lie that lands in the same rounded-up
            // byte length (zero-width most of all) is indistinguishable
            // by construction, so no refusal is asserted for it.
            if tag == EncodingTag::DeltaVarintI64 {
                let under = vals.len() - lie.min(vals.len() - 1);
                if under < vals.len() {
                    prop_assert!(c.decode(&bytes, under).is_err(), "{:?}", tag);
                }
                prop_assert!(c.decode(&bytes, vals.len() + lie).is_err(), "{:?}", tag);
            }
        }
    }
}

/// The one legal amplification: a zero-width bit-packing declares `n`
/// identical values in two bytes. The decode must honour it — bounded
/// by the declared (limits-validated) count, roughly 8 B/value — and
/// must refuse a count past the limits table with no allocation at
/// all. This pins the documented contract that the *limits table*,
/// not the byte length, bounds zero-width columns.
#[test]
fn zero_width_bitpack_amplification_is_bounded_by_the_declared_count() {
    let c = codec(EncodingTag::BitPackI64);
    let bytes = c.encode(&Column::I64(vec![7i64; 3])).expect("encode constant column");
    assert!(bytes.len() <= 3, "constant column should pack to min+width only: {bytes:?}");

    let n = 1usize << 20;
    let (res, peak) = peak_heap_during(|| c.decode(&bytes, n));
    let col = res.expect("zero-width decode with a large declared count");
    assert_eq!(col.len(), n);
    assert_eq!(col, Column::I64(vec![7i64; n]));
    assert!(peak <= (1 << 20) + 24 * n, "zero-width decode peaked at {peak}");

    let over = ams_store::limits::MAX_DECODED_VALUES + 1;
    let (res, peak) = peak_heap_during(|| c.decode(&bytes, over));
    assert!(res.is_err(), "count past the limits table must be refused");
    assert!(peak <= 64 << 10, "refusal allocated {peak} bytes");
}
