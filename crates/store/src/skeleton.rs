//! The store skeleton: schema + block directory, separated from values.
//!
//! A store file is `framed header → skeleton JSON → value segments`.
//! The skeleton is everything a reader needs to *navigate* the file —
//! column schema, quarter axis, and for every block the byte range,
//! encoding and CRC of each column segment — while the values
//! themselves stay out of it. Opening a store parses only the
//! skeleton; each segment is then verified independently against its
//! directory CRC when (and only when) it is read.
//!
//! Segment offsets are relative to the **data start** (first byte
//! after the skeleton), so the skeleton's own serialized length never
//! feeds back into the offsets it records — the writer can lay out
//! blocks before the directory is complete.

use crate::encoding::EncodingTag;
use crate::limits;
use crate::StoreError;
use ams_data::Quarter;

/// Store format version, serialized in the skeleton. Distinct from the
/// outer frame version: the frame freezes the header line, this
/// freezes the skeleton schema and segment layout.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Logical kind of a column, fixing which [`Column`](crate::Column)
/// variant its segments decode to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ColumnKind {
    /// Decodes to `Column::I64`.
    I64,
    /// Decodes to `Column::F64`.
    F64,
    /// Decodes to `Column::Str`.
    Str,
}

/// One column of the schema. The store has two column groups: the
/// *company* group with one value per company, and the *observation*
/// group with one value per (company, quarter) in company-major order.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ColumnDesc {
    /// Column name, e.g. `sector` or `alt:txn_amount`.
    pub name: String,
    /// Logical kind its segments decode to.
    pub kind: ColumnKind,
}

/// One encoded column segment of one block.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SegmentEntry {
    /// Encoding name (an [`EncodingTag`] name; see
    /// [`SegmentEntry::encoding`]).
    pub encoding: String,
    /// Byte offset relative to the data start.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u64,
    /// CRC-32 of the encoded bytes.
    pub crc32: u32,
}

impl SegmentEntry {
    /// The parsed encoding tag.
    pub fn encoding(&self) -> Result<EncodingTag, StoreError> {
        EncodingTag::from_name(&self.encoding)
            .ok_or_else(|| StoreError::Invalid(format!("unknown encoding `{}`", self.encoding)))
    }
}

/// One block: a run of consecutive company ids with one segment per
/// schema column (company-group segments first, then obs-group, in
/// schema order).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BlockEntry {
    /// First company id in the block.
    pub first_id: u64,
    /// Number of companies in the block.
    pub n_companies: u64,
    /// Company-group segments, parallel to `Skeleton::company_cols`.
    pub company_segs: Vec<SegmentEntry>,
    /// Observation-group segments, parallel to `Skeleton::obs_cols`.
    pub obs_segs: Vec<SegmentEntry>,
}

impl BlockEntry {
    /// Total encoded bytes of this block's segments.
    pub fn encoded_len(&self) -> u64 {
        self.company_segs.iter().chain(&self.obs_segs).map(|s| s.len).sum()
    }
}

/// The store skeleton: schema, quarter axis, block directory.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Skeleton {
    /// Skeleton schema version ([`STORE_FORMAT_VERSION`]).
    pub format: u32,
    /// Total companies across all blocks (ids are dense `0..n`).
    pub n_companies: u64,
    /// The consecutive quarter axis every company covers.
    pub quarters: Vec<Quarter>,
    /// Alternative-channel names, in `Observation::alt` order.
    pub alt_names: Vec<String>,
    /// Company-group schema.
    pub company_cols: Vec<ColumnDesc>,
    /// Observation-group schema.
    pub obs_cols: Vec<ColumnDesc>,
    /// Block directory, ascending and dense in company id.
    pub blocks: Vec<BlockEntry>,
}

impl Skeleton {
    /// Validate the structural invariants a reader relies on: version,
    /// dense ascending blocks covering exactly `0..n_companies`,
    /// segment counts matching the schema, in-bounds segment ranges
    /// given `data_len` (the byte length of the value section), and
    /// every declared count under its [`limits`](crate::limits)
    /// ceiling — a skeleton is untrusted input, and each of these
    /// numbers sizes an allocation downstream.
    pub fn validate(&self, data_len: u64) -> Result<(), StoreError> {
        if self.format != STORE_FORMAT_VERSION {
            return Err(StoreError::Invalid(format!(
                "unsupported store format {} (this build reads {STORE_FORMAT_VERSION})",
                self.format
            )));
        }
        let too_large = |what: &str, declared: u64, limit: u64| StoreError::TooLarge {
            what: what.to_string(),
            declared,
            limit,
        };
        if self.n_companies > limits::MAX_COMPANIES {
            return Err(too_large("n_companies", self.n_companies, limits::MAX_COMPANIES));
        }
        if self.quarters.len() > limits::MAX_QUARTERS {
            return Err(too_large(
                "quarter axis length",
                self.quarters.len() as u64,
                limits::MAX_QUARTERS as u64,
            ));
        }
        if self.alt_names.len() > limits::MAX_ALT_SIGNALS {
            return Err(too_large(
                "alt channel count",
                self.alt_names.len() as u64,
                limits::MAX_ALT_SIGNALS as u64,
            ));
        }
        let mut next_id = 0u64;
        for (i, b) in self.blocks.iter().enumerate() {
            if b.first_id != next_id {
                return Err(StoreError::Invalid(format!(
                    "block {i} starts at id {} but {} expected",
                    b.first_id, next_id
                )));
            }
            if b.n_companies == 0 {
                return Err(StoreError::Invalid(format!("block {i} is empty")));
            }
            if b.n_companies > limits::MAX_BLOCK_COMPANIES {
                return Err(too_large(
                    "block company count",
                    b.n_companies,
                    limits::MAX_BLOCK_COMPANIES,
                ));
            }
            next_id = next_id.saturating_add(b.n_companies);
            if b.company_segs.len() != self.company_cols.len()
                || b.obs_segs.len() != self.obs_cols.len()
            {
                return Err(StoreError::Invalid(format!(
                    "block {i} has {}+{} segments for a {}+{} column schema",
                    b.company_segs.len(),
                    b.obs_segs.len(),
                    self.company_cols.len(),
                    self.obs_cols.len()
                )));
            }
            for s in b.company_segs.iter().chain(&b.obs_segs) {
                s.encoding()?;
                if s.len > limits::MAX_SEGMENT_BYTES {
                    return Err(too_large("segment length", s.len, limits::MAX_SEGMENT_BYTES));
                }
                let end = s.offset.checked_add(s.len).ok_or_else(|| {
                    StoreError::Invalid(format!("block {i}: segment range overflows"))
                })?;
                if end > data_len {
                    return Err(StoreError::Invalid(format!(
                        "block {i}: segment [{}, {end}) outside {data_len}-byte data section",
                        s.offset
                    )));
                }
            }
        }
        if next_id != self.n_companies {
            return Err(StoreError::Invalid(format!(
                "blocks cover {} companies, header says {}",
                next_id, self.n_companies
            )));
        }
        for w in self.quarters.windows(2) {
            if w[1] != w[0].next() {
                return Err(StoreError::Invalid("quarter axis not consecutive".to_string()));
            }
        }
        Ok(())
    }

    /// Index of the block containing company `id`, if any (binary
    /// search over the dense directory).
    pub fn block_for_company(&self, id: u64) -> Option<usize> {
        if id >= self.n_companies {
            return None;
        }
        let idx = self.blocks.partition_point(|b| b.first_id + b.n_companies <= id);
        (idx < self.blocks.len()).then_some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(offset: u64, len: u64) -> SegmentEntry {
        SegmentEntry { encoding: "raw-f64".to_string(), offset, len, crc32: 0 }
    }

    fn tiny_skeleton() -> Skeleton {
        Skeleton {
            format: STORE_FORMAT_VERSION,
            n_companies: 5,
            quarters: vec![Quarter::new(2015, 1), Quarter::new(2015, 2)],
            alt_names: vec!["txn_amount".to_string()],
            company_cols: vec![ColumnDesc { name: "cap".to_string(), kind: ColumnKind::F64 }],
            obs_cols: vec![ColumnDesc { name: "revenue".to_string(), kind: ColumnKind::F64 }],
            blocks: vec![
                BlockEntry {
                    first_id: 0,
                    n_companies: 3,
                    company_segs: vec![seg(0, 24)],
                    obs_segs: vec![seg(24, 48)],
                },
                BlockEntry {
                    first_id: 3,
                    n_companies: 2,
                    company_segs: vec![seg(72, 16)],
                    obs_segs: vec![seg(88, 32)],
                },
            ],
        }
    }

    #[test]
    fn valid_skeleton_passes_and_serializes() {
        let sk = tiny_skeleton();
        sk.validate(120).expect("valid");
        let json = serde_json::to_string(&sk).expect("serialize");
        let back: Skeleton = serde_json::from_str(&json).expect("deserialize");
        back.validate(120).expect("still valid");
        assert_eq!(back.blocks.len(), 2);
        assert_eq!(back.blocks[1].first_id, 3);
        assert_eq!(back.blocks[0].encoded_len(), 72);
    }

    #[test]
    fn block_lookup_is_by_id_range() {
        let sk = tiny_skeleton();
        assert_eq!(sk.block_for_company(0), Some(0));
        assert_eq!(sk.block_for_company(2), Some(0));
        assert_eq!(sk.block_for_company(3), Some(1));
        assert_eq!(sk.block_for_company(4), Some(1));
        assert_eq!(sk.block_for_company(5), None);
    }

    #[test]
    fn structural_violations_are_rejected() {
        let mut gap = tiny_skeleton();
        gap.blocks[1].first_id = 4;
        assert!(gap.validate(120).is_err());

        let mut short = tiny_skeleton();
        short.n_companies = 6;
        assert!(short.validate(120).is_err());

        let mut out_of_bounds = tiny_skeleton();
        out_of_bounds.blocks[1].obs_segs[0].len = 1000;
        assert!(out_of_bounds.validate(120).is_err());

        let mut bad_encoding = tiny_skeleton();
        bad_encoding.blocks[0].company_segs[0].encoding = "zstd".to_string();
        assert!(bad_encoding.validate(120).is_err());

        let mut wrong_version = tiny_skeleton();
        wrong_version.format = 99;
        assert!(wrong_version.validate(120).is_err());

        let mut bad_axis = tiny_skeleton();
        bad_axis.quarters[1] = Quarter::new(2019, 1);
        assert!(bad_axis.validate(120).is_err());
    }
}
