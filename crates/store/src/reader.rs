//! Reading store files.
//!
//! [`StoreReader::open`] reads and verifies *only* the framed header
//! and the skeleton JSON; value segments are fetched on demand with
//! `seek` + `read_exact` and verified against their directory CRC as
//! they arrive. The reader counts every logical byte it requests
//! ([`StoreReader::bytes_read`]), which is how tests *prove* the
//! random-access claim: a point lookup's byte count is the skeleton
//! plus one block, not the file.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use ams_data::source::{CompanyHistory, SourceError};
use ams_data::{Company, Observation, Panel, PanelSource, Quarter, Sector};
use ams_fault::framed::{crc32, parse_header, FrameError};

use crate::encoding::Column;
use crate::skeleton::{BlockEntry, ColumnKind, Skeleton};
use crate::{StoreError, STORE_MAGIC};

/// Longest header line we accept: magic + version + crc + a 20-digit
/// length, with slack.
const MAX_HEADER_LINE: usize = 96;

/// Random-access store reader; also a [`PanelSource`] for full scans.
#[derive(Debug)]
pub struct StoreReader {
    file: File,
    skeleton: Skeleton,
    data_start: u64,
    bytes_read: u64,
    cursor_block: usize,
    buffer: VecDeque<CompanyHistory>,
}

impl StoreReader {
    /// Open a store: verify the framed header, load and validate the
    /// skeleton. No value segment is touched.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();

        let mut head_buf = vec![0u8; MAX_HEADER_LINE.min(file_len as usize)];
        file.read_exact(&mut head_buf)?;
        let nl = head_buf
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| FrameError::BadHeader("no header line".to_string()))?;
        let head = std::str::from_utf8(&head_buf[..nl])
            .map_err(|_| FrameError::BadHeader("non-utf8 header".to_string()))?;
        let (expected_crc, skeleton_len) = parse_header(head, STORE_MAGIC)?;

        let header_len = nl as u64 + 1;
        let data_start = header_len.checked_add(skeleton_len as u64).ok_or_else(|| {
            StoreError::Invalid(format!("skeleton length {skeleton_len} overflows the file offset"))
        })?;
        if data_start > file_len {
            return Err(FrameError::LengthMismatch {
                expected: skeleton_len,
                actual: file_len.saturating_sub(header_len) as usize,
            }
            .into());
        }
        file.seek(SeekFrom::Start(header_len))?;
        let mut body = vec![0u8; skeleton_len];
        file.read_exact(&mut body)?;
        let actual = crc32(&body);
        if actual != expected_crc {
            return Err(FrameError::ChecksumMismatch { expected: expected_crc, actual }.into());
        }
        let body = String::from_utf8(body)
            .map_err(|_| StoreError::Invalid("skeleton is not utf-8".to_string()))?;
        let skeleton: Skeleton = serde_json::from_str(&body)
            .map_err(|e| StoreError::Invalid(format!("skeleton parse: {e}")))?;
        skeleton.validate(file_len - data_start)?;

        Ok(Self {
            file,
            skeleton,
            data_start,
            bytes_read: data_start,
            cursor_block: 0,
            buffer: VecDeque::new(),
        })
    }

    /// The validated skeleton (schema + block directory).
    pub fn skeleton(&self) -> &Skeleton {
        &self.skeleton
    }

    /// Absolute file offset of the value section — segment offsets in
    /// the directory are relative to this.
    pub fn data_start(&self) -> u64 {
        self.data_start
    }

    /// Logical bytes requested from the file so far (header plus
    /// skeleton plus every segment read). The random-access acceptance
    /// tests assert on this.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Directory index of the block holding company `id`.
    pub fn block_for_company(&self, id: u64) -> Option<usize> {
        self.skeleton.block_for_company(id)
    }

    /// Fetch one segment's bytes and verify its CRC. The directory
    /// length is re-checked against [`limits::MAX_SEGMENT_BYTES`] at
    /// the allocation site (validation already enforced it, but the
    /// number came off disk — the buffer is never sized on its say-so
    /// alone).
    fn read_seg(
        &mut self,
        block: usize,
        seg: &crate::skeleton::SegmentEntry,
    ) -> Result<Vec<u8>, StoreError> {
        if seg.len > crate::limits::MAX_SEGMENT_BYTES {
            return Err(StoreError::TooLarge {
                what: format!("block {block} segment length"),
                declared: seg.len,
                limit: crate::limits::MAX_SEGMENT_BYTES,
            });
        }
        self.file.seek(SeekFrom::Start(self.data_start + seg.offset))?;
        let mut bytes = vec![0u8; seg.len as usize];
        self.file.read_exact(&mut bytes)?;
        self.bytes_read += seg.len;
        let actual = crc32(&bytes);
        if actual != seg.crc32 {
            return Err(StoreError::Corrupt {
                block,
                detail: format!("segment crc {actual:08x}, directory says {:08x}", seg.crc32),
            });
        }
        Ok(bytes)
    }

    /// Read, verify and decode every segment of block `idx` into
    /// companies plus company-major observations.
    pub fn read_block(
        &mut self,
        idx: usize,
    ) -> Result<(Vec<Company>, Vec<Observation>), StoreError> {
        let entry: BlockEntry = self
            .skeleton
            .blocks
            .get(idx)
            .cloned()
            .ok_or_else(|| StoreError::Invalid(format!("no block {idx}")))?;
        if entry.n_companies > crate::limits::MAX_BLOCK_COMPANIES {
            return Err(StoreError::TooLarge {
                what: format!("block {idx} company count"),
                declared: entry.n_companies,
                limit: crate::limits::MAX_BLOCK_COMPANIES,
            });
        }
        let n = entry.n_companies as usize;
        let nq = self.skeleton.quarters.len();
        let cells = n.checked_mul(nq).ok_or_else(|| {
            StoreError::Invalid(format!("block {idx}: {n} companies x {nq} quarters overflows"))
        })?;
        let corrupt = |detail: String| StoreError::Corrupt { block: idx, detail };

        let mut company_cols = Vec::with_capacity(entry.company_segs.len());
        for (desc, seg) in self.skeleton.company_cols.clone().iter().zip(&entry.company_segs) {
            company_cols.push(self.decode_seg(idx, desc.kind, seg, n)?);
        }
        let mut obs_cols = Vec::with_capacity(entry.obs_segs.len());
        for (desc, seg) in self.skeleton.obs_cols.clone().iter().zip(&entry.obs_segs) {
            obs_cols.push(self.decode_seg(idx, desc.kind, seg, cells)?);
        }

        // Reassemble rows from the fixed schema (see writer.rs).
        let (ids, names, sectors, caps, offsets) = match (
            company_cols.first(),
            company_cols.get(1),
            company_cols.get(2),
            company_cols.get(3),
            company_cols.get(4),
        ) {
            (
                Some(Column::I64(ids)),
                Some(Column::Str(names)),
                Some(Column::Str(sectors)),
                Some(Column::F64(caps)),
                Some(Column::I64(offsets)),
            ) => (ids, names, sectors, caps, offsets),
            _ => return Err(corrupt("company column group malformed".to_string())),
        };
        let mut companies = Vec::with_capacity(n);
        for k in 0..n {
            let expected = entry.first_id + k as u64;
            if ids[k] != expected as i64 {
                return Err(corrupt(format!("id column has {} where {expected} expected", ids[k])));
            }
            let sector = Sector::ALL
                .into_iter()
                .find(|s| s.name() == sectors[k])
                .ok_or_else(|| corrupt(format!("unknown sector `{}`", sectors[k])))?;
            let fiscal_offset = u8::try_from(offsets[k])
                .map_err(|_| corrupt(format!("fiscal offset {} out of range", offsets[k])))?;
            companies.push(Company {
                id: expected as usize,
                name: names[k].clone(),
                sector,
                market_cap: caps[k],
                fiscal_offset,
            });
        }

        let quarter_col = match obs_cols.first() {
            Some(Column::I64(q)) => q,
            _ => return Err(corrupt("quarter column malformed".to_string())),
        };
        for (i, &q) in quarter_col.iter().enumerate() {
            let expected = self.skeleton.quarters[i % nq].index();
            if q != expected {
                return Err(corrupt(format!(
                    "quarter column value {q} at row {i}, axis says {expected}"
                )));
            }
        }
        let fcol = |slot: usize| -> Result<&Vec<f64>, StoreError> {
            match obs_cols.get(slot) {
                Some(Column::F64(v)) => Ok(v),
                _ => Err(StoreError::Corrupt {
                    block: idx,
                    detail: format!("observation column {slot} malformed"),
                }),
            }
        };
        let revenue = fcol(1)?;
        let consensus = fcol(2)?;
        let low_est = fcol(3)?;
        let high_est = fcol(4)?;
        let n_alt = self.skeleton.alt_names.len();
        let mut alts = Vec::with_capacity(n_alt);
        for k in 0..n_alt {
            alts.push(fcol(5 + k)?);
        }
        let mut obs = Vec::with_capacity(cells);
        for i in 0..cells {
            obs.push(Observation {
                revenue: revenue[i],
                consensus: consensus[i],
                low_est: low_est[i],
                high_est: high_est[i],
                alt: alts.iter().map(|col| col[i]).collect(),
            });
        }
        Ok((companies, obs))
    }

    /// Decode one segment, checking the value count and column kind.
    fn decode_seg(
        &mut self,
        block: usize,
        kind: ColumnKind,
        seg: &crate::skeleton::SegmentEntry,
        n: usize,
    ) -> Result<Column, StoreError> {
        let tag = seg.encoding()?;
        let bytes = self.read_seg(block, seg)?;
        let col = crate::encoding::codec(tag)
            .decode(&bytes, n)
            .map_err(|e| StoreError::Corrupt { block, detail: format!("segment decode: {e}") })?;
        let ok = matches!(
            (&col, kind),
            (Column::I64(_), ColumnKind::I64)
                | (Column::F64(_), ColumnKind::F64)
                | (Column::Str(_), ColumnKind::Str)
        );
        if !ok {
            return Err(StoreError::Corrupt {
                block,
                detail: format!("segment decoded to wrong kind (schema says {kind:?})"),
            });
        }
        Ok(col)
    }

    /// Point lookup: one company's full history, reading only the
    /// block that contains it.
    pub fn company_history(&mut self, id: u64) -> Result<CompanyHistory, StoreError> {
        let block = self
            .skeleton
            .block_for_company(id)
            .ok_or_else(|| StoreError::Invalid(format!("no company {id} in store")))?;
        let (companies, obs) = self.read_block(block)?;
        let nq = self.skeleton.quarters.len();
        if block >= self.skeleton.blocks.len() {
            return Err(StoreError::Invalid(format!("no block {block}")));
        }
        let first = self.skeleton.blocks[block].first_id;
        let k = id.saturating_sub(first) as usize;
        let company = companies.into_iter().nth(k).ok_or_else(|| StoreError::Corrupt {
            block,
            detail: format!("block shorter than directory claims at company {id}"),
        })?;
        // `read_block` decoded exactly n·nq observations, but both
        // factors are directory claims — bound the slice before taking
        // it rather than trusting the product.
        let end = k.saturating_add(1).saturating_mul(nq);
        if nq == 0 || end > obs.len() {
            return Err(StoreError::Corrupt {
                block,
                detail: format!("company {id} history [{}, {end}) outside block", end - nq),
            });
        }
        Ok(CompanyHistory { company, obs: obs[end - nq..end].to_vec() })
    }

    /// Full scan into an in-memory [`Panel`]. Paper-scale only; at
    /// vendor scale, consume the reader as a [`PanelSource`] instead.
    pub fn read_panel(&mut self) -> Result<Panel, StoreError> {
        // Capacity hints only (contents grow by `extend`, which is
        // payload-proportionate) — but the hints themselves allocate,
        // so they are capped independently of the skeleton's claims.
        let n_hint =
            (self.skeleton.n_companies as usize).min(crate::limits::MAX_COMPANIES as usize);
        let cell_hint = n_hint
            .saturating_mul(self.skeleton.quarters.len())
            .min(crate::limits::MAX_DECODED_VALUES);
        let mut companies = Vec::with_capacity(n_hint);
        let mut obs = Vec::with_capacity(cell_hint);
        for idx in 0..self.skeleton.blocks.len() {
            let (c, o) = self.read_block(idx)?;
            companies.extend(c);
            obs.extend(o);
        }
        Ok(Panel::new(
            companies,
            self.skeleton.quarters.clone(),
            self.skeleton.alt_names.clone(),
            obs,
        ))
    }
}

impl PanelSource for StoreReader {
    fn num_companies(&self) -> usize {
        // `validate` already rejected skeletons past the ceiling, so
        // the `min` is the identity on any opened store — it exists so
        // every consumer sizing buffers off this count inherits the
        // bound rather than the raw directory claim.
        (self.skeleton.n_companies as usize).min(crate::limits::MAX_COMPANIES as usize)
    }

    fn quarters(&self) -> &[Quarter] {
        &self.skeleton.quarters
    }

    fn alt_names(&self) -> &[String] {
        &self.skeleton.alt_names
    }

    fn next_batch(&mut self, max_companies: usize) -> Result<Vec<CompanyHistory>, SourceError> {
        let nq = self.skeleton.quarters.len();
        while self.buffer.len() < max_companies && self.cursor_block < self.skeleton.blocks.len() {
            let idx = self.cursor_block;
            let (companies, mut obs) = self.read_block(idx)?;
            self.cursor_block += 1;
            for (k, company) in companies.into_iter().enumerate() {
                let rest = obs.split_off(nq.min(obs.len()));
                let history = std::mem::replace(&mut obs, rest);
                if history.len() != nq {
                    return Err(SourceError::Invalid(format!(
                        "block {idx} ran out of observations at company {k}"
                    )));
                }
                self.buffer.push_back(CompanyHistory { company, obs: history });
            }
        }
        let take = max_companies.min(self.buffer.len());
        Ok(self.buffer.drain(..take).collect())
    }

    fn reset(&mut self) {
        self.cursor_block = 0;
        self.buffer.clear();
    }
}
