//! Per-column value encodings.
//!
//! Every value segment of a store file is one [`Column`] run through
//! one [`ColumnEncoding`]. Encodings are self-contained: `decode`
//! needs only the bytes and the value count (both recorded in the
//! block directory), never global state. Decoders treat their input as
//! untrusted — any malformed byte stream yields an error, never a
//! panic — because segment bytes arrive from disk *after* CRC
//! verification but the CRC guards against accidental corruption, not
//! against logic errors in a writer.
//!
//! The available encodings (tags are part of the on-disk format; add
//! new ones, never renumber):
//!
//! | tag | name            | for                                      |
//! |-----|-----------------|------------------------------------------|
//! | 0   | `raw-f64`       | f64 columns, little-endian, 8 B/value    |
//! | 1   | `shuffle-rle-f64` | f64 columns: byte-shuffled into 8 planes, each plane run-length encoded |
//! | 2   | `delta-varint-i64` | sorted-ish ints (quarter axes, ids): zigzag varint of consecutive deltas |
//! | 3   | `bitpack-i64`   | small-domain ints (fiscal offsets, subgroup flags): min + fixed bit width |
//! | 4   | `dict-str`      | low-cardinality strings (sector labels) and names |

use crate::StoreError;

/// A decoded column of values, the unit every encoding consumes and
/// produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Signed integers (ids, quarter indexes, small enums).
    I64(Vec<i64>),
    /// Floating-point feature values. Round-trips are bit-exact,
    /// including NaN payloads and ±∞.
    F64(Vec<f64>),
    /// Strings (names, sector labels).
    Str(Vec<String>),
}

impl Column {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_i64(&self) -> Result<&[i64], StoreError> {
        match self {
            Column::I64(v) => Ok(v),
            other => Err(StoreError::Invalid(format!("expected i64 column, got {other:?}"))),
        }
    }

    fn as_f64(&self) -> Result<&[f64], StoreError> {
        match self {
            Column::F64(v) => Ok(v),
            other => Err(StoreError::Invalid(format!("expected f64 column, got {other:?}"))),
        }
    }

    fn as_str_col(&self) -> Result<&[String], StoreError> {
        match self {
            Column::Str(v) => Ok(v),
            other => Err(StoreError::Invalid(format!("expected str column, got {other:?}"))),
        }
    }
}

/// Stable on-disk identifier of an encoding. Serialized by name in the
/// skeleton so directories stay human-readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingTag {
    /// Little-endian 8-byte floats.
    RawF64,
    /// Byte-shuffled f64 with per-plane run-length encoding.
    ShuffleRleF64,
    /// Zigzag varint deltas between consecutive i64 values.
    DeltaVarintI64,
    /// Minimum + fixed-width bit packing for i64.
    BitPackI64,
    /// First-appearance dictionary + varint indexes for strings.
    DictStr,
}

impl EncodingTag {
    /// All tags, for iteration in tests.
    pub const ALL: [EncodingTag; 5] = [
        EncodingTag::RawF64,
        EncodingTag::ShuffleRleF64,
        EncodingTag::DeltaVarintI64,
        EncodingTag::BitPackI64,
        EncodingTag::DictStr,
    ];

    /// The on-disk name (frozen).
    pub fn name(self) -> &'static str {
        match self {
            EncodingTag::RawF64 => "raw-f64",
            EncodingTag::ShuffleRleF64 => "shuffle-rle-f64",
            EncodingTag::DeltaVarintI64 => "delta-varint-i64",
            EncodingTag::BitPackI64 => "bitpack-i64",
            EncodingTag::DictStr => "dict-str",
        }
    }

    /// Parse an on-disk name.
    pub fn from_name(name: &str) -> Option<EncodingTag> {
        EncodingTag::ALL.into_iter().find(|t| t.name() == name)
    }
}

/// One value encoding: a pure `Column` ⇄ bytes transform.
pub trait ColumnEncoding {
    /// This encoding's stable tag.
    fn tag(&self) -> EncodingTag;

    /// Encode `col` into bytes. Fails only on a column-kind mismatch.
    fn encode(&self, col: &Column) -> Result<Vec<u8>, StoreError>;

    /// Decode exactly `n` values from `bytes`. Malformed input is an
    /// error; this must never panic on arbitrary bytes.
    fn decode(&self, bytes: &[u8], n: usize) -> Result<Column, StoreError>;
}

/// The codec for a tag.
pub fn codec(tag: EncodingTag) -> &'static dyn ColumnEncoding {
    match tag {
        EncodingTag::RawF64 => &RawF64,
        EncodingTag::ShuffleRleF64 => &ShuffleRleF64,
        EncodingTag::DeltaVarintI64 => &DeltaVarintI64,
        EncodingTag::BitPackI64 => &BitPackI64,
        EncodingTag::DictStr => &DictStr,
    }
}

// ---------------------------------------------------------------------
// varint / zigzag primitives

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut u: u64) {
    loop {
        let byte = (u & 0x7f) as u8;
        u >>= 7;
        if u == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A bounds-checked reader over untrusted segment bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn corrupt(&self, what: &str) -> StoreError {
        StoreError::Invalid(format!("{what} at byte {} of {}", self.pos, self.bytes.len()))
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.corrupt("truncated segment"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.corrupt("truncated segment"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, StoreError> {
        let mut u: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            u |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                // Reject non-canonical overlong encodings that would
                // drop bits at the top of the u64.
                if shift == 63 && byte > 1 {
                    return Err(self.corrupt("varint overflow"));
                }
                return Ok(u);
            }
        }
        Err(self.corrupt("unterminated varint"))
    }

    fn done(&self) -> Result<(), StoreError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(StoreError::Invalid(format!(
                "trailing garbage: {} of {} bytes unconsumed",
                self.bytes.len() - self.pos,
                self.bytes.len()
            )))
        }
    }
}

// ---------------------------------------------------------------------
// raw-f64

/// Little-endian 8-byte floats: the baseline f64 encoding, and the
/// fallback when shuffling does not pay.
pub struct RawF64;

impl ColumnEncoding for RawF64 {
    fn tag(&self) -> EncodingTag {
        EncodingTag::RawF64
    }

    fn encode(&self, col: &Column) -> Result<Vec<u8>, StoreError> {
        let vals = col.as_f64()?;
        let mut out = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Ok(out)
    }

    fn decode(&self, bytes: &[u8], n: usize) -> Result<Column, StoreError> {
        if Some(bytes.len()) != n.checked_mul(8) {
            return Err(StoreError::Invalid(format!(
                "raw-f64: {} bytes for {n} values",
                bytes.len()
            )));
        }
        let vals = bytes
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                f64::from_le_bytes(b)
            })
            .collect();
        Ok(Column::F64(vals))
    }
}

// ---------------------------------------------------------------------
// shuffle-rle-f64

/// Byte-shuffle + run-length encoding for f64.
///
/// The eight bytes of each float are split into eight planes (all
/// first bytes, all second bytes, ...). High-order planes of
/// similarly-scaled values are near-constant, so a simple `(run,
/// byte)` RLE collapses them; low-order mantissa planes stay
/// incompressible and cost one extra byte per 255 values. The writer
/// keeps whichever of raw/shuffled is smaller per segment.
pub struct ShuffleRleF64;

impl ColumnEncoding for ShuffleRleF64 {
    fn tag(&self) -> EncodingTag {
        EncodingTag::ShuffleRleF64
    }

    fn encode(&self, col: &Column) -> Result<Vec<u8>, StoreError> {
        let vals = col.as_f64()?;
        let mut out = Vec::new();
        for plane in 0..8 {
            let mut i = 0;
            while i < vals.len() {
                let byte = vals[i].to_le_bytes()[plane];
                let mut run = 1usize;
                while run < 255
                    && i + run < vals.len()
                    && vals[i + run].to_le_bytes()[plane] == byte
                {
                    run += 1;
                }
                out.push(run as u8);
                out.push(byte);
                i += run;
            }
        }
        Ok(out)
    }

    fn decode(&self, bytes: &[u8], n: usize) -> Result<Column, StoreError> {
        let mut r = Reader::new(bytes);
        if n > crate::limits::MAX_DECODED_VALUES {
            return Err(r.corrupt("value count exceeds decode limit"));
        }
        // Eight planes of (run, byte) pairs, each run covering at most
        // 255 values: fewer than ceil(n/255)·16 bytes cannot encode n
        // values, so the count is disproved before it sizes the output.
        if bytes.len() < n.div_ceil(255).saturating_mul(16) {
            return Err(r.corrupt("segment too short for value count"));
        }
        let mut planes = vec![0u8; n * 8];
        for plane in 0..8 {
            let mut filled = 0usize;
            while filled < n {
                let run = r.u8()? as usize;
                let byte = r.u8()?;
                if run == 0 || filled + run > n {
                    return Err(r.corrupt("rle run out of range"));
                }
                for slot in 0..run {
                    planes[(filled + slot) * 8 + plane] = byte;
                }
                filled += run;
            }
        }
        r.done()?;
        let vals = planes
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                f64::from_le_bytes(b)
            })
            .collect();
        Ok(Column::F64(vals))
    }
}

// ---------------------------------------------------------------------
// delta-varint-i64

/// Zigzag varint of consecutive deltas: tiny for sorted or slowly
/// moving integer columns (company ids, repeating quarter axes).
/// Deltas wrap on i64 overflow, so every `Vec<i64>` round-trips.
pub struct DeltaVarintI64;

impl ColumnEncoding for DeltaVarintI64 {
    fn tag(&self) -> EncodingTag {
        EncodingTag::DeltaVarintI64
    }

    fn encode(&self, col: &Column) -> Result<Vec<u8>, StoreError> {
        let vals = col.as_i64()?;
        let mut out = Vec::with_capacity(vals.len());
        let mut prev = 0i64;
        for &v in vals {
            push_varint(&mut out, zigzag(v.wrapping_sub(prev)));
            prev = v;
        }
        Ok(out)
    }

    fn decode(&self, bytes: &[u8], n: usize) -> Result<Column, StoreError> {
        let mut r = Reader::new(bytes);
        if n > bytes.len() {
            // Every varint is at least one byte.
            return Err(r.corrupt("segment too short for value count"));
        }
        let mut vals = Vec::with_capacity(n);
        let mut prev = 0i64;
        for _ in 0..n {
            prev = prev.wrapping_add(unzigzag(r.varint()?));
            vals.push(prev);
        }
        r.done()?;
        Ok(Column::I64(vals))
    }
}

// ---------------------------------------------------------------------
// bitpack-i64

/// Minimum + fixed-width bit packing (LSB-first): near-optimal for
/// small-domain columns like fiscal offsets (2 bits/value).
pub struct BitPackI64;

impl ColumnEncoding for BitPackI64 {
    fn tag(&self) -> EncodingTag {
        EncodingTag::BitPackI64
    }

    fn encode(&self, col: &Column) -> Result<Vec<u8>, StoreError> {
        let vals = col.as_i64()?;
        if vals.is_empty() {
            return Ok(Vec::new());
        }
        let min = vals.iter().copied().min().unwrap_or(0);
        let max = vals.iter().copied().max().unwrap_or(0);
        let range = max.wrapping_sub(min) as u64;
        let width = (64 - range.leading_zeros()) as u8;
        let mut out = Vec::new();
        push_varint(&mut out, zigzag(min));
        out.push(width);
        // u128 accumulator: residual (≤7) + width (≤64) bits always fit.
        let mut acc: u128 = 0;
        let mut nbits: u32 = 0;
        for &v in vals {
            let u = v.wrapping_sub(min) as u64;
            acc |= u128::from(u) << nbits;
            nbits += u32::from(width);
            while nbits >= 8 {
                out.push((acc & 0xff) as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.push((acc & 0xff) as u8);
        }
        Ok(out)
    }

    fn decode(&self, bytes: &[u8], n: usize) -> Result<Column, StoreError> {
        if n == 0 {
            return if bytes.is_empty() {
                Ok(Column::I64(Vec::new()))
            } else {
                Err(StoreError::Invalid("bitpack-i64: bytes for empty column".to_string()))
            };
        }
        let mut r = Reader::new(bytes);
        if n > crate::limits::MAX_DECODED_VALUES {
            // A zero-width packing is two bytes for any count, so the
            // byte length cannot bound n here; the limits table does.
            return Err(r.corrupt("value count exceeds decode limit"));
        }
        let min = unzigzag(r.varint()?);
        let width = r.u8()?;
        if width > 64 {
            return Err(r.corrupt("bitpack width > 64"));
        }
        let total_bits = (n as u64)
            .checked_mul(u64::from(width))
            .ok_or_else(|| r.corrupt("bitpack size overflow"))?;
        let packed = r.take(total_bits.div_ceil(8) as usize)?;
        r.done()?;
        let mut vals = Vec::with_capacity(n);
        let mut bitpos: u64 = 0;
        for _ in 0..n {
            let mut u: u64 = 0;
            for k in 0..u64::from(width) {
                let bit = bitpos + k;
                if packed[(bit / 8) as usize] >> (bit % 8) & 1 == 1 {
                    u |= 1 << k;
                }
            }
            bitpos += u64::from(width);
            vals.push(min.wrapping_add(u as i64));
        }
        Ok(Column::I64(vals))
    }
}

// ---------------------------------------------------------------------
// dict-str

/// First-appearance dictionary + varint indexes: sector labels repeat
/// across a block's companies, names mostly don't — both stay correct,
/// the former gets small.
pub struct DictStr;

impl ColumnEncoding for DictStr {
    fn tag(&self) -> EncodingTag {
        EncodingTag::DictStr
    }

    fn encode(&self, col: &Column) -> Result<Vec<u8>, StoreError> {
        let vals = col.as_str_col()?;
        let mut dict: Vec<&str> = Vec::new();
        let mut indexes = Vec::with_capacity(vals.len());
        for v in vals {
            let idx = match dict.iter().position(|d| d == v) {
                Some(i) => i,
                None => {
                    dict.push(v);
                    dict.len() - 1
                }
            };
            indexes.push(idx as u64);
        }
        let mut out = Vec::new();
        push_varint(&mut out, dict.len() as u64);
        for entry in &dict {
            push_varint(&mut out, entry.len() as u64);
            out.extend_from_slice(entry.as_bytes());
        }
        for idx in indexes {
            push_varint(&mut out, idx);
        }
        Ok(out)
    }

    fn decode(&self, bytes: &[u8], n: usize) -> Result<Column, StoreError> {
        let mut r = Reader::new(bytes);
        let dict_len = r.varint()? as usize;
        if dict_len > bytes.len() {
            // A dictionary cannot have more entries than input bytes.
            return Err(r.corrupt("dictionary length exceeds segment"));
        }
        let mut dict = Vec::with_capacity(dict_len);
        for _ in 0..dict_len {
            let len = r.varint()? as usize;
            let raw = r.take(len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| StoreError::Invalid("dict-str: invalid utf-8".to_string()))?;
            dict.push(s.to_string());
        }
        if n > bytes.len() {
            // Each dictionary index is at least one byte.
            return Err(r.corrupt("segment too short for value count"));
        }
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = r.varint()? as usize;
            let s = dict
                .get(idx)
                .ok_or_else(|| StoreError::Invalid(format!("dict index {idx} of {dict_len}")))?;
            vals.push(s.clone());
        }
        r.done()?;
        Ok(Column::Str(vals))
    }
}

/// Encode an f64 column with whichever of [`RawF64`] /
/// [`ShuffleRleF64`] is smaller — the writer's per-segment choice.
pub fn encode_f64_best(col: &Column) -> Result<(EncodingTag, Vec<u8>), StoreError> {
    let raw = RawF64.encode(col)?;
    let shuffled = ShuffleRleF64.encode(col)?;
    if shuffled.len() < raw.len() {
        Ok((EncodingTag::ShuffleRleF64, shuffled))
    } else {
        Ok((EncodingTag::RawF64, raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(tag: EncodingTag, col: &Column) -> Column {
        let c = codec(tag);
        assert_eq!(c.tag(), tag);
        let bytes = c.encode(col).expect("encode");
        c.decode(&bytes, col.len()).expect("decode")
    }

    fn assert_f64_bits_eq(a: &Column, b: &Column) {
        match (a, b) {
            (Column::F64(x), Column::F64(y)) => {
                assert_eq!(x.len(), y.len());
                for (u, v) in x.iter().zip(y) {
                    assert_eq!(u.to_bits(), v.to_bits(), "{u} vs {v}");
                }
            }
            _ => panic!("expected f64 columns"),
        }
    }

    #[test]
    fn tag_names_round_trip() {
        for tag in EncodingTag::ALL {
            assert_eq!(EncodingTag::from_name(tag.name()), Some(tag));
        }
        assert_eq!(EncodingTag::from_name("no-such-encoding"), None);
    }

    #[test]
    fn empty_columns_round_trip() {
        for tag in [EncodingTag::RawF64, EncodingTag::ShuffleRleF64] {
            assert_eq!(round_trip(tag, &Column::F64(vec![])), Column::F64(vec![]));
        }
        for tag in [EncodingTag::DeltaVarintI64, EncodingTag::BitPackI64] {
            assert_eq!(round_trip(tag, &Column::I64(vec![])), Column::I64(vec![]));
        }
        assert_eq!(round_trip(EncodingTag::DictStr, &Column::Str(vec![])), Column::Str(vec![]));
    }

    #[test]
    fn single_value_columns_round_trip() {
        let f = Column::F64(vec![std::f64::consts::PI]);
        assert_f64_bits_eq(&round_trip(EncodingTag::RawF64, &f), &f);
        assert_f64_bits_eq(&round_trip(EncodingTag::ShuffleRleF64, &f), &f);
        let i = Column::I64(vec![-42]);
        assert_eq!(round_trip(EncodingTag::DeltaVarintI64, &i), i);
        assert_eq!(round_trip(EncodingTag::BitPackI64, &i), i);
        let s = Column::Str(vec!["retail".to_string()]);
        assert_eq!(round_trip(EncodingTag::DictStr, &s), s);
    }

    #[test]
    fn non_finite_f64_round_trips_bit_exact() {
        let col = Column::F64(vec![
            f64::NAN,
            -f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::MIN_POSITIVE,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
            f64::MAX,
        ]);
        assert_f64_bits_eq(&round_trip(EncodingTag::RawF64, &col), &col);
        assert_f64_bits_eq(&round_trip(EncodingTag::ShuffleRleF64, &col), &col);
    }

    #[test]
    fn extreme_deltas_round_trip() {
        // Max-magnitude jumps: every delta needs the full 10-byte
        // varint and wraps i64 arithmetic.
        let col = Column::I64(vec![i64::MIN, i64::MAX, i64::MIN, 0, i64::MAX, -1, 1]);
        assert_eq!(round_trip(EncodingTag::DeltaVarintI64, &col), col);
        assert_eq!(round_trip(EncodingTag::BitPackI64, &col), col);
    }

    #[test]
    fn quarter_axis_is_tiny_under_delta_varint() {
        // A repeating quarter axis (the store's obs-quarter column):
        // 16 quarters × many companies, deltas of 1 with a jump back.
        let axis: Vec<i64> = (0..100).flat_map(|_| 8170..8186).collect();
        let col = Column::I64(axis);
        let bytes = DeltaVarintI64.encode(&col).expect("encode");
        assert!(bytes.len() < col.len() * 2, "{} bytes for {} values", bytes.len(), col.len());
        assert_eq!(round_trip(EncodingTag::DeltaVarintI64, &col), col);
    }

    #[test]
    fn small_domain_ints_pack_small() {
        let col = Column::I64((0..1000).map(|i| i % 3).collect());
        let bytes = BitPackI64.encode(&col).expect("encode");
        // 2 bits per value + small header.
        assert!(bytes.len() <= 1000 / 4 + 16, "{} bytes", bytes.len());
        assert_eq!(round_trip(EncodingTag::BitPackI64, &col), col);
    }

    #[test]
    fn dict_str_compresses_repeats_and_keeps_order() {
        let vals: Vec<String> =
            (0..500).map(|i| ["retail", "travel", "grocery"][i % 3].to_string()).collect();
        let col = Column::Str(vals);
        let bytes = DictStr.encode(&col).expect("encode");
        assert!(bytes.len() < 600, "{} bytes", bytes.len());
        assert_eq!(round_trip(EncodingTag::DictStr, &col), col);
        // Unicode and empty strings survive.
        let odd = Column::Str(vec!["".into(), "café ☕".into(), "".into(), "x".into()]);
        assert_eq!(round_trip(EncodingTag::DictStr, &odd), odd);
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        assert!(RawF64.encode(&Column::I64(vec![1])).is_err());
        assert!(DeltaVarintI64.encode(&Column::F64(vec![1.0])).is_err());
        assert!(DictStr.encode(&Column::F64(vec![1.0])).is_err());
    }

    #[test]
    fn decoders_reject_malformed_bytes() {
        // Truncations, trailing garbage, out-of-range runs/indexes —
        // all errors, never panics.
        for tag in EncodingTag::ALL {
            let c = codec(tag);
            assert!(c.decode(&[0x80], 1).is_err(), "{tag:?}: lone continuation byte");
            assert!(c.decode(&[], 3).is_err(), "{tag:?}: empty bytes for 3 values");
        }
        // Overlong varint (11 continuation bytes).
        assert!(DeltaVarintI64.decode(&[0xff; 11], 1).is_err());
        // RLE run past n.
        assert!(ShuffleRleF64.decode(&[10, 0xAA], 2).is_err());
        // Bitpack width over 64.
        assert!(BitPackI64.decode(&[0, 200, 0], 1).is_err());
        // Dict index out of range.
        let mut bytes = Vec::new();
        push_varint(&mut bytes, 1);
        push_varint(&mut bytes, 1);
        bytes.push(b'a');
        push_varint(&mut bytes, 9); // index 9 into 1-entry dict
        assert!(DictStr.decode(&bytes, 1).is_err());
        // Trailing garbage after a complete decode.
        let good = DeltaVarintI64.encode(&Column::I64(vec![5])).expect("encode");
        let mut padded = good;
        padded.push(0);
        assert!(DeltaVarintI64.decode(&padded, 1).is_err());
    }

    #[test]
    fn best_f64_choice_never_loses() {
        // Near-constant column: shuffle wins big.
        let flat = Column::F64(vec![1.0; 512]);
        let (tag, bytes) = encode_f64_best(&flat).expect("encode");
        assert_eq!(tag, EncodingTag::ShuffleRleF64);
        assert!(bytes.len() < 512);
        // Incompressible bits in every byte plane: raw wins (RLE
        // overhead would double the shuffled size).
        let noisy = Column::F64(
            (1u64..513).map(|i| f64::from_bits(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))).collect(),
        );
        let (tag, bytes) = encode_f64_best(&noisy).expect("encode");
        assert_eq!(tag, EncodingTag::RawF64);
        assert_eq!(bytes.len(), 512 * 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_f64_round_trips_bit_exact(
            raw in prop::collection::vec(0u64..u64::MAX, 0..64),
        ) {
            // Arbitrary bit patterns — includes NaNs, infinities,
            // subnormals — must round-trip exactly under both codecs.
            let col = Column::F64(raw.iter().map(|&b| f64::from_bits(b)).collect());
            for tag in [EncodingTag::RawF64, EncodingTag::ShuffleRleF64] {
                let bytes = codec(tag).encode(&col).map_err(|e| e.to_string())?;
                let back = codec(tag).decode(&bytes, col.len()).map_err(|e| e.to_string())?;
                match (&col, &back) {
                    (Column::F64(x), Column::F64(y)) => {
                        for (u, v) in x.iter().zip(y) {
                            prop_assert_eq!(u.to_bits(), v.to_bits());
                        }
                    }
                    _ => prop_assert!(false, "wrong column kind"),
                }
            }
        }

        #[test]
        fn prop_i64_round_trips(
            vals in prop::collection::vec(i64::MIN..i64::MAX, 0..64),
        ) {
            let col = Column::I64(vals);
            for tag in [EncodingTag::DeltaVarintI64, EncodingTag::BitPackI64] {
                let bytes = codec(tag).encode(&col).map_err(|e| e.to_string())?;
                let back = codec(tag).decode(&bytes, col.len()).map_err(|e| e.to_string())?;
                prop_assert_eq!(&back, &col);
            }
        }

        #[test]
        fn prop_str_round_trips(
            raw in prop::collection::vec(prop::collection::vec(0u8..128, 0..12), 0..48),
        ) {
            let vals: Vec<String> = raw
                .into_iter()
                .map(|b| b.into_iter().map(|c| c as char).collect())
                .collect();
            let col = Column::Str(vals);
            let bytes = DictStr.encode(&col).map_err(|e| e.to_string())?;
            let back = DictStr.decode(&bytes, col.len()).map_err(|e| e.to_string())?;
            prop_assert_eq!(&back, &col);
        }

        #[test]
        fn prop_decode_never_panics_on_garbage(
            junk in prop::collection::vec(0u8..255, 0..96),
            n in 0usize..48,
        ) {
            // Any byte soup → Ok or Err, never a panic. (Runs under
            // the same process; a panic fails the test.)
            for tag in EncodingTag::ALL {
                let _ = codec(tag).decode(&junk, n);
            }
        }
    }
}
