//! # ams-store — a columnar compressed feature store
//!
//! Panels at paper scale (≈70 companies × 16 quarters) fit in memory
//! and in CSV. Panels at alternative-data-vendor scale (100k–1M
//! companies) do not: a full CSV scan to fetch one company's history is
//! O(file), and a `Panel` of a million companies is gigabytes of
//! `String`-laden structs. This crate stores a panel as a single
//! columnar file with **block-indexed random access**:
//!
//! * The file opens with the frozen [`ams_fault::framed`] header
//!   (`AMS-STORE v1 crc32=… len=M`) whose CRC covers only the
//!   **skeleton** — a small JSON document holding the schema, the
//!   quarter axis, and the block directory. Opening a store reads and
//!   verifies the skeleton and nothing else.
//! * Values live after the skeleton as contiguous per-column
//!   **segments**, grouped into blocks of consecutive company ids.
//!   Each segment records its own byte range, encoding and CRC-32 in
//!   the directory, so a reader seeks straight to the segments of one
//!   block and verifies exactly what it reads.
//! * Each column picks an encoding behind the [`ColumnEncoding`]
//!   trait: delta + zigzag varint for quarter columns, dictionaries
//!   for sector labels and names, bit-packing for small-domain ints,
//!   and raw or byte-shuffled+RLE little-endian bytes for f64 feature
//!   values (whichever is smaller, per segment).
//!
//! The block directory is keyed by company-id range, so
//! [`StoreReader::company_history`] reads only the blocks containing
//! that company — the file-format analogue of an index seek. For full
//! scans, [`StoreReader`] implements [`ams_data::PanelSource`], so
//! fit/eval pipelines stream (company, quarter-window) batches without
//! materializing the universe; [`write_source`] converts any
//! `PanelSource` (an in-memory [`Panel`](ams_data::Panel), the
//! streaming synthetic generator) into a store file in bounded memory,
//! published atomically (write-temp → fsync → rename).

pub mod encoding;
pub mod limits;
pub mod reader;
pub mod skeleton;
pub mod writer;

pub use encoding::{codec, Column, ColumnEncoding, EncodingTag};
pub use reader::StoreReader;
pub use skeleton::{
    BlockEntry, ColumnDesc, ColumnKind, SegmentEntry, Skeleton, STORE_FORMAT_VERSION,
};
pub use writer::{write_panel, write_source, StoreWriter};

use ams_fault::framed::FrameError;

/// Magic token of the store's framed header.
pub const STORE_MAGIC: &str = "AMS-STORE";

/// Why a store operation failed. As with [`FrameError`], every variant
/// other than `Io` means the file exists but must not be trusted.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The framed skeleton header failed verification.
    Frame(FrameError),
    /// The skeleton parsed but violates the format contract (unknown
    /// version, non-dense blocks, segment ranges out of bounds, ...).
    Invalid(String),
    /// A value segment failed its CRC or could not be decoded. Carries
    /// the block index so callers can report *which* data is bad —
    /// other blocks remain readable.
    Corrupt {
        /// Index of the affected block in the directory.
        block: usize,
        /// What failed.
        detail: String,
    },
    /// The skeleton declares a count or length beyond the [`limits`]
    /// table (or beyond the file itself). The file is refused before
    /// any allocation is sized by the forged number.
    TooLarge {
        /// Which declared quantity tripped its ceiling.
        what: String,
        /// The declared value.
        declared: u64,
        /// The ceiling it exceeded.
        limit: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Frame(e) => write!(f, "store skeleton rejected: {e}"),
            StoreError::Invalid(msg) => write!(f, "invalid store file: {msg}"),
            StoreError::Corrupt { block, detail } => {
                write!(f, "corrupt store block {block}: {detail}")
            }
            StoreError::TooLarge { what, declared, limit } => {
                write!(f, "store declares {what} = {declared}, limit is {limit}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<FrameError> for StoreError {
    fn from(e: FrameError) -> Self {
        StoreError::Frame(e)
    }
}

impl From<StoreError> for ams_data::SourceError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => ams_data::SourceError::Io(io),
            other => ams_data::SourceError::Invalid(other.to_string()),
        }
    }
}
