//! Writing store files.
//!
//! [`StoreWriter`] is append-oriented and bounded-memory: callers feed
//! companies (with their full observation histories) in id order, the
//! writer buffers one block's worth, encodes it column-by-column into
//! a `*.data.tmp` sibling, and keeps only the small directory entry in
//! memory. [`StoreWriter::finish`] assembles the skeleton and
//! publishes the final file atomically (temp → fsync → rename via
//! [`ams_fault::framed::publish_atomic`]), so readers never observe a
//! torn store and a crash mid-write leaves the previous file intact.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ams_data::{Company, Observation, Panel, PanelCursor, PanelSource, Quarter};
use ams_fault::framed::{crc32, header_line, publish_atomic};

use crate::encoding::{codec, encode_f64_best, Column, EncodingTag};
use crate::skeleton::{BlockEntry, ColumnDesc, ColumnKind, SegmentEntry, Skeleton};
use crate::{StoreError, STORE_FORMAT_VERSION, STORE_MAGIC};

/// Fixed company-group schema (order is part of the format).
fn company_schema() -> Vec<ColumnDesc> {
    [
        ("id", ColumnKind::I64),
        ("name", ColumnKind::Str),
        ("sector", ColumnKind::Str),
        ("market_cap", ColumnKind::F64),
        ("fiscal_offset", ColumnKind::I64),
    ]
    .into_iter()
    .map(|(name, kind)| ColumnDesc { name: name.to_string(), kind })
    .collect()
}

/// Fixed observation-group schema prefix; alt channels follow as
/// `alt:<name>` f64 columns.
fn obs_schema(alt_names: &[String]) -> Vec<ColumnDesc> {
    let mut cols: Vec<ColumnDesc> = [
        ("quarter", ColumnKind::I64),
        ("revenue", ColumnKind::F64),
        ("consensus", ColumnKind::F64),
        ("low_est", ColumnKind::F64),
        ("high_est", ColumnKind::F64),
    ]
    .into_iter()
    .map(|(name, kind)| ColumnDesc { name: name.to_string(), kind })
    .collect();
    for alt in alt_names {
        cols.push(ColumnDesc { name: format!("alt:{alt}"), kind: ColumnKind::F64 });
    }
    cols
}

/// What [`StoreWriter::finish`] reports: sizes for benches and logs.
#[derive(Debug, Clone, Copy)]
pub struct StoreSummary {
    /// Companies written.
    pub n_companies: u64,
    /// Blocks in the directory.
    pub n_blocks: usize,
    /// Serialized skeleton length in bytes.
    pub skeleton_bytes: u64,
    /// Value-section length in bytes.
    pub data_bytes: u64,
}

/// Streaming store writer; see the module docs for the protocol.
#[derive(Debug)]
pub struct StoreWriter {
    path: PathBuf,
    data_tmp: PathBuf,
    data: BufWriter<File>,
    data_len: u64,
    quarters: Vec<Quarter>,
    alt_names: Vec<String>,
    block_size: usize,
    pending_companies: Vec<Company>,
    pending_obs: Vec<Observation>,
    blocks: Vec<BlockEntry>,
    next_id: u64,
    finished: bool,
}

impl StoreWriter {
    /// Open a writer targeting `path`. `block_size` companies per
    /// block bounds both writer memory and the unit of random access.
    pub fn create(
        path: &Path,
        quarters: Vec<Quarter>,
        alt_names: Vec<String>,
        block_size: usize,
    ) -> Result<Self, StoreError> {
        if block_size == 0 {
            return Err(StoreError::Invalid("block_size must be positive".to_string()));
        }
        if quarters.is_empty() {
            return Err(StoreError::Invalid("empty quarter axis".to_string()));
        }
        for w in quarters.windows(2) {
            if w[1] != w[0].next() {
                return Err(StoreError::Invalid("quarter axis not consecutive".to_string()));
            }
        }
        let data_tmp: PathBuf = {
            let mut name = path.as_os_str().to_os_string();
            name.push(".data.tmp");
            PathBuf::from(name)
        };
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(&data_tmp)?;
        Ok(Self {
            path: path.to_path_buf(),
            data_tmp,
            data: BufWriter::new(file),
            data_len: 0,
            quarters,
            alt_names,
            block_size,
            pending_companies: Vec::new(),
            pending_obs: Vec::new(),
            blocks: Vec::new(),
            next_id: 0,
            finished: false,
        })
    }

    /// Append companies with their company-major observations
    /// (`obs[c * n_quarters + t]`). Ids must continue densely from the
    /// previous append. Full blocks are encoded and flushed to disk
    /// immediately.
    pub fn append(&mut self, companies: &[Company], obs: &[Observation]) -> Result<(), StoreError> {
        let nq = self.quarters.len();
        if obs.len() != companies.len() * nq {
            return Err(StoreError::Invalid(format!(
                "{} observations for {} companies × {nq} quarters",
                obs.len(),
                companies.len()
            )));
        }
        for (k, c) in companies.iter().enumerate() {
            let expected = self.next_id + self.pending_companies.len() as u64 + k as u64;
            if c.id as u64 != expected {
                return Err(StoreError::Invalid(format!(
                    "company id {} appended where {expected} expected (ids must be dense)",
                    c.id
                )));
            }
        }
        for o in obs {
            if o.alt.len() != self.alt_names.len() {
                return Err(StoreError::Invalid(format!(
                    "observation has {} alt channels, schema has {}",
                    o.alt.len(),
                    self.alt_names.len()
                )));
            }
        }
        self.pending_companies.extend_from_slice(companies);
        self.pending_obs.extend_from_slice(obs);
        while self.pending_companies.len() >= self.block_size {
            self.flush_block(self.block_size)?;
        }
        Ok(())
    }

    /// Encode and write the first `n` pending companies as one block.
    fn flush_block(&mut self, n: usize) -> Result<(), StoreError> {
        let nq = self.quarters.len();
        let companies: Vec<Company> = self.pending_companies.drain(..n).collect();
        let obs: Vec<Observation> = self.pending_obs.drain(..n * nq).collect();

        let company_segs = vec![
            self.write_col(
                EncodingTag::DeltaVarintI64,
                &Column::I64(companies.iter().map(|c| c.id as i64).collect()),
            )?,
            self.write_col(
                EncodingTag::DictStr,
                &Column::Str(companies.iter().map(|c| c.name.clone()).collect()),
            )?,
            self.write_col(
                EncodingTag::DictStr,
                &Column::Str(companies.iter().map(|c| c.sector.name().to_string()).collect()),
            )?,
            self.write_f64(&Column::F64(companies.iter().map(|c| c.market_cap).collect()))?,
            self.write_col(
                EncodingTag::BitPackI64,
                &Column::I64(companies.iter().map(|c| i64::from(c.fiscal_offset)).collect()),
            )?,
        ];

        let axis: Vec<i64> = self.quarters.iter().map(|q| q.index()).collect();
        let quarter_col: Vec<i64> =
            (0..companies.len()).flat_map(|_| axis.iter().copied()).collect();
        let mut obs_segs = Vec::with_capacity(5 + self.alt_names.len());
        obs_segs.push(self.write_col(EncodingTag::DeltaVarintI64, &Column::I64(quarter_col))?);
        obs_segs.push(self.write_f64(&Column::F64(obs.iter().map(|o| o.revenue).collect()))?);
        obs_segs.push(self.write_f64(&Column::F64(obs.iter().map(|o| o.consensus).collect()))?);
        obs_segs.push(self.write_f64(&Column::F64(obs.iter().map(|o| o.low_est).collect()))?);
        obs_segs.push(self.write_f64(&Column::F64(obs.iter().map(|o| o.high_est).collect()))?);
        for k in 0..self.alt_names.len() {
            obs_segs.push(self.write_f64(&Column::F64(obs.iter().map(|o| o.alt[k]).collect()))?);
        }

        self.blocks.push(BlockEntry {
            first_id: self.next_id,
            n_companies: companies.len() as u64,
            company_segs,
            obs_segs,
        });
        self.next_id += companies.len() as u64;
        Ok(())
    }

    /// Encode `col` with `tag` and write it as the next segment.
    fn write_col(&mut self, tag: EncodingTag, col: &Column) -> Result<SegmentEntry, StoreError> {
        let bytes = codec(tag).encode(col)?;
        self.write_seg(tag, &bytes)
    }

    /// Encode an f64 column with the smaller of raw/shuffled.
    fn write_f64(&mut self, col: &Column) -> Result<SegmentEntry, StoreError> {
        let (tag, bytes) = encode_f64_best(col)?;
        self.write_seg(tag, &bytes)
    }

    fn write_seg(&mut self, tag: EncodingTag, bytes: &[u8]) -> Result<SegmentEntry, StoreError> {
        self.data.write_all(bytes)?;
        let entry = SegmentEntry {
            encoding: tag.name().to_string(),
            offset: self.data_len,
            len: bytes.len() as u64,
            crc32: crc32(bytes),
        };
        self.data_len += bytes.len() as u64;
        Ok(entry)
    }

    /// Flush any partial block, assemble the skeleton, and publish the
    /// store file atomically. Consumes the writer.
    pub fn finish(mut self) -> Result<StoreSummary, StoreError> {
        let n = self.pending_companies.len();
        if n > 0 {
            self.flush_block(n)?;
        }
        self.data.flush()?;
        self.data.get_ref().sync_all()?;
        self.finished = true;

        let skeleton = Skeleton {
            format: STORE_FORMAT_VERSION,
            n_companies: self.next_id,
            quarters: self.quarters.clone(),
            alt_names: self.alt_names.clone(),
            company_cols: company_schema(),
            obs_cols: obs_schema(&self.alt_names),
            blocks: std::mem::take(&mut self.blocks),
        };
        skeleton.validate(self.data_len)?;
        let body = serde_json::to_string(&skeleton)
            .map_err(|e| StoreError::Invalid(format!("skeleton serialization: {e}")))?;

        let summary = StoreSummary {
            n_companies: skeleton.n_companies,
            n_blocks: skeleton.blocks.len(),
            skeleton_bytes: body.len() as u64,
            data_bytes: self.data_len,
        };
        let data_tmp = self.data_tmp.clone();
        publish_atomic(&self.path, |f| {
            f.write_all(header_line(STORE_MAGIC, body.as_bytes()).as_bytes())?;
            f.write_all(body.as_bytes())?;
            let mut data = File::open(&data_tmp)?;
            data.seek(SeekFrom::Start(0))?;
            io::copy(&mut data, f)?;
            Ok(())
        })?;
        fs::remove_file(&self.data_tmp)?;
        Ok(summary)
    }
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        // An abandoned writer must not leave its data temp behind.
        if !self.finished {
            let _ = fs::remove_file(&self.data_tmp);
        }
    }
}

/// Write an in-memory [`Panel`] as a store file.
pub fn write_panel(
    path: &Path,
    panel: &Panel,
    block_size: usize,
) -> Result<StoreSummary, StoreError> {
    write_source(path, &mut PanelCursor::new(panel), block_size)
}

/// Drain any [`PanelSource`] into a store file in bounded memory —
/// the conversion path for both panels and the streaming synthetic
/// generator.
pub fn write_source(
    path: &Path,
    source: &mut dyn PanelSource,
    block_size: usize,
) -> Result<StoreSummary, StoreError> {
    let mut writer = StoreWriter::create(
        path,
        source.quarters().to_vec(),
        source.alt_names().to_vec(),
        block_size,
    )?;
    loop {
        let batch = source
            .next_batch(block_size)
            .map_err(|e| StoreError::Invalid(format!("source failed: {e}")))?;
        if batch.is_empty() {
            break;
        }
        let mut companies = Vec::with_capacity(batch.len());
        let mut obs = Vec::with_capacity(batch.len() * source.quarters().len());
        for h in batch {
            companies.push(h.company);
            obs.extend(h.obs);
        }
        writer.append(&companies, &obs)?;
    }
    writer.finish()
}
