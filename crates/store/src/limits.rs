//! Hard ceilings on every count and length a store file can declare.
//!
//! The skeleton and block directory are *data*: a forged file can claim
//! a 2^60-byte segment or a 2^50-company block, and before these limits
//! the reader would have allocated on the claim's say-so before a single
//! payload byte disproved it. Every number that comes off disk and
//! flows into an allocation size or an index is first checked against
//! this table (and, where possible, against the actual file length).
//! Exceeding a ceiling is a typed refusal — [`StoreError::TooLarge`] —
//! never an abort or an unbounded `Vec`.
//!
//! The ceilings are sized for the vendor-scale target (1M companies ×
//! 64 quarters × a handful of alt channels) with an order of magnitude
//! of slack, so no legitimate writer output ever trips them.
//!
//! [`StoreError::TooLarge`]: crate::StoreError::TooLarge

/// Largest encoded segment the reader will buffer (256 MiB). A block's
/// worth of one column at vendor scale is a few MiB compressed.
pub const MAX_SEGMENT_BYTES: u64 = 1 << 28;

/// Most companies one block may declare (4M). Writers emit blocks of a
/// few thousand companies.
pub const MAX_BLOCK_COMPANIES: u64 = 1 << 22;

/// Most companies one store may declare across all blocks (16M).
pub const MAX_COMPANIES: u64 = 1 << 24;

/// Longest quarter axis (1024 quarters = 256 years).
pub const MAX_QUARTERS: usize = 1 << 10;

/// Most alternative-data channels (revenue/consensus/estimates plus
/// alt columns must stay a human-sized schema).
pub const MAX_ALT_SIGNALS: usize = 1 << 8;

/// Most values a single segment may decode to (block companies ×
/// quarter axis, with slack). Also the cap a decoder enforces before
/// allocating its output, independent of what the caller asked for.
pub const MAX_DECODED_VALUES: usize = (MAX_BLOCK_COMPANIES as usize) * 64;
