//! ARIMA(p, d, q) time-series baseline (§IV-B, Box & Jenkins).
//!
//! Unlike the feature-based models, ARIMA forecasts each company's
//! revenue from its own history alone; the unexpected-revenue
//! prediction is then `R̂ − E`. Fitting minimizes the conditional sum
//! of squares (CSS) of the one-step-ahead residuals over the AR/MA
//! coefficients and an intercept, via Nelder–Mead. AR parameters are
//! initialized from an AR(p) least-squares fit.

use ams_tensor::{solve_lu, Matrix};

use crate::optim::{nelder_mead, NelderMeadConfig};

/// ARIMA order and fit options.
#[derive(Debug, Clone)]
pub struct ArimaConfig {
    /// Autoregressive order p.
    pub p: usize,
    /// Differencing order d.
    pub d: usize,
    /// Moving-average order q.
    pub q: usize,
    /// Optimizer settings.
    pub optimizer: NelderMeadConfig,
}

impl Default for ArimaConfig {
    fn default() -> Self {
        // (1,1,1) is a sensible default for short quarterly revenue
        // series: difference once, one AR and one MA term.
        Self { p: 1, d: 1, q: 1, optimizer: NelderMeadConfig::default() }
    }
}

/// A fitted ARIMA model for one univariate series.
#[derive(Debug, Clone)]
pub struct Arima {
    config: ArimaConfig,
    /// Intercept of the differenced series.
    intercept: f64,
    /// AR coefficients φ (length p).
    ar: Vec<f64>,
    /// MA coefficients θ (length q).
    ma: Vec<f64>,
    /// The training series (levels), kept for forecasting.
    history: Vec<f64>,
}

impl Arima {
    /// Fit on a level series.
    ///
    /// # Panics
    /// Panics when the series is too short for the requested order.
    pub fn fit(series: &[f64], config: ArimaConfig) -> Self {
        let w = difference(series, config.d);
        assert!(
            w.len() > config.p + config.q + 1,
            "series too short: {} differenced points for p={} q={}",
            w.len(),
            config.p,
            config.q
        );
        // Initialize: intercept = mean, AR by least squares, MA zero.
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        let ar0 = ar_least_squares(&w, config.p);
        let mut x0 = vec![mean];
        x0.extend_from_slice(&ar0);
        x0.extend(std::iter::repeat_n(0.0, config.q));

        let p = config.p;
        let q = config.q;
        let w_fit = w.clone();
        let result = nelder_mead(
            |params| css(&w_fit, params[0], &params[1..1 + p], &params[1 + p..1 + p + q]),
            &x0,
            &config.optimizer,
        );
        let intercept = result.x[0];
        let ar = result.x[1..1 + p].to_vec();
        let ma = result.x[1 + p..1 + p + q].to_vec();
        Self { config, intercept, ar, ma, history: series.to_vec() }
    }

    /// Fitted AR coefficients.
    pub fn ar_coefficients(&self) -> &[f64] {
        &self.ar
    }

    /// Fitted MA coefficients.
    pub fn ma_coefficients(&self) -> &[f64] {
        &self.ma
    }

    /// Forecast `h` steps ahead in levels.
    pub fn forecast(&self, h: usize) -> Vec<f64> {
        let w = difference(&self.history, self.config.d);
        // Recompute in-sample residuals to seed the MA recursion.
        let resid = residuals(&w, self.intercept, &self.ar, &self.ma);
        let mut w_ext = w.clone();
        let mut e_ext = resid;
        let mut forecasts_diff = Vec::with_capacity(h);
        for _ in 0..h {
            let t = w_ext.len();
            let mut pred = self.intercept;
            for (i, &phi) in self.ar.iter().enumerate() {
                if t > i {
                    pred += phi * w_ext[t - 1 - i];
                }
            }
            for (j, &theta) in self.ma.iter().enumerate() {
                if t > j {
                    pred += theta * e_ext[t - 1 - j];
                }
            }
            w_ext.push(pred);
            e_ext.push(0.0); // future shocks have zero expectation
            forecasts_diff.push(pred);
        }
        integrate(&self.history, &forecasts_diff, self.config.d)
    }
}

/// `d`-fold differencing.
fn difference(series: &[f64], d: usize) -> Vec<f64> {
    let mut w = series.to_vec();
    for _ in 0..d {
        assert!(w.len() >= 2, "cannot difference series of length {}", w.len());
        w = w.windows(2).map(|p| p[1] - p[0]).collect();
    }
    w
}

/// Undo differencing for a block of forecasts appended after `history`.
fn integrate(history: &[f64], forecasts_diff: &[f64], d: usize) -> Vec<f64> {
    if d == 0 {
        return forecasts_diff.to_vec();
    }
    // Collect the last value at each differencing level.
    let mut levels = Vec::with_capacity(d + 1);
    let mut w = history.to_vec();
    levels.push(*w.last().expect("nonempty history"));
    for _ in 0..d {
        w = w.windows(2).map(|p| p[1] - p[0]).collect();
        levels.push(*w.last().expect("history long enough to difference"));
    }
    // levels[0] = last level value, levels[i] = last i-th difference.
    let mut out = Vec::with_capacity(forecasts_diff.len());
    let mut state = levels[..d].to_vec(); // running values at levels 0..d-1
    for &fd in forecasts_diff {
        // Integrate d times: the forecast is the d-th difference.
        let mut inc = fd;
        for s in state.iter_mut().rev() {
            *s += inc;
            inc = *s;
        }
        out.push(state[0]);
    }
    out
}

/// One-step-ahead residuals under CSS conventions (e_t = 0 for t < p).
fn residuals(w: &[f64], intercept: f64, ar: &[f64], ma: &[f64]) -> Vec<f64> {
    let mut e = vec![0.0; w.len()];
    for t in ar.len()..w.len() {
        let mut pred = intercept;
        for (i, &phi) in ar.iter().enumerate() {
            pred += phi * w[t - 1 - i];
        }
        for (j, &theta) in ma.iter().enumerate() {
            if t > j {
                pred += theta * e[t - 1 - j];
            }
        }
        e[t] = w[t] - pred;
    }
    e
}

/// Conditional sum of squares.
fn css(w: &[f64], intercept: f64, ar: &[f64], ma: &[f64]) -> f64 {
    // Penalize explosive AR regions to keep Nelder–Mead in the sane
    // part of parameter space.
    let ar_mag: f64 = ar.iter().map(|a| a.abs()).sum();
    let ma_mag: f64 = ma.iter().map(|a| a.abs()).sum();
    if ar_mag > 2.0 || ma_mag > 2.0 {
        return f64::INFINITY;
    }
    residuals(w, intercept, ar, ma).iter().skip(ar.len()).map(|e| e * e).sum()
}

/// AR(p) initialization by least squares on lagged values.
fn ar_least_squares(w: &[f64], p: usize) -> Vec<f64> {
    if p == 0 || w.len() <= p + 1 {
        return vec![0.0; p];
    }
    let n = w.len() - p;
    let mut x = Matrix::zeros(n, p);
    let mut y = Matrix::zeros(n, 1);
    for t in 0..n {
        for i in 0..p {
            x[(t, i)] = w[t + p - 1 - i];
        }
        y[(t, 0)] = w[t + p];
    }
    // Normal equations with tiny ridge for stability.
    let xt = x.t();
    let mut gram = xt.matmul(&x);
    for i in 0..p {
        gram[(i, i)] += 1e-8;
    }
    match solve_lu(&gram, &xt.matmul(&y)) {
        Ok(b) => (0..p).map(|i| b[(i, 0)].clamp(-0.95, 0.95)).collect(),
        Err(_) => vec![0.0; p],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_tensor::init::standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simulate_ar1(n: usize, phi: f64, c: f64, sigma: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = vec![c / (1.0 - phi)];
        for _ in 1..n {
            let prev = *x.last().unwrap();
            x.push(c + phi * prev + sigma * standard_normal(&mut rng));
        }
        x
    }

    #[test]
    fn difference_and_integrate_roundtrip() {
        let series = vec![1.0, 3.0, 6.0, 10.0, 15.0, 21.0];
        let d1 = difference(&series, 1);
        assert_eq!(d1, vec![2.0, 3.0, 4.0, 5.0, 6.0]);
        let d2 = difference(&series, 2);
        assert_eq!(d2, vec![1.0, 1.0, 1.0, 1.0]);
        // Integrating the "next" second difference of 1 must continue
        // the quadratic: next first-diff 7, next level 28.
        let cont = integrate(&series, &[1.0, 1.0], 2);
        assert_eq!(cont, vec![28.0, 36.0]);
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let series = simulate_ar1(400, 0.7, 0.5, 0.2, 50);
        let m = Arima::fit(&series, ArimaConfig { p: 1, d: 0, q: 0, ..Default::default() });
        assert!((m.ar_coefficients()[0] - 0.7).abs() < 0.1, "phi = {}", m.ar_coefficients()[0]);
    }

    #[test]
    fn forecasts_linear_trend_with_d1() {
        // Perfect linear trend: after one difference it's constant, so
        // forecasts must continue the line.
        let series: Vec<f64> = (0..30).map(|i| 10.0 + 2.0 * i as f64).collect();
        let m = Arima::fit(&series, ArimaConfig { p: 1, d: 1, q: 0, ..Default::default() });
        let f = m.forecast(3);
        for (h, v) in f.iter().enumerate() {
            let expected = 10.0 + 2.0 * (30 + h) as f64;
            assert!((v - expected).abs() < 0.5, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn forecast_of_ar1_decays_toward_mean() {
        let series = simulate_ar1(300, 0.8, 0.0, 0.1, 51);
        let m = Arima::fit(&series, ArimaConfig { p: 1, d: 0, q: 0, ..Default::default() });
        let f = m.forecast(20);
        // Long-horizon forecast approaches the unconditional mean (≈0).
        assert!(f[19].abs() < f[0].abs().max(0.05) + 0.05);
    }

    #[test]
    fn css_penalizes_explosive_regions() {
        assert!(css(&[1.0, 2.0, 3.0], 0.0, &[3.0], &[]).is_infinite());
        assert!(css(&[1.0, 2.0, 3.0], 0.0, &[0.5], &[0.3]).is_finite());
    }

    #[test]
    fn ma_fit_is_stable_on_white_noise() {
        let mut rng = StdRng::seed_from_u64(52);
        let series: Vec<f64> = (0..200).map(|_| standard_normal(&mut rng)).collect();
        let m = Arima::fit(&series, ArimaConfig { p: 1, d: 0, q: 1, ..Default::default() });
        // ARMA(1,1) on white noise is only identified up to the
        // cancellation ridge θ ≈ −φ (both reduce to white noise), so we
        // assert near-cancellation and a near-zero forecast rather than
        // small raw coefficients.
        let phi = m.ar_coefficients()[0];
        let theta = m.ma_coefficients()[0];
        assert!((phi + theta).abs() < 0.25, "phi {phi} + theta {theta} far from cancellation");
        let f = m.forecast(4);
        assert!(f.iter().all(|v| v.abs() < 0.5), "white-noise forecast should be near zero: {f:?}");
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_tiny_series() {
        Arima::fit(&[1.0, 2.0, 3.0], ArimaConfig { p: 2, d: 1, q: 2, ..Default::default() });
    }
}
