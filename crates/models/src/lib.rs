//! # ams-models — the paper's baseline zoo (§IV-B)
//!
//! Every competitor the paper evaluates against, implemented from
//! scratch on the `ams-tensor` substrate:
//!
//! | Paper baseline | Implementation |
//! |---|---|
//! | XGBoost | [`Gbdt`] — second-order boosted trees, exact greedy splits |
//! | MLP | [`Mlp`] — ReLU layers, dropout, Adam |
//! | Lasso / Ridge / Elasticnet | [`ElasticNet`], [`RidgeRegression`] |
//! | LSTM / GRU | [`Rnn`] over the lag structure ([`SequenceSpec`]) |
//! | ARIMA | [`Arima`] — CSS fit via Nelder–Mead |
//! | QoQ / YoY | [`NaiveRule`] ratio rules |
//!
//! [`adaptive`] adds the two adaptive-model families of the paper's
//! related work (§V-B): semi-lazy local regression and passive online
//! RLS — useful comparison points for the "aggressive adaptive" AMS.
//!
//! All feature-based models implement the [`Regressor`] trait consumed
//! by the `ams-eval` cross-validation harness.

pub mod adaptive;
pub mod arima;
pub mod gbdt;
pub mod linear;
pub mod mlp;
pub mod naive;
pub mod optim;
pub mod regressor;
pub mod rnn;
pub mod sequence;

pub use adaptive::{OnlineRidge, SemiLazy};
pub use arima::{Arima, ArimaConfig};
pub use gbdt::{Gbdt, GbdtConfig};
pub use linear::{ElasticNet, RidgeRegression};
pub use mlp::{Mlp, MlpConfig};
pub use naive::NaiveRule;
pub use regressor::Regressor;
pub use rnn::{Rnn, RnnConfig, RnnKind};
pub use sequence::SequenceSpec;
