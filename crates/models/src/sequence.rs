//! Mapping flat Definition II.3 feature rows onto sequences for the
//! LSTM/GRU baselines.
//!
//! The feature layout tags every historical column with a `_dq{lag}`
//! suffix (lag quarters before the target). The sequence models consume
//! the history as `k` timesteps ordered oldest→newest, each timestep
//! carrying the same base schema (revenue, consensus, low/high
//! estimates, alternative channels); base features missing at a lag
//! (the dropped `R_dq{k}`, which normalizes to the constant 1) are
//! padded. Everything else — the bias, the current-quarter `*_dq0`
//! block and the one-hots — is static context concatenated to the
//! recurrent output before the linear head.

use ams_tensor::Matrix;

/// How a flat feature row decomposes into a sequence plus static
/// context.
#[derive(Debug, Clone)]
pub struct SequenceSpec {
    /// Base feature schema shared by every timestep.
    pub base_names: Vec<String>,
    /// `steps[t][f]` = column of base feature `f` at timestep `t`
    /// (t = 0 is the oldest lag). `None` means the column was dropped
    /// from the flat layout and is padded with `pad_value`.
    pub steps: Vec<Vec<Option<usize>>>,
    /// Columns used as static context.
    pub static_cols: Vec<usize>,
    /// Value used for padded entries.
    pub pad_value: f64,
}

impl SequenceSpec {
    /// Derive the spec from flat feature names with history length `k`.
    pub fn derive(names: &[String], k: usize) -> Self {
        assert!(k > 0, "sequence spec needs k > 0");
        // Collect base names appearing at any historical lag, keeping
        // first-seen order for determinism.
        let mut base_names: Vec<String> = Vec::new();
        let mut tagged: Vec<Option<(String, usize)>> = Vec::with_capacity(names.len());
        for n in names {
            let parsed = n
                .rsplit_once("_dq")
                .and_then(|(base, lag)| lag.parse::<usize>().ok().map(|l| (base.to_string(), l)));
            if let Some((base, lag)) = &parsed {
                if (1..=k).contains(lag) && !base_names.contains(base) {
                    base_names.push(base.clone());
                }
            }
            tagged.push(parsed);
        }
        assert!(!base_names.is_empty(), "no _dq-tagged history columns found");

        let mut steps = vec![vec![None; base_names.len()]; k];
        let mut static_cols = Vec::new();
        for (col, t) in tagged.iter().enumerate() {
            match t {
                Some((base, lag)) if (1..=k).contains(lag) => {
                    let f = base_names.iter().position(|b| b == base).expect("base collected");
                    // lag k is timestep 0 (oldest), lag 1 is the last.
                    steps[k - lag][f] = Some(col);
                }
                _ => static_cols.push(col),
            }
        }
        Self { base_names, steps, static_cols, pad_value: 0.0 }
    }

    /// Number of timesteps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Per-timestep input width.
    pub fn step_width(&self) -> usize {
        self.base_names.len()
    }

    /// Static context width.
    pub fn static_width(&self) -> usize {
        self.static_cols.len()
    }

    /// Slice a flat design matrix into per-timestep matrices plus the
    /// static context matrix.
    pub fn split(&self, x: &Matrix) -> (Vec<Matrix>, Matrix) {
        let n = x.rows();
        let mut step_mats = Vec::with_capacity(self.num_steps());
        for step in &self.steps {
            let mut m = Matrix::full(n, self.step_width(), self.pad_value);
            for (f, col) in step.iter().enumerate() {
                if let Some(c) = col {
                    for r in 0..n {
                        m[(r, f)] = x[(r, *c)];
                    }
                }
            }
            step_mats.push(m);
        }
        let mut stat = Matrix::zeros(n, self.static_width());
        for (j, &c) in self.static_cols.iter().enumerate() {
            for r in 0..n {
                stat[(r, j)] = x[(r, c)];
            }
        }
        (step_mats, stat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_names() -> Vec<String> {
        [
            "bias",
            "E_dq4",
            "A_dq4", // lag 4 (R_dq4 dropped)
            "R_dq3",
            "E_dq3",
            "A_dq3",
            "R_dq2",
            "E_dq2",
            "A_dq2",
            "R_dq1",
            "E_dq1",
            "A_dq1",
            "E_dq0",
            "A_dq0",
            "quarter_q1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    #[test]
    fn derive_groups_by_lag() {
        let spec = SequenceSpec::derive(&toy_names(), 4);
        assert_eq!(spec.num_steps(), 4);
        assert_eq!(spec.base_names, vec!["E", "A", "R"]); // first-seen order
                                                          // Oldest step (lag 4): E at col 1, A at col 2, R missing.
        assert_eq!(spec.steps[0], vec![Some(1), Some(2), None]);
        // Newest step (lag 1): R col 9, E col 10, A col 11.
        assert_eq!(spec.steps[3], vec![Some(10), Some(11), Some(9)]);
    }

    #[test]
    fn static_cols_are_the_rest() {
        let spec = SequenceSpec::derive(&toy_names(), 4);
        // bias, E_dq0, A_dq0, quarter_q1.
        assert_eq!(spec.static_cols, vec![0, 12, 13, 14]);
    }

    #[test]
    fn split_places_values() {
        let spec = SequenceSpec::derive(&toy_names(), 4);
        let mut x = Matrix::zeros(2, 15);
        for c in 0..15 {
            x[(0, c)] = c as f64;
            x[(1, c)] = 100.0 + c as f64;
        }
        let (steps, stat) = spec.split(&x);
        assert_eq!(steps.len(), 4);
        // Step 0 row 0: [E_dq4=1, A_dq4=2, R pad=0].
        assert_eq!(steps[0].row(0), &[1.0, 2.0, 0.0]);
        // Step 3 row 1: [E_dq1=110, A_dq1=111, R_dq1=109].
        assert_eq!(steps[3].row(1), &[110.0, 111.0, 109.0]);
        assert_eq!(stat.row(0), &[0.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn real_feature_names_parse() {
        use ams_data::{generate, FeatureSet, SynthConfig};
        let s = generate(&SynthConfig::tiny(21));
        let fs = FeatureSet::build(&s.panel, 4);
        let spec = SequenceSpec::derive(&fs.names, 4);
        assert_eq!(spec.num_steps(), 4);
        // Base schema: R, E, LE, HE, txn_amount (order of first sight:
        // lag 4 lists E first since R_dq4 is dropped, then R at lag 3).
        assert_eq!(spec.step_width(), 5);
        // Static: bias + 3 VE dq0 + 1 alt dq0 + 4 + 12 + 8 one-hots.
        assert_eq!(spec.static_width(), 1 + 4 + 24);
        // Every column is used exactly once.
        let mut used: Vec<usize> = spec.static_cols.clone();
        for step in &spec.steps {
            used.extend(step.iter().flatten().copied());
        }
        used.sort_unstable();
        let expect: Vec<usize> = (0..fs.width()).collect();
        assert_eq!(used, expect);
    }

    #[test]
    #[should_panic(expected = "no _dq-tagged")]
    fn derive_rejects_untagged_layout() {
        SequenceSpec::derive(&["a".into(), "b".into()], 4);
    }
}
