//! Linear baselines: OLS/Ridge (closed form) and Lasso/ElasticNet
//! (cyclic coordinate descent with soft thresholding).
//!
//! These are the "good interpretability" group of §IV-B. The elastic-net
//! objective follows the scikit-learn convention the paper's baselines
//! used:
//!
//! ```text
//! min_b  1/(2n) ‖y − X b‖² + α ( ρ ‖b‖₁ + (1−ρ)/2 ‖b‖² )
//! ```
//!
//! with `ρ = 1` giving Lasso and `ρ = 0` ridge. An optional intercept
//! column can be exempted from the penalty.

use ams_tensor::{ridge_solve, Matrix};

use crate::regressor::Regressor;

/// Ridge regression (L2), solved exactly via Cholesky on the normal
/// equations. `lambda = 0` gives OLS.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    /// L2 strength (the λ of Eq. 5 when used as the anchored LR).
    pub lambda: f64,
    coef: Option<Matrix>,
    name: String,
}

impl RidgeRegression {
    /// New ridge model.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 0.0, "ridge: negative lambda");
        Self { lambda, coef: None, name: "Ridge".into() }
    }

    /// OLS (λ = 0) with an OLS display name.
    pub fn ols() -> Self {
        Self { lambda: 0.0, coef: None, name: "OLS".into() }
    }

    /// Fitted coefficients (d×1).
    pub fn coefficients(&self) -> Option<&Matrix> {
        self.coef.as_ref()
    }
}

impl Regressor for RidgeRegression {
    fn fit(&mut self, x: &Matrix, y: &Matrix) {
        // Fall back to a slightly regularized solve if the Gram matrix
        // is singular (possible with λ=0 and collinear one-hots).
        let coef = ridge_solve(x, y, self.lambda)
            .or_else(|_| ridge_solve(x, y, self.lambda + 1e-8))
            .expect("ridge solve failed even with jitter");
        self.coef = Some(coef);
    }

    fn predict(&self, x: &Matrix) -> Matrix {
        let coef = self.coef.as_ref().expect("predict before fit");
        x.matmul(coef)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Elastic-net linear regression by cyclic coordinate descent.
#[derive(Debug, Clone)]
pub struct ElasticNet {
    /// Overall penalty strength α.
    pub alpha: f64,
    /// L1 mixing ρ ∈ [0, 1]; 1 = Lasso.
    pub l1_ratio: f64,
    /// Column exempt from the penalty (the explicit bias column).
    pub intercept_col: Option<usize>,
    /// Convergence threshold on the max coefficient change.
    pub tol: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    coef: Option<Matrix>,
    name: String,
}

impl ElasticNet {
    /// Elastic net with the given strength and mixing.
    pub fn new(alpha: f64, l1_ratio: f64) -> Self {
        assert!(alpha >= 0.0, "elasticnet: negative alpha");
        assert!((0.0..=1.0).contains(&l1_ratio), "elasticnet: l1_ratio outside [0,1]");
        Self {
            alpha,
            l1_ratio,
            intercept_col: Some(0),
            tol: 1e-7,
            max_iter: 2000,
            coef: None,
            name: "Elasticnet".into(),
        }
    }

    /// Lasso (ρ = 1).
    pub fn lasso(alpha: f64) -> Self {
        Self { name: "Lasso".into(), ..Self::new(alpha, 1.0) }
    }

    /// Fitted coefficients (d×1).
    pub fn coefficients(&self) -> Option<&Matrix> {
        self.coef.as_ref()
    }

    /// Number of exactly-zero coefficients (Lasso's feature selection —
    /// the mechanism behind its identical `-na` rows in Table III).
    pub fn num_zeros(&self) -> usize {
        self.coef.as_ref().map(|c| c.as_slice().iter().filter(|&&v| v == 0.0).count()).unwrap_or(0)
    }
}

fn soft_threshold(z: f64, t: f64) -> f64 {
    if z > t {
        z - t
    } else if z < -t {
        z + t
    } else {
        0.0
    }
}

impl Regressor for ElasticNet {
    fn fit(&mut self, x: &Matrix, y: &Matrix) {
        let n = x.rows();
        let d = x.cols();
        assert_eq!(y.rows(), n, "elasticnet: label count mismatch");
        let nf = n as f64;
        // Precompute per-column squared norms / n.
        let col_sq: Vec<f64> =
            (0..d).map(|j| (0..n).map(|i| x[(i, j)] * x[(i, j)]).sum::<f64>() / nf).collect();
        let l1 = self.alpha * self.l1_ratio;
        let l2 = self.alpha * (1.0 - self.l1_ratio);

        let mut b = vec![0.0; d];
        // Residual r = y − X b (starts at y with b = 0).
        let mut r: Vec<f64> = (0..n).map(|i| y[(i, 0)]).collect();
        for _ in 0..self.max_iter {
            let mut max_delta: f64 = 0.0;
            for j in 0..d {
                if col_sq[j] == 0.0 {
                    continue; // dead column
                }
                // rho_j = (1/n) x_jᵀ r + col_sq[j] * b_j  (partial residual corr.)
                let mut rho = 0.0;
                // Not a matmul: one dot product against a residual that
                // the enclosing coordinate sweep mutates, so it cannot
                // move onto a blocked kernel.
                for i in 0..n {
                    // ams-lint: allow(no-naive-matmul-outside-runtime)
                    rho += x[(i, j)] * r[i];
                }
                rho = rho / nf + col_sq[j] * b[j];
                let new_b = if self.intercept_col == Some(j) {
                    rho / col_sq[j]
                } else {
                    soft_threshold(rho, l1) / (col_sq[j] + l2)
                };
                let delta = new_b - b[j];
                if delta != 0.0 {
                    for i in 0..n {
                        r[i] -= delta * x[(i, j)];
                    }
                    b[j] = new_b;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        self.coef = Some(Matrix::col_vector(&b));
    }

    fn predict(&self, x: &Matrix) -> Matrix {
        let coef = self.coef.as_ref().expect("predict before fit");
        x.matmul(coef)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regressor::mse;
    use crate::regressor::testutil::linear_problem;

    #[test]
    fn ols_recovers_exact_linear_map() {
        let (xtr, ytr, xte, yte) = linear_problem(200, 50, 6, 0.0, 1);
        let mut m = RidgeRegression::ols();
        m.fit(&xtr, &ytr);
        assert!(mse(&m.predict(&xte), &yte) < 1e-18);
    }

    #[test]
    fn ridge_handles_noise() {
        let (xtr, ytr, xte, yte) = linear_problem(200, 50, 6, 0.3, 2);
        let mut m = RidgeRegression::new(0.5);
        m.fit(&xtr, &ytr);
        let err = mse(&m.predict(&xte), &yte);
        // Should explain most variance: residual near the noise floor.
        assert!(err < 0.2, "ridge test mse {err}");
    }

    #[test]
    fn ridge_shrinks_relative_to_ols() {
        let (xtr, ytr, _, _) = linear_problem(50, 1, 4, 0.1, 3);
        let mut ols = RidgeRegression::ols();
        ols.fit(&xtr, &ytr);
        let mut ridge = RidgeRegression::new(50.0);
        ridge.fit(&xtr, &ytr);
        let n_ols = ols.coefficients().unwrap().frobenius();
        let n_ridge = ridge.coefficients().unwrap().frobenius();
        assert!(n_ridge < n_ols, "ridge norm {n_ridge} !< ols norm {n_ols}");
    }

    #[test]
    fn lasso_matches_ols_at_zero_penalty() {
        let (xtr, ytr, xte, _) = linear_problem(100, 30, 5, 0.05, 4);
        let mut ols = RidgeRegression::ols();
        ols.fit(&xtr, &ytr);
        let mut lasso = ElasticNet::lasso(0.0);
        lasso.intercept_col = None;
        lasso.fit(&xtr, &ytr);
        let diff = ols.predict(&xte).max_abs_diff(&lasso.predict(&xte));
        assert!(diff < 1e-4, "lasso(0) vs OLS prediction diff {diff}");
    }

    #[test]
    fn lasso_zeroes_irrelevant_features() {
        // Only feature 0 matters; strong L1 must zero the rest.
        let n = 120;
        let mut x = Matrix::zeros(n, 5);
        let mut y = Matrix::zeros(n, 1);
        let mut state = 123u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..5 {
                x[(i, j)] = next();
            }
            y[(i, 0)] = 3.0 * x[(i, 0)] + 0.01 * next();
        }
        let mut lasso = ElasticNet::lasso(0.2);
        lasso.intercept_col = None;
        lasso.fit(&x, &y);
        let c = lasso.coefficients().unwrap();
        assert!(c[(0, 0)] > 1.0, "signal coefficient survived: {}", c[(0, 0)]);
        for j in 1..5 {
            assert_eq!(c[(j, 0)], 0.0, "noise coefficient {j} not zeroed");
        }
        assert_eq!(lasso.num_zeros(), 4);
    }

    #[test]
    fn lasso_kkt_conditions_hold() {
        // At the optimum: |x_jᵀ r / n| ≤ α for zero coords; = α·sign(b_j)
        // for active ones (within tolerance).
        let (xtr, ytr, _, _) = linear_problem(150, 1, 6, 0.2, 5);
        let alpha = 0.05;
        let mut lasso = ElasticNet::lasso(alpha);
        lasso.intercept_col = None;
        lasso.fit(&xtr, &ytr);
        let b = lasso.coefficients().unwrap();
        let resid = ytr.sub(&xtr.matmul(b));
        let n = xtr.rows() as f64;
        for j in 0..xtr.cols() {
            let grad = (0..xtr.rows()).map(|i| xtr[(i, j)] * resid[(i, 0)]).sum::<f64>() / n;
            if b[(j, 0)] == 0.0 {
                assert!(grad.abs() <= alpha + 1e-5, "KKT violated at zero coord {j}: {grad}");
            } else {
                assert!(
                    (grad - alpha * b[(j, 0)].signum()).abs() < 1e-5,
                    "KKT violated at active coord {j}: {grad}"
                );
            }
        }
    }

    #[test]
    fn elasticnet_between_ridge_and_lasso() {
        let (xtr, ytr, _, _) = linear_problem(100, 1, 6, 0.2, 6);
        let mut en = ElasticNet::new(0.1, 0.5);
        en.intercept_col = None;
        en.fit(&xtr, &ytr);
        assert_eq!(en.name(), "Elasticnet");
        assert!(en.coefficients().unwrap().all_finite());
    }

    #[test]
    fn intercept_column_unpenalized() {
        // Constant-shifted target: the intercept should absorb the shift
        // even under strong L1.
        let n = 80;
        let mut x = Matrix::ones(n, 2);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            let v = (i as f64 / n as f64) - 0.5;
            x[(i, 1)] = v;
            y[(i, 0)] = 10.0 + 0.0 * v;
        }
        let mut lasso = ElasticNet::lasso(1.0); // intercept_col = Some(0)
        lasso.fit(&x, &y);
        let c = lasso.coefficients().unwrap();
        assert!((c[(0, 0)] - 10.0).abs() < 1e-6, "intercept {}", c[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        RidgeRegression::new(1.0).predict(&Matrix::ones(1, 1));
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }
}
