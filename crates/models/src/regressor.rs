//! The common interface all baselines (and AMS itself, via an adapter in
//! `ams-eval`) implement: fit on a design matrix, predict a column of
//! normalized unexpected revenues.

use ams_tensor::Matrix;

/// A supervised regressor mapping feature rows to scalar predictions.
///
/// `fit` receives the full training design (`n×d`) and labels (`n×1`);
/// the AMS workloads are small enough that mini-batching is a model-
/// internal concern. Implementations must be deterministic given their
/// construction-time seed.
pub trait Regressor {
    /// Fit on training data, replacing any previous fit.
    fn fit(&mut self, x: &Matrix, y: &Matrix);

    /// Predict one value per row of `x`. Must be called after `fit`.
    fn predict(&self, x: &Matrix) -> Matrix;

    /// Short display name used in result tables.
    fn name(&self) -> &str;
}

/// Mean squared error between prediction and target columns — the
/// training-diagnostics helper shared by the model tests.
pub fn mse(pred: &Matrix, target: &Matrix) -> f64 {
    assert_eq!(pred.shape(), target.shape(), "mse: shape mismatch");
    pred.sub(target).sq_frobenius() / pred.len() as f64
}

#[cfg(test)]
pub(crate) mod testutil {
    use ams_tensor::init::standard_normal;
    use ams_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// y = X w* + noise, returns (x_train, y_train, x_test, y_test).
    pub fn linear_problem(
        n_train: usize,
        n_test: usize,
        d: usize,
        noise: f64,
        seed: u64,
    ) -> (Matrix, Matrix, Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f64> = (0..d).map(|_| standard_normal(&mut rng)).collect();
        let gen = |n: usize, rng: &mut StdRng| {
            let mut x = Matrix::zeros(n, d);
            let mut y = Matrix::zeros(n, 1);
            for r in 0..n {
                let mut dot = 0.0;
                for c in 0..d {
                    let v = standard_normal(rng);
                    x[(r, c)] = v;
                    dot += v * w[c];
                }
                y[(r, 0)] = dot + noise * standard_normal(rng);
            }
            (x, y)
        };
        let (xtr, ytr) = gen(n_train, &mut rng);
        let (xte, yte) = gen(n_test, &mut rng);
        (xtr, ytr, xte, yte)
    }

    /// A nonlinear target: y = sin(x0) + x1^2 − x0 x1 + noise.
    pub fn nonlinear_problem(n: usize, noise: f64, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Matrix::zeros(n, 1);
        for r in 0..n {
            let a = 2.0 * standard_normal(&mut rng);
            let b = standard_normal(&mut rng);
            x[(r, 0)] = a;
            x[(r, 1)] = b;
            y[(r, 0)] = a.sin() + b * b - a * b + noise * standard_normal(&mut rng);
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_is_zero() {
        let a = Matrix::col_vector(&[1.0, 2.0]);
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = Matrix::col_vector(&[1.0, 2.0]);
        let b = Matrix::col_vector(&[0.0, 0.0]);
        assert_eq!(mse(&a, &b), 2.5);
    }
}
