//! Multilayer perceptron baseline (§IV-B: "a greater capacity than
//! linear regression but uninterpretable").
//!
//! ReLU hidden layers with inverted dropout, L2 weight decay, trained
//! full-batch with Adam — matching the paper's training protocol
//! (§IV-C: Adam, dropout on stacked fully connected layers, L2).

use ams_tensor::init::{dropout_mask, he_uniform};
use ams_tensor::{Adam, Graph, Matrix, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::regressor::Regressor;

/// MLP hyperparameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden layer widths (e.g. `[32, 16]`).
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// L2 weight-decay strength.
    pub l2: f64,
    /// Dropout probability applied after every hidden activation.
    pub dropout: f64,
    /// Parameter-init / dropout seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self { hidden: vec![32, 16], lr: 1e-2, epochs: 300, l2: 1e-4, dropout: 0.1, seed: 0 }
    }
}

/// A fitted/fittable MLP regressor.
pub struct Mlp {
    config: MlpConfig,
    /// Interleaved `[w1, b1, w2, b2, ...]`; weights are `in×out`.
    params: Vec<Matrix>,
}

impl Mlp {
    /// Untrained MLP; layers are sized lazily at `fit` time from the
    /// design-matrix width.
    pub fn new(config: MlpConfig) -> Self {
        Self { config, params: Vec::new() }
    }

    fn build_params(&mut self, input_dim: usize, rng: &mut StdRng) {
        let mut dims = vec![input_dim];
        dims.extend_from_slice(&self.config.hidden);
        dims.push(1);
        self.params.clear();
        for w in dims.windows(2) {
            self.params.push(he_uniform(w[0], w[1], rng));
            self.params.push(Matrix::zeros(1, w[1]));
        }
    }

    /// Forward pass; when `rng` is `Some` dropout masks are sampled
    /// (training mode), otherwise the network runs deterministically.
    fn forward(&self, g: &mut Graph, x: Var, rng: Option<&mut StdRng>) -> (Var, Vec<Var>) {
        let mut param_vars = Vec::with_capacity(self.params.len());
        for p in &self.params {
            param_vars.push(g.input(p.clone()));
        }
        let n_layers = self.params.len() / 2;
        let mut h = x;
        let mut rng = rng;
        for l in 0..n_layers {
            let z = g.matmul(h, param_vars[2 * l]);
            let z = g.add_row_broadcast(z, param_vars[2 * l + 1]);
            if l + 1 < n_layers {
                h = g.relu(z);
                if self.config.dropout > 0.0 {
                    if let Some(r) = rng.as_deref_mut() {
                        let shape = g.value(h).shape();
                        let mask = dropout_mask(shape.0, shape.1, self.config.dropout, r);
                        h = g.dropout(h, &mask);
                    }
                }
            } else {
                h = z;
            }
        }
        (h, param_vars)
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, x: &Matrix, y: &Matrix) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.build_params(x.cols(), &mut rng);
        let mut adam = Adam::new(self.config.lr);
        for _ in 0..self.config.epochs {
            let mut g = Graph::new();
            let xin = g.input(x.clone());
            let (pred, param_vars) = self.forward(&mut g, xin, Some(&mut rng));
            let target = g.input(y.clone());
            let mut loss = g.mse(pred, target);
            if self.config.l2 > 0.0 {
                for (i, &pv) in param_vars.iter().enumerate() {
                    if i % 2 == 0 {
                        // weights only, not biases
                        let sq = g.sq_frobenius(pv);
                        let reg = g.scale(sq, self.config.l2);
                        loss = g.add(loss, reg);
                    }
                }
            }
            let grads = g.backward(loss);
            let grad_mats: Vec<Matrix> = param_vars.iter().map(|&v| grads.get(v)).collect();
            adam.step(&mut self.params, &grad_mats);
        }
    }

    fn predict(&self, x: &Matrix) -> Matrix {
        assert!(!self.params.is_empty(), "predict before fit");
        let mut g = Graph::new();
        let xin = g.input(x.clone());
        let (pred, _) = self.forward(&mut g, xin, None);
        g.value(pred).clone()
    }

    fn name(&self) -> &str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regressor::mse;
    use crate::regressor::testutil::{linear_problem, nonlinear_problem};

    #[test]
    fn learns_linear_map() {
        let (xtr, ytr, xte, yte) = linear_problem(200, 50, 4, 0.05, 10);
        let mut m = Mlp::new(MlpConfig { epochs: 400, dropout: 0.0, ..Default::default() });
        m.fit(&xtr, &ytr);
        let err = mse(&m.predict(&xte), &yte);
        assert!(err < 0.1, "mlp linear-map test mse {err}");
    }

    #[test]
    fn learns_nonlinear_map_better_than_linear() {
        let (x, y) = nonlinear_problem(300, 0.05, 11);
        let (xtr, ytr) = (
            x.select_rows(&(0..200).collect::<Vec<_>>()),
            y.select_rows(&(0..200).collect::<Vec<_>>()),
        );
        let (xte, yte) = (
            x.select_rows(&(200..300).collect::<Vec<_>>()),
            y.select_rows(&(200..300).collect::<Vec<_>>()),
        );
        let mut mlp = Mlp::new(MlpConfig {
            hidden: vec![48, 24],
            epochs: 800,
            dropout: 0.0,
            lr: 5e-3,
            ..Default::default()
        });
        mlp.fit(&xtr, &ytr);
        let mlp_err = mse(&mlp.predict(&xte), &yte);
        let mut lin = crate::linear::RidgeRegression::new(1e-6);
        lin.fit(&xtr, &ytr);
        let lin_err = mse(&lin.predict(&xte), &yte);
        assert!(mlp_err < lin_err, "mlp {mlp_err} should beat linear {lin_err} on nonlinear data");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xtr, ytr, xte, _) = linear_problem(50, 10, 3, 0.1, 12);
        let cfg = MlpConfig { epochs: 50, seed: 99, ..Default::default() };
        let mut a = Mlp::new(cfg.clone());
        a.fit(&xtr, &ytr);
        let mut b = Mlp::new(cfg);
        b.fit(&xtr, &ytr);
        assert_eq!(a.predict(&xte).as_slice(), b.predict(&xte).as_slice());
    }

    #[test]
    fn prediction_is_deterministic_after_fit() {
        // Dropout must be inference-disabled.
        let (xtr, ytr, xte, _) = linear_problem(50, 10, 3, 0.1, 13);
        let mut m = Mlp::new(MlpConfig { epochs: 30, dropout: 0.4, ..Default::default() });
        m.fit(&xtr, &ytr);
        assert_eq!(m.predict(&xte).as_slice(), m.predict(&xte).as_slice());
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        Mlp::new(MlpConfig::default()).predict(&Matrix::ones(1, 3));
    }
}
