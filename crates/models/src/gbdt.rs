//! Gradient-boosted regression trees in the XGBoost formulation (the
//! paper's XGBoost baseline with `objective = "reg:linear"`).
//!
//! Second-order boosting on squared loss: per boosting round the
//! gradient is `pred − y` and the hessian 1; trees are grown by exact
//! greedy split search maximizing the regularized gain
//!
//! ```text
//! gain = ½ [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ
//! ```
//!
//! with leaf weights `−G/(H+λ)`, shrinkage, and optional row/column
//! subsampling.

use ams_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::regressor::Regressor;

/// GBDT hyperparameters.
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Shrinkage η applied to every leaf.
    pub learning_rate: f64,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian sum (= sample count for squared loss) per child.
    pub min_child_weight: f64,
    /// Row subsample fraction per tree.
    pub subsample: f64,
    /// Column subsample fraction per tree.
    pub colsample: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_estimators: 200,
            max_depth: 3,
            learning_rate: 0.1,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            colsample: 1.0,
            seed: 0,
        }
    }
}

/// One node of a regression tree (arena-allocated).
#[derive(Debug, Clone)]
enum TreeNode {
    Split { feature: usize, threshold: f64, left: usize, right: usize },
    Leaf { value: f64 },
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<TreeNode>,
}

impl Tree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split { feature, threshold, left, right } => {
                    i = if row[*feature] < *threshold { *left } else { *right };
                }
            }
        }
    }

    fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, TreeNode::Leaf { .. })).count()
    }
}

/// The boosted ensemble.
pub struct Gbdt {
    config: GbdtConfig,
    trees: Vec<Tree>,
    base_score: f64,
}

impl Gbdt {
    /// Untrained ensemble.
    pub fn new(config: GbdtConfig) -> Self {
        assert!(config.learning_rate > 0.0, "gbdt: non-positive learning rate");
        assert!((0.0..=1.0).contains(&config.subsample) && config.subsample > 0.0);
        assert!((0.0..=1.0).contains(&config.colsample) && config.colsample > 0.0);
        Self { config, trees: Vec::new(), base_score: 0.0 }
    }

    /// Number of trees in the fitted ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total leaves across the ensemble (complexity diagnostic).
    pub fn total_leaves(&self) -> usize {
        self.trees.iter().map(Tree::num_leaves).sum()
    }

    /// Grow one tree on (grad, hess) for the given rows/columns.
    fn grow_tree(
        &self,
        x: &Matrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        cols: &[usize],
    ) -> Tree {
        let mut nodes = Vec::new();
        self.grow_node(x, grad, hess, rows, cols, 0, &mut nodes);
        Tree { nodes }
    }

    #[allow(clippy::too_many_arguments)]
    fn grow_node(
        &self,
        x: &Matrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        cols: &[usize],
        depth: usize,
        nodes: &mut Vec<TreeNode>,
    ) -> usize {
        let g_sum: f64 = rows.iter().map(|&r| grad[r]).sum();
        let h_sum: f64 = rows.iter().map(|&r| hess[r]).sum();
        let leaf = |nodes: &mut Vec<TreeNode>| {
            let value = -g_sum / (h_sum + self.config.lambda);
            nodes.push(TreeNode::Leaf { value });
            nodes.len() - 1
        };
        if depth >= self.config.max_depth || rows.len() < 2 {
            return leaf(nodes);
        }

        // Exact greedy split search.
        let parent_score = g_sum * g_sum / (h_sum + self.config.lambda);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted = rows.to_vec();
        for &f in cols {
            sorted.sort_by(|&a, &b| x[(a, f)].partial_cmp(&x[(b, f)]).expect("NaN feature"));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..sorted.len() - 1 {
                let r = sorted[w];
                gl += grad[r];
                hl += hess[r];
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                // Can't split between equal feature values.
                if x[(sorted[w], f)] == x[(sorted[w + 1], f)] {
                    continue;
                }
                if hl < self.config.min_child_weight || hr < self.config.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + self.config.lambda) + gr * gr / (hr + self.config.lambda)
                        - parent_score)
                    - self.config.gamma;
                if gain > best.map_or(0.0, |b| b.0) {
                    let threshold = 0.5 * (x[(sorted[w], f)] + x[(sorted[w + 1], f)]);
                    best = Some((gain, f, threshold));
                }
            }
        }

        match best {
            None => leaf(nodes),
            Some((_, feature, threshold)) => {
                let (lrows, rrows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&r| x[(r, feature)] < threshold);
                // Reserve this node's slot, then grow children.
                nodes.push(TreeNode::Leaf { value: 0.0 });
                let slot = nodes.len() - 1;
                let left = self.grow_node(x, grad, hess, &lrows, cols, depth + 1, nodes);
                let right = self.grow_node(x, grad, hess, &rrows, cols, depth + 1, nodes);
                nodes[slot] = TreeNode::Split { feature, threshold, left, right };
                slot
            }
        }
    }
}

impl Regressor for Gbdt {
    fn fit(&mut self, x: &Matrix, y: &Matrix) {
        assert_eq!(x.rows(), y.rows(), "gbdt: label count mismatch");
        let n = x.rows();
        let d = x.cols();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.trees.clear();
        self.base_score = (0..n).map(|i| y[(i, 0)]).sum::<f64>() / n as f64;
        let mut pred = vec![self.base_score; n];
        let hess = vec![1.0; n];
        let all_rows: Vec<usize> = (0..n).collect();
        let all_cols: Vec<usize> = (0..d).collect();
        for _ in 0..self.config.n_estimators {
            let grad: Vec<f64> = (0..n).map(|i| pred[i] - y[(i, 0)]).collect();
            let rows = if self.config.subsample < 1.0 {
                let m = ((n as f64 * self.config.subsample).round() as usize).max(2);
                let mut r = all_rows.clone();
                r.shuffle(&mut rng);
                r.truncate(m);
                r
            } else {
                all_rows.clone()
            };
            let cols = if self.config.colsample < 1.0 {
                let m = ((d as f64 * self.config.colsample).round() as usize).max(1);
                let mut c = all_cols.clone();
                c.shuffle(&mut rng);
                c.truncate(m);
                c
            } else {
                all_cols.clone()
            };
            let tree = self.grow_tree(x, &grad, &hess, &rows, &cols);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += self.config.learning_rate * tree.predict_row(x.row(i));
            }
            self.trees.push(tree);
        }
    }

    fn predict(&self, x: &Matrix) -> Matrix {
        assert!(!self.trees.is_empty(), "predict before fit");
        let mut out = Matrix::full(x.rows(), 1, self.base_score);
        for tree in &self.trees {
            for r in 0..x.rows() {
                out[(r, 0)] += self.config.learning_rate * tree.predict_row(x.row(r));
            }
        }
        out
    }

    fn name(&self) -> &str {
        "XGBoost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regressor::mse;
    use crate::regressor::testutil::{linear_problem, nonlinear_problem};

    #[test]
    fn fits_step_function_exactly() {
        // y = 1 if x > 0 else -1: one split suffices.
        let n = 40;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            let v = i as f64 - 19.5;
            x[(i, 0)] = v;
            y[(i, 0)] = if v > 0.0 { 1.0 } else { -1.0 };
        }
        let mut m = Gbdt::new(GbdtConfig {
            n_estimators: 100,
            max_depth: 2,
            lambda: 0.0,
            ..Default::default()
        });
        m.fit(&x, &y);
        let err = mse(&m.predict(&x), &y);
        assert!(err < 1e-4, "step-function mse {err}");
    }

    #[test]
    fn boosting_reduces_training_error_monotonically_in_rounds() {
        let (xtr, ytr, _, _) = linear_problem(150, 1, 5, 0.1, 40);
        let errs: Vec<f64> = [5usize, 50, 200]
            .iter()
            .map(|&rounds| {
                let mut m = Gbdt::new(GbdtConfig { n_estimators: rounds, ..Default::default() });
                m.fit(&xtr, &ytr);
                mse(&m.predict(&xtr), &ytr)
            })
            .collect();
        assert!(errs[1] < errs[0]);
        assert!(errs[2] < errs[1]);
    }

    #[test]
    fn captures_nonlinearity() {
        let (x, y) = nonlinear_problem(400, 0.05, 41);
        let tr: Vec<usize> = (0..300).collect();
        let te: Vec<usize> = (300..400).collect();
        let (xtr, ytr) = (x.select_rows(&tr), y.select_rows(&tr));
        let (xte, yte) = (x.select_rows(&te), y.select_rows(&te));
        let mut m = Gbdt::new(GbdtConfig { n_estimators: 300, max_depth: 4, ..Default::default() });
        m.fit(&xtr, &ytr);
        let gbdt_err = mse(&m.predict(&xte), &yte);
        let mut lin = crate::linear::RidgeRegression::new(1e-6);
        lin.fit(&xtr, &ytr);
        let lin_err = mse(&lin.predict(&xte), &yte);
        assert!(gbdt_err < lin_err, "gbdt {gbdt_err} should beat linear {lin_err}");
    }

    #[test]
    fn constant_target_yields_base_score_only() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = Matrix::full(3, 1, 7.0);
        let mut m = Gbdt::new(GbdtConfig { n_estimators: 10, ..Default::default() });
        m.fit(&x, &y);
        let p = m.predict(&x);
        for i in 0..3 {
            assert!((p[(i, 0)] - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gamma_prunes_weak_splits() {
        let (xtr, ytr, _, _) = linear_problem(100, 1, 4, 0.5, 42);
        let mut loose =
            Gbdt::new(GbdtConfig { n_estimators: 20, gamma: 0.0, ..Default::default() });
        loose.fit(&xtr, &ytr);
        let mut strict =
            Gbdt::new(GbdtConfig { n_estimators: 20, gamma: 10.0, ..Default::default() });
        strict.fit(&xtr, &ytr);
        assert!(strict.total_leaves() < loose.total_leaves());
    }

    #[test]
    fn subsampling_is_deterministic_per_seed() {
        let (xtr, ytr, xte, _) = linear_problem(120, 20, 4, 0.2, 43);
        let cfg = GbdtConfig {
            n_estimators: 30,
            subsample: 0.7,
            colsample: 0.7,
            seed: 3,
            ..Default::default()
        };
        let mut a = Gbdt::new(cfg.clone());
        a.fit(&xtr, &ytr);
        let mut b = Gbdt::new(cfg);
        b.fit(&xtr, &ytr);
        assert_eq!(a.predict(&xte).as_slice(), b.predict(&xte).as_slice());
    }

    #[test]
    fn min_child_weight_limits_tiny_leaves() {
        let (xtr, ytr, _, _) = linear_problem(60, 1, 3, 0.2, 44);
        let mut m = Gbdt::new(GbdtConfig {
            n_estimators: 5,
            max_depth: 6,
            min_child_weight: 20.0,
            ..Default::default()
        });
        m.fit(&xtr, &ytr);
        // With ≥20 samples/leaf out of 60, a tree can have at most 3 leaves.
        for t in &m.trees {
            assert!(t.num_leaves() <= 3, "leaf count {}", t.num_leaves());
        }
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        Gbdt::new(GbdtConfig::default()).predict(&Matrix::ones(1, 1));
    }
}
