//! The naive alternative-data rules QoQ and YoY (§IV-B).
//!
//! * QoQ: `ÛR_i^t = (A_i^t / A_i^{t−1}) · R_i^{t−1} − E_i^t`
//! * YoY: `ÛR_i^t = (A_i^t / A_i^{t−4}) · R_i^{t−4} − E_i^t`
//!
//! i.e. extrapolate revenue by the alternative channel's growth ratio
//! and subtract the consensus. These operate on panel semantics rather
//! than feature rows, so they live outside the [`crate::Regressor`]
//! trait; the evaluation harness calls them directly per (company,
//! quarter, channel).

use ams_data::Panel;

/// Which naive rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaiveRule {
    /// Quarter-over-quarter ratio (lag 1).
    QoQ,
    /// Year-over-year ratio (lag 4).
    YoY,
}

impl NaiveRule {
    /// The lag the rule compares against.
    pub fn lag(self) -> usize {
        match self {
            NaiveRule::QoQ => 1,
            NaiveRule::YoY => 4,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NaiveRule::QoQ => "QoQ",
            NaiveRule::YoY => "YoY",
        }
    }

    /// Predicted unexpected revenue for company `c` at panel quarter
    /// index `t`, using alternative channel `channel`.
    ///
    /// # Panics
    /// Panics when `t` lacks the required lag history.
    pub fn predict_ur(self, panel: &Panel, c: usize, t: usize, channel: usize) -> f64 {
        let lag = self.lag();
        assert!(t >= lag, "{} needs {lag} quarters of history at t={t}", self.name());
        let cur = panel.get(c, t);
        let prev = panel.get(c, t - lag);
        let ratio = cur.alt[channel] / prev.alt[channel];
        ratio * prev.revenue - cur.consensus
    }

    /// Predicted revenue level (the term before subtracting consensus).
    pub fn predict_revenue(self, panel: &Panel, c: usize, t: usize, channel: usize) -> f64 {
        let lag = self.lag();
        let cur = panel.get(c, t);
        let prev = panel.get(c, t - lag);
        cur.alt[channel] / prev.alt[channel] * prev.revenue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::{generate, SynthConfig};

    #[test]
    fn lags_and_names() {
        assert_eq!(NaiveRule::QoQ.lag(), 1);
        assert_eq!(NaiveRule::YoY.lag(), 4);
        assert_eq!(NaiveRule::QoQ.name(), "QoQ");
        assert_eq!(NaiveRule::YoY.name(), "YoY");
    }

    #[test]
    fn formulas_match_paper() {
        let s = generate(&SynthConfig::tiny(60));
        let p = &s.panel;
        let (c, t, ch) = (3, 6, 0);
        let qoq = NaiveRule::QoQ.predict_ur(p, c, t, ch);
        let expect_qoq = p.get(c, t).alt[ch] / p.get(c, t - 1).alt[ch] * p.get(c, t - 1).revenue
            - p.get(c, t).consensus;
        assert!((qoq - expect_qoq).abs() < 1e-12);
        let yoy = NaiveRule::YoY.predict_ur(p, c, t, ch);
        let expect_yoy = p.get(c, t).alt[ch] / p.get(c, t - 4).alt[ch] * p.get(c, t - 4).revenue
            - p.get(c, t).consensus;
        assert!((yoy - expect_yoy).abs() < 1e-12);
    }

    #[test]
    fn revenue_and_ur_consistent() {
        let s = generate(&SynthConfig::tiny(61));
        let p = &s.panel;
        let r = NaiveRule::YoY.predict_revenue(p, 1, 5, 0);
        let ur = NaiveRule::YoY.predict_ur(p, 1, 5, 0);
        assert!((r - p.get(1, 5).consensus - ur).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "history")]
    fn rejects_insufficient_history() {
        let s = generate(&SynthConfig::tiny(62));
        NaiveRule::YoY.predict_ur(&s.panel, 0, 2, 0);
    }
}
