//! Derivative-free optimization: the Nelder–Mead simplex method, used
//! to fit ARIMA's conditional-sum-of-squares objective (the same
//! criterion classical ARIMA packages minimize).

/// Nelder–Mead options.
#[derive(Debug, Clone)]
pub struct NelderMeadConfig {
    /// Maximum function evaluations.
    pub max_evals: usize,
    /// Stop when the simplex's function-value spread falls below this
    /// *and* the simplex diameter falls below `x_tol`.
    pub f_tol: f64,
    /// Simplex-diameter part of the convergence test (guards against
    /// premature stops when two vertices straddle the minimum with
    /// equal objective values).
    pub x_tol: f64,
    /// Initial simplex step per coordinate.
    pub step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        Self { max_evals: 4000, f_tol: 1e-10, x_tol: 1e-7, step: 0.1 }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct NelderMeadResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub f: f64,
    /// Function evaluations used.
    pub evals: usize,
}

/// Minimize `f` starting from `x0` with the Nelder–Mead simplex
/// (reflection 1, expansion 2, contraction ½, shrink ½).
pub fn nelder_mead(
    f: impl Fn(&[f64]) -> f64,
    x0: &[f64],
    config: &NelderMeadConfig,
) -> NelderMeadResult {
    let n = x0.len();
    assert!(n > 0, "nelder_mead: empty start point");
    let mut evals = 0;
    let eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), f0));
    for i in 0..n {
        let mut xi = x0.to_vec();
        xi[i] += if xi[i].abs() > 1e-8 { config.step * xi[i].abs() } else { config.step };
        let fi = eval(&xi, &mut evals);
        simplex.push((xi, fi));
    }

    while evals < config.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN filtered"));
        let spread = simplex[n].1 - simplex[0].1;
        let diameter = simplex[1..]
            .iter()
            .map(|(x, _)| {
                x.iter().zip(&simplex[0].0).map(|(a, b)| (a - b).abs()).fold(0.0_f64, f64::max)
            })
            .fold(0.0_f64, f64::max);
        if spread.abs() < config.f_tol && diameter < config.x_tol {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, v) in centroid.iter_mut().zip(x) {
                *c += v / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid.iter().zip(&worst.0).map(|(c, w)| c + (c - w)).collect();
        let f_r = eval(&reflect, &mut evals);

        if f_r < simplex[0].1 {
            // Try expansion.
            let expand: Vec<f64> =
                centroid.iter().zip(&worst.0).map(|(c, w)| c + 2.0 * (c - w)).collect();
            let f_e = eval(&expand, &mut evals);
            simplex[n] = if f_e < f_r { (expand, f_e) } else { (reflect, f_r) };
        } else if f_r < simplex[n - 1].1 {
            simplex[n] = (reflect, f_r);
        } else {
            // Contraction (toward the better of worst/reflected).
            let (base, f_base) = if f_r < worst.1 { (&reflect, f_r) } else { (&worst.0, worst.1) };
            let contract: Vec<f64> =
                centroid.iter().zip(base).map(|(c, b)| c + 0.5 * (b - c)).collect();
            let f_c = eval(&contract, &mut evals);
            if f_c < f_base {
                simplex[n] = (contract, f_c);
            } else {
                // Shrink toward the best point.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let x: Vec<f64> =
                        best.iter().zip(&entry.0).map(|(b, v)| b + 0.5 * (v - b)).collect();
                    let fx = eval(&x, &mut evals);
                    *entry = (x, fx);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN filtered"));
    NelderMeadResult { x: simplex[0].0.clone(), f: simplex[0].1, evals }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_sphere() {
        let r = nelder_mead(
            |x| x.iter().map(|v| v * v).sum(),
            &[3.0, -2.0, 1.0],
            &NelderMeadConfig::default(),
        );
        assert!(r.f < 1e-8, "sphere residual {}", r.f);
        for v in &r.x {
            assert!(v.abs() < 1e-3);
        }
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = nelder_mead(
            rosen,
            &[-1.2, 1.0],
            &NelderMeadConfig { max_evals: 20_000, ..Default::default() },
        );
        assert!(r.f < 1e-6, "rosenbrock residual {}", r.f);
        assert!((r.x[0] - 1.0).abs() < 1e-2);
        assert!((r.x[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn handles_shifted_quadratic() {
        let r = nelder_mead(
            |x| (x[0] - 5.0).powi(2) + (x[1] + 3.0).powi(2) + 7.0,
            &[0.0, 0.0],
            &NelderMeadConfig::default(),
        );
        assert!((r.f - 7.0).abs() < 1e-8);
        assert!((r.x[0] - 5.0).abs() < 1e-3);
        assert!((r.x[1] + 3.0).abs() < 1e-3);
    }

    #[test]
    fn respects_eval_budget() {
        let r = nelder_mead(
            |x| x[0] * x[0],
            &[100.0],
            &NelderMeadConfig { max_evals: 10, ..Default::default() },
        );
        assert!(r.evals <= 13); // budget + final simplex evaluations margin
    }

    #[test]
    fn nan_objective_treated_as_infinite() {
        // Function NaN outside [0, ∞): optimizer must still find 0.5.
        let f = |x: &[f64]| if x[0] < 0.0 { f64::NAN } else { (x[0] - 0.5).powi(2) };
        let r = nelder_mead(f, &[2.0], &NelderMeadConfig::default());
        assert!((r.x[0] - 0.5).abs() < 1e-3);
    }
}
