//! Recurrent baselines: LSTM (Hochreiter & Schmidhuber) and GRU (Cho et
//! al.), the "neural sequence models" group of §IV-B.
//!
//! Each model unrolls over the `k = 4` historical quarters (oldest →
//! newest) as arranged by [`crate::sequence::SequenceSpec`], then
//! concatenates the final hidden state with the static context
//! (current-quarter estimates, alternative data, one-hots) and applies
//! a linear head. Trained full-batch with Adam under L2, like every
//! other neural model in the paper's protocol.

use ams_tensor::init::xavier_uniform;
use ams_tensor::{Adam, Graph, Matrix, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::regressor::Regressor;
use crate::sequence::SequenceSpec;

/// Which recurrent cell to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RnnKind {
    /// Long Short-Term Memory (12 gate matrices).
    Lstm,
    /// Gated Recurrent Unit (9 gate matrices).
    Gru,
}

/// RNN hyperparameters.
#[derive(Debug, Clone)]
pub struct RnnConfig {
    /// Hidden state width.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// L2 strength on all weight matrices.
    pub l2: f64,
    /// Init seed.
    pub seed: u64,
}

impl Default for RnnConfig {
    fn default() -> Self {
        Self { hidden: 24, lr: 1e-2, epochs: 300, l2: 1e-4, seed: 0 }
    }
}

/// A recurrent regressor over the lag structure of the feature rows.
pub struct Rnn {
    kind: RnnKind,
    config: RnnConfig,
    spec: SequenceSpec,
    params: Vec<Matrix>,
}

impl Rnn {
    /// New LSTM over the given flat-feature decomposition.
    pub fn lstm(spec: SequenceSpec, config: RnnConfig) -> Self {
        Self { kind: RnnKind::Lstm, config, spec, params: Vec::new() }
    }

    /// New GRU over the given flat-feature decomposition.
    pub fn gru(spec: SequenceSpec, config: RnnConfig) -> Self {
        Self { kind: RnnKind::Gru, config, spec, params: Vec::new() }
    }

    fn n_gates(&self) -> usize {
        match self.kind {
            RnnKind::Lstm => 4, // input, forget, cell, output
            RnnKind::Gru => 3,  // update, reset, candidate
        }
    }

    fn build_params(&mut self, rng: &mut StdRng) {
        let d = self.spec.step_width();
        let h = self.config.hidden;
        self.params.clear();
        for _ in 0..self.n_gates() {
            self.params.push(xavier_uniform(d, h, rng)); // W  (input → gate)
            self.params.push(xavier_uniform(h, h, rng)); // U  (hidden → gate)
            self.params.push(Matrix::zeros(1, h)); //        b
        }
        // Linear head on [h_final | static].
        self.params.push(xavier_uniform(h + self.spec.static_width(), 1, rng));
        self.params.push(Matrix::zeros(1, 1));
    }

    /// Gate pre-activation `x W + h U + b` for gate `gate`.
    fn gate(&self, g: &mut Graph, pv: &[Var], gate: usize, x: Var, h: Var) -> Var {
        let xw = g.matmul(x, pv[3 * gate]);
        let hu = g.matmul(h, pv[3 * gate + 1]);
        let s = g.add(xw, hu);
        g.add_row_broadcast(s, pv[3 * gate + 2])
    }

    fn forward(&self, g: &mut Graph, steps: &[Matrix], stat: &Matrix) -> (Var, Vec<Var>) {
        let pv: Vec<Var> = self.params.iter().map(|p| g.input(p.clone())).collect();
        let n = steps[0].rows();
        let h0 = g.input(Matrix::zeros(n, self.config.hidden));
        let mut h = h0;
        match self.kind {
            RnnKind::Lstm => {
                let mut c = g.input(Matrix::zeros(n, self.config.hidden));
                for xm in steps {
                    let x = g.input(xm.clone());
                    let i = self.gate(g, &pv, 0, x, h);
                    let i = g.sigmoid(i);
                    let f = self.gate(g, &pv, 1, x, h);
                    let f = g.sigmoid(f);
                    let gc = self.gate(g, &pv, 2, x, h);
                    let gc = g.tanh(gc);
                    let o = self.gate(g, &pv, 3, x, h);
                    let o = g.sigmoid(o);
                    let fc = g.mul(f, c);
                    let ig = g.mul(i, gc);
                    c = g.add(fc, ig);
                    let tc = g.tanh(c);
                    h = g.mul(o, tc);
                }
            }
            RnnKind::Gru => {
                for xm in steps {
                    let x = g.input(xm.clone());
                    let z = self.gate(g, &pv, 0, x, h);
                    let z = g.sigmoid(z);
                    let r = self.gate(g, &pv, 1, x, h);
                    let r = g.sigmoid(r);
                    let rh = g.mul(r, h);
                    let cand = self.gate(g, &pv, 2, x, rh);
                    let cand = g.tanh(cand);
                    // h' = (1 − z) ⊙ h + z ⊙ cand
                    let one_minus_z = g.affine(z, -1.0, 1.0);
                    let keep = g.mul(one_minus_z, h);
                    let upd = g.mul(z, cand);
                    h = g.add(keep, upd);
                }
            }
        }
        let stat_v = g.input(stat.clone());
        let joined = g.concat_cols(&[h, stat_v]);
        let head_w = pv[pv.len() - 2];
        let head_b = pv[pv.len() - 1];
        let out = g.matmul(joined, head_w);
        let out = g.add_row_broadcast(out, head_b);
        (out, pv)
    }
}

impl Regressor for Rnn {
    fn fit(&mut self, x: &Matrix, y: &Matrix) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.build_params(&mut rng);
        let (steps, stat) = self.spec.split(x);
        let mut adam = Adam::new(self.config.lr);
        for _ in 0..self.config.epochs {
            let mut g = Graph::new();
            let (pred, pv) = self.forward(&mut g, &steps, &stat);
            let target = g.input(y.clone());
            let mut loss = g.mse(pred, target);
            if self.config.l2 > 0.0 {
                for (i, &v) in pv.iter().enumerate() {
                    // Penalize weight matrices (every 3rd slot in gate
                    // triples is the bias; the last slot is head bias).
                    let is_bias = (i < pv.len() - 2 && i % 3 == 2) || i == pv.len() - 1;
                    if !is_bias {
                        let sq = g.sq_frobenius(v);
                        let reg = g.scale(sq, self.config.l2);
                        loss = g.add(loss, reg);
                    }
                }
            }
            let grads = g.backward(loss);
            let grad_mats: Vec<Matrix> = pv.iter().map(|&v| grads.get(v)).collect();
            adam.step(&mut self.params, &grad_mats);
        }
    }

    fn predict(&self, x: &Matrix) -> Matrix {
        assert!(!self.params.is_empty(), "predict before fit");
        let (steps, stat) = self.spec.split(x);
        let mut g = Graph::new();
        let (pred, _) = self.forward(&mut g, &steps, &stat);
        g.value(pred).clone()
    }

    fn name(&self) -> &str {
        match self.kind {
            RnnKind::Lstm => "Lstm",
            RnnKind::Gru => "GRU",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regressor::mse;
    use ams_tensor::init::standard_normal;

    /// Toy sequence task on a flat layout: 3 lags of one feature, label
    /// depends on the *trend* across lags (needs the recurrence).
    fn seq_problem(n: usize, seed: u64) -> (SequenceSpec, Matrix, Matrix) {
        let names: Vec<String> =
            ["bias", "v_dq3", "v_dq2", "v_dq1"].iter().map(|s| s.to_string()).collect();
        let spec = SequenceSpec::derive(&names, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 4);
        let mut y = Matrix::zeros(n, 1);
        for r in 0..n {
            x[(r, 0)] = 1.0;
            let a = standard_normal(&mut rng);
            let b = standard_normal(&mut rng);
            let c = standard_normal(&mut rng);
            x[(r, 1)] = a;
            x[(r, 2)] = b;
            x[(r, 3)] = c;
            y[(r, 0)] = (c - b) + 0.5 * (b - a); // weighted trend
        }
        (spec, x, y)
    }

    #[test]
    fn lstm_learns_trend() {
        let (spec, x, y) = seq_problem(200, 30);
        let mut m = Rnn::lstm(spec, RnnConfig { epochs: 400, hidden: 12, ..Default::default() });
        m.fit(&x, &y);
        let err = mse(&m.predict(&x), &y);
        assert!(err < 0.05, "lstm train mse {err}");
    }

    #[test]
    fn gru_learns_trend() {
        let (spec, x, y) = seq_problem(200, 31);
        let mut m = Rnn::gru(spec, RnnConfig { epochs: 400, hidden: 12, ..Default::default() });
        m.fit(&x, &y);
        let err = mse(&m.predict(&x), &y);
        assert!(err < 0.05, "gru train mse {err}");
    }

    #[test]
    fn generalizes_to_fresh_data() {
        let (spec, xtr, ytr) = seq_problem(300, 32);
        let (_, xte, yte) = seq_problem(100, 33);
        let mut m = Rnn::gru(spec, RnnConfig { epochs: 400, hidden: 12, ..Default::default() });
        m.fit(&xtr, &ytr);
        let err = mse(&m.predict(&xte), &yte);
        assert!(err < 0.1, "gru test mse {err}");
    }

    #[test]
    fn gate_counts() {
        let (spec, _, _) = seq_problem(10, 34);
        let mut lstm = Rnn::lstm(spec.clone(), RnnConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        lstm.build_params(&mut rng);
        assert_eq!(lstm.params.len(), 4 * 3 + 2);
        let mut gru = Rnn::gru(spec, RnnConfig::default());
        gru.build_params(&mut rng);
        assert_eq!(gru.params.len(), 3 * 3 + 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let (spec, x, y) = seq_problem(50, 35);
        let cfg = RnnConfig { epochs: 30, seed: 5, ..Default::default() };
        let mut a = Rnn::lstm(spec.clone(), cfg.clone());
        a.fit(&x, &y);
        let mut b = Rnn::lstm(spec, cfg);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x).as_slice(), b.predict(&x).as_slice());
    }

    #[test]
    fn names() {
        let (spec, _, _) = seq_problem(5, 36);
        assert_eq!(Rnn::lstm(spec.clone(), RnnConfig::default()).name(), "Lstm");
        assert_eq!(Rnn::gru(spec, RnnConfig::default()).name(), "GRU");
    }
}
