//! The *other* adaptive-model families the paper's related work (§V-B)
//! contrasts AMS against:
//!
//! * [`SemiLazy`] — the semi-lazy learning approach (paper refs
//!   [33]–[35]): no global model; for each query point a local ridge
//!   regression is fitted on its k nearest training samples. This is
//!   "adaptive" without a master model — the paper argues it starves on
//!   sparse financial data because each local fit sees only a handful
//!   of points.
//! * [`OnlineRidge`] — a "passive adaptive model" (refs [29]–[31]):
//!   recursive least squares with exponential forgetting, updated only
//!   after each ground truth is revealed. It adapts *after* the fact,
//!   never per-company in advance — exactly the weakness §V-B points
//!   out.
//!
//! Both implement [`Regressor`] so the harness and the extension
//! benches can run them alongside the paper's lineup.

use ams_tensor::{ridge_solve, Matrix};

use crate::regressor::Regressor;

/// Semi-lazy local ridge regression.
pub struct SemiLazy {
    /// Number of nearest neighbours per query.
    pub k: usize,
    /// Ridge strength of each local fit.
    pub lambda: f64,
    train_x: Option<Matrix>,
    train_y: Option<Matrix>,
}

impl SemiLazy {
    /// New semi-lazy regressor.
    pub fn new(k: usize, lambda: f64) -> Self {
        assert!(k >= 1, "semi-lazy needs at least one neighbour");
        assert!(lambda >= 0.0);
        Self { k, lambda, train_x: None, train_y: None }
    }

    /// Indices of the `k` nearest training rows to `query` (Euclidean).
    fn neighbours(&self, query: &[f64]) -> Vec<usize> {
        let x = self.train_x.as_ref().expect("predict before fit");
        let mut scored: Vec<(f64, usize)> = (0..x.rows())
            .map(|r| {
                let d: f64 = x.row(r).iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, r)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances").then(a.1.cmp(&b.1)));
        scored.into_iter().take(self.k).map(|(_, r)| r).collect()
    }
}

impl Regressor for SemiLazy {
    fn fit(&mut self, x: &Matrix, y: &Matrix) {
        assert_eq!(x.rows(), y.rows(), "semi-lazy: label count mismatch");
        assert!(x.rows() >= 1, "semi-lazy: empty training set");
        self.train_x = Some(x.clone());
        self.train_y = Some(y.clone());
    }

    fn predict(&self, x: &Matrix) -> Matrix {
        let tx = self.train_x.as_ref().expect("predict before fit");
        let ty = self.train_y.as_ref().expect("predict before fit");
        let mut out = Matrix::zeros(x.rows(), 1);
        for r in 0..x.rows() {
            let ids = self.neighbours(x.row(r));
            let xs = tx.select_rows(&ids);
            let ys = ty.select_rows(&ids);
            // Local ridge; jitter once if the local design is degenerate.
            let beta = ridge_solve(&xs, &ys, self.lambda.max(1e-8))
                .or_else(|_| ridge_solve(&xs, &ys, self.lambda + 1.0))
                .expect("local ridge solve");
            out[(r, 0)] = x.row(r).iter().zip(beta.as_slice()).map(|(a, b)| a * b).sum();
        }
        out
    }

    fn name(&self) -> &str {
        "SemiLazy"
    }
}

/// Recursive least squares with exponential forgetting — the passive
/// online-adaptive linear model.
pub struct OnlineRidge {
    /// Forgetting factor ∈ (0, 1]; 1 = ordinary RLS.
    pub forgetting: f64,
    /// Initial inverse-covariance scale (large = weak prior).
    pub prior_scale: f64,
    /// Inverse covariance P (d×d).
    p: Option<Matrix>,
    /// Coefficients (d×1).
    beta: Option<Matrix>,
}

impl OnlineRidge {
    /// New RLS model.
    pub fn new(forgetting: f64, prior_scale: f64) -> Self {
        assert!(forgetting > 0.0 && forgetting <= 1.0, "forgetting factor outside (0,1]");
        assert!(prior_scale > 0.0);
        Self { forgetting, prior_scale, p: None, beta: None }
    }

    /// One online update with a revealed ground truth (the "passive"
    /// adaptation step).
    pub fn update(&mut self, x_row: &[f64], y: f64) {
        let d = x_row.len();
        if self.p.is_none() {
            self.p = Some(Matrix::eye(d).scale(self.prior_scale));
            self.beta = Some(Matrix::zeros(d, 1));
        }
        let p = self.p.as_mut().expect("initialized");
        let beta = self.beta.as_mut().expect("initialized");
        assert_eq!(p.rows(), d, "feature width changed between updates");
        // Standard RLS: k = P x / (λ + xᵀ P x); β += k (y − xᵀβ);
        // P = (P − k xᵀ P) / λ.
        let x = Matrix::col_vector(x_row);
        let px = p.matmul(&x); // d×1
        let denom = self.forgetting + x.flat_dot(&px);
        let k = px.scale(1.0 / denom); // d×1
        let err = y - x.flat_dot(beta);
        beta.add_scaled_assign(&k, err);
        let xtp = x.t().matmul(p); // 1×d
        let kxtp = k.matmul(&xtp); // d×d
        *p = p.sub(&kxtp).scale(1.0 / self.forgetting);
    }

    /// Current coefficients (None before any update).
    pub fn coefficients(&self) -> Option<&Matrix> {
        self.beta.as_ref()
    }
}

impl Regressor for OnlineRidge {
    /// "Fitting" replays the training set as an online stream in row
    /// order (for panel data the harness orders rows chronologically
    /// within each quarter batch).
    fn fit(&mut self, x: &Matrix, y: &Matrix) {
        assert_eq!(x.rows(), y.rows(), "online ridge: label count mismatch");
        self.p = None;
        self.beta = None;
        for r in 0..x.rows() {
            self.update(x.row(r), y[(r, 0)]);
        }
    }

    fn predict(&self, x: &Matrix) -> Matrix {
        let beta = self.beta.as_ref().expect("predict before fit");
        x.matmul(beta)
    }

    fn name(&self) -> &str {
        "OnlineRidge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regressor::mse;
    use crate::regressor::testutil::linear_problem;

    #[test]
    fn semilazy_interpolates_piecewise_structure() {
        // Two regimes split on feature 0's sign with opposite slopes —
        // a global linear model fails, local fits succeed.
        let n = 200;
        let mut x = Matrix::zeros(n, 2);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            let a = (i as f64 / n as f64) * 4.0 - 2.0;
            x[(i, 0)] = a;
            x[(i, 1)] = 1.0;
            y[(i, 0)] = if a > 0.0 { 2.0 * a } else { -2.0 * a };
        }
        let mut lazy = SemiLazy::new(15, 1e-6);
        lazy.fit(&x, &y);
        let lazy_err = mse(&lazy.predict(&x), &y);
        let mut ridge = crate::linear::RidgeRegression::new(1e-6);
        ridge.fit(&x, &y);
        let ridge_err = mse(&ridge.predict(&x), &y);
        assert!(lazy_err < 0.1 * ridge_err, "lazy {lazy_err} vs global {ridge_err}");
    }

    #[test]
    fn semilazy_matches_global_on_linear_data() {
        let (xtr, ytr, xte, yte) = linear_problem(300, 50, 3, 0.05, 90);
        let mut lazy = SemiLazy::new(60, 1e-4);
        lazy.fit(&xtr, &ytr);
        let err = mse(&lazy.predict(&xte), &yte);
        assert!(err < 0.1, "semi-lazy linear test mse {err}");
    }

    #[test]
    fn semilazy_deterministic_tie_break() {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 1.0], &[5.0, 1.0]]);
        let y = Matrix::col_vector(&[1.0, 1.0, 2.0]);
        let mut lazy = SemiLazy::new(2, 1e-3);
        lazy.fit(&x, &y);
        let p1 = lazy.predict(&x);
        let p2 = lazy.predict(&x);
        assert_eq!(p1.as_slice(), p2.as_slice());
    }

    #[test]
    fn online_ridge_converges_to_true_weights() {
        let (xtr, ytr, xte, yte) = linear_problem(400, 50, 4, 0.05, 91);
        let mut rls = OnlineRidge::new(1.0, 1e3);
        rls.fit(&xtr, &ytr);
        let err = mse(&rls.predict(&xte), &yte);
        assert!(err < 0.05, "rls test mse {err}");
    }

    #[test]
    fn forgetting_tracks_drifting_weights() {
        // Weight flips sign halfway; forgetting RLS tracks, plain RLS
        // averages and is worse at the end.
        let n = 400;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Matrix::zeros(n, 1);
        let mut s = 77u64;
        let mut unif = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            let v = unif();
            let w = if i < n / 2 { 1.0 } else { -1.0 };
            x[(i, 0)] = v;
            y[(i, 0)] = w * v + 0.01 * unif();
        }
        let mut forgetful = OnlineRidge::new(0.95, 1e3);
        forgetful.fit(&x, &y);
        let mut plain = OnlineRidge::new(1.0, 1e3);
        plain.fit(&x, &y);
        let wf = forgetful.coefficients().unwrap()[(0, 0)];
        let wp = plain.coefficients().unwrap()[(0, 0)];
        assert!(wf < -0.8, "forgetting RLS should track the flip, got {wf}");
        assert!(wp > wf + 0.3, "plain RLS should lag, got {wp} vs {wf}");
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        OnlineRidge::new(1.0, 100.0).predict(&Matrix::ones(1, 2));
    }
}
