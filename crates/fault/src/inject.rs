//! Fault-*injection* machinery: seeded plans, named sites, and the
//! corruption injectors. Everything in this module is behind the
//! `inject` cargo feature (on by default) so that consumers that only
//! need the [`crate::framed`] detection layer — the feature store, or
//! any tool that reads checksummed files — can depend on
//! `ams-fault` with `default-features = false` and build none of it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Named injection points threaded through the stack. Each site has a
/// natural fault family (see [`FaultAction`]); a [`SeededFaults`] rule
/// is scoped to one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Request bytes on the wire (client → server).
    RequestBytes,
    /// A connection that dies mid-line.
    ConnectionTruncate,
    /// A connection that stalls (opens, then sends nothing).
    ConnectionStall,
    /// Feature values after request validation (simulated internal
    /// corruption: an upstream transform bug, a bad cache line).
    Features,
    /// Worker thread dispatch (simulated scheduling delay / hang).
    WorkerDelay,
    /// Registry publication (panic while holding the write lock).
    RegistryPublish,
    /// Model artifact bytes at rest.
    ArtifactBytes,
    /// A training process crash between epochs.
    CheckpointCrash,
}

/// All sites, for iteration and for the per-site counter index.
pub const ALL_SITES: [FaultSite; 8] = [
    FaultSite::RequestBytes,
    FaultSite::ConnectionTruncate,
    FaultSite::ConnectionStall,
    FaultSite::Features,
    FaultSite::WorkerDelay,
    FaultSite::RegistryPublish,
    FaultSite::ArtifactBytes,
    FaultSite::CheckpointCrash,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::RequestBytes => 0,
            FaultSite::ConnectionTruncate => 1,
            FaultSite::ConnectionStall => 2,
            FaultSite::Features => 3,
            FaultSite::WorkerDelay => 4,
            FaultSite::RegistryPublish => 5,
            FaultSite::ArtifactBytes => 6,
            FaultSite::CheckpointCrash => 7,
        }
    }

    /// Stable name used in diagnostics and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::RequestBytes => "request-bytes",
            FaultSite::ConnectionTruncate => "connection-truncate",
            FaultSite::ConnectionStall => "connection-stall",
            FaultSite::Features => "features",
            FaultSite::WorkerDelay => "worker-delay",
            FaultSite::RegistryPublish => "registry-publish",
            FaultSite::ArtifactBytes => "artifact-bytes",
            FaultSite::CheckpointCrash => "checkpoint-crash",
        }
    }
}

/// What to inject at a site. Parameters are drawn deterministically by
/// the plan; applying the action is the caller's (or an injector
/// helper's) job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// XOR-corrupt a fraction of a byte buffer ([`corrupt_bytes`]).
    CorruptBytes {
        /// Seed for the corruption pattern.
        xor_seed: u64,
        /// Fraction of bytes flipped, in `(0, 1]`.
        density: f64,
    },
    /// Close the connection mid-message.
    Truncate,
    /// Hold the connection open without sending anything.
    Stall {
        /// How long to stall.
        millis: u64,
    },
    /// Overwrite values with NaN/±inf ([`flip_non_finite`]).
    FlipNonFinite {
        /// How many entries to flip.
        flips: usize,
        /// Seed choosing positions and the NaN/+inf/−inf kind.
        kind_seed: u64,
    },
    /// Sleep before doing the work.
    Delay {
        /// How long to sleep.
        millis: u64,
    },
    /// Panic while holding the lock (poisons it for every other
    /// thread).
    PoisonLock,
    /// Flip one bit of a file ([`bit_flip_file`](crate::framed::bit_flip_file)).
    BitFlip {
        /// Which bit of the file to flip (mod file length).
        bit: u64,
    },
    /// Kill the process-equivalent: abandon the work mid-flight.
    Crash,
}

/// A fault-injection policy. Implementations must be deterministic:
/// the n-th `decide` call for a given site always returns the same
/// answer for the same plan state.
pub trait FaultPlan: Send + Sync + std::fmt::Debug {
    /// The action to inject at this occurrence of `site`, if any.
    fn decide(&self, site: FaultSite) -> Option<FaultAction>;
}

/// The production default: never injects anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultPlan for NoFaults {
    fn decide(&self, _site: FaultSite) -> Option<FaultAction> {
        None
    }
}

/// One site's injection rule inside a [`SeededFaults`] plan.
#[derive(Debug, Clone, Copy)]
struct Rule {
    site: FaultSite,
    /// Probability an occurrence fires, in `[0, 1]`.
    rate: f64,
    /// Maximum number of firings (`u64::MAX` = unlimited). A budget
    /// makes "fail the first K engine calls, then recover" scenarios
    /// deterministic — exactly what circuit-breaker tests need.
    budget: u64,
}

/// A deterministic fault plan: every decision is a pure function of
/// `(seed, site, occurrence number)`, so a chaos run replays
/// byte-identically from its seed. Thread-safe; the per-site
/// occurrence counters are the only mutable state.
#[derive(Debug)]
pub struct SeededFaults {
    seed: u64,
    rules: Vec<Rule>,
    /// Per-site occurrence counter (how many times `decide` was asked).
    asked: [AtomicU64; ALL_SITES.len()],
    /// Per-site firing counter (how many times an action was returned).
    fired: [AtomicU64; ALL_SITES.len()],
}

impl SeededFaults {
    /// A plan with no rules (fires nothing until rules are added).
    pub fn new(seed: u64) -> Self {
        Self { seed, rules: Vec::new(), asked: Default::default(), fired: Default::default() }
    }

    /// Add a rule: fire at `site` with probability `rate`, at most
    /// `budget` times. Builder-style.
    pub fn with_rule(mut self, site: FaultSite, rate: f64, budget: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate {rate} outside [0,1]");
        self.rules.push(Rule { site, rate, budget });
        self
    }

    /// How many times `site` actually fired so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// The action template for a site, with parameters drawn from `h`.
    fn action_for(site: FaultSite, h: u64) -> FaultAction {
        match site {
            FaultSite::RequestBytes => FaultAction::CorruptBytes {
                xor_seed: mix64(h ^ 0xC0DE),
                // 5%–40% of bytes flipped: enough to break JSON, not
                // enough to look like an empty line.
                density: 0.05 + 0.35 * unit(mix64(h ^ 0xD0)),
            },
            FaultSite::ConnectionTruncate => FaultAction::Truncate,
            FaultSite::ConnectionStall => {
                FaultAction::Stall { millis: 5 + mix64(h ^ 0x57A11) % 45 }
            }
            FaultSite::Features => FaultAction::FlipNonFinite {
                flips: 1 + (mix64(h ^ 0xF11F) % 3) as usize,
                kind_seed: mix64(h ^ 0xBEEF),
            },
            FaultSite::WorkerDelay => FaultAction::Delay { millis: 1 + mix64(h ^ 0xDE1A) % 20 },
            FaultSite::RegistryPublish => FaultAction::PoisonLock,
            FaultSite::ArtifactBytes => FaultAction::BitFlip { bit: mix64(h ^ 0xB17) },
            FaultSite::CheckpointCrash => FaultAction::Crash,
        }
    }
}

impl FaultPlan for SeededFaults {
    fn decide(&self, site: FaultSite) -> Option<FaultAction> {
        let rule = self.rules.iter().find(|r| r.site == site)?;
        let k = self.asked[site.index()].fetch_add(1, Ordering::Relaxed);
        let h = mix64(self.seed ^ mix64((site.index() as u64) << 32 | k));
        if unit(h) >= rule.rate {
            return None;
        }
        // Budget check *after* the roll so the firing sequence for a
        // given (seed, rate) is a stable prefix regardless of budget.
        let n = self.fired[site.index()].fetch_add(1, Ordering::Relaxed);
        if n >= rule.budget {
            self.fired[site.index()].fetch_sub(1, Ordering::Relaxed);
            return None;
        }
        Some(Self::action_for(site, mix64(h ^ 0xACE)))
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function. This is
/// the single primitive every deterministic decision in this crate is
/// built from.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a mixed word to a uniform float in `[0, 1)`.
#[must_use]
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A tiny deterministic stream over [`mix64`], for call sites that need
/// several draws (jittered backoff, corruption patterns) without
/// depending on the `rand` crate.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Stream seeded from a word.
    pub fn new(seed: u64) -> Self {
        Self { state: mix64(seed) }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Next uniform float in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        unit(self.next_u64())
    }

    /// Uniform integer in `[0, n)` (`n` must be nonzero).
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// XOR-corrupt ~`density` of `buf` deterministically from `xor_seed`.
/// Newline bytes are never produced or destroyed, so a corrupted
/// JSON-lines request is still exactly one (garbage) line — the wire
/// framing survives, the payload does not, which is the realistic
/// single-request corruption mode.
pub fn corrupt_bytes(buf: &mut [u8], xor_seed: u64, density: f64) {
    let mut rng = FaultRng::new(xor_seed);
    for b in buf.iter_mut() {
        if *b == b'\n' {
            continue;
        }
        if rng.next_unit() < density {
            let mut flipped = *b ^ (rng.next_u64() as u8 | 1);
            if flipped == b'\n' {
                flipped ^= 0x40;
            }
            *b = flipped;
        }
    }
}

/// Overwrite `flips` entries of `values` with NaN / +inf / −inf at
/// deterministic positions. No-op on an empty slice.
pub fn flip_non_finite(values: &mut [f64], flips: usize, kind_seed: u64) {
    if values.is_empty() {
        return;
    }
    let mut rng = FaultRng::new(kind_seed);
    for _ in 0..flips {
        let at = rng.next_below(values.len() as u64) as usize;
        values[at] = match rng.next_below(3) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
    }
}

/// Sleep helper for `Delay`/`Stall` actions.
pub fn apply_delay(millis: u64) {
    std::thread::sleep(Duration::from_millis(millis));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plan_is_deterministic() {
        let mk = || SeededFaults::new(42).with_rule(FaultSite::RequestBytes, 0.5, u64::MAX);
        let (a, b) = (mk(), mk());
        let sa: Vec<_> = (0..64).map(|_| a.decide(FaultSite::RequestBytes)).collect();
        let sb: Vec<_> = (0..64).map(|_| b.decide(FaultSite::RequestBytes)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(Option::is_some));
        assert!(sa.iter().any(Option::is_none));
        // A different seed produces a different firing pattern.
        let c = SeededFaults::new(43).with_rule(FaultSite::RequestBytes, 0.5, u64::MAX);
        let sc: Vec<_> = (0..64).map(|_| c.decide(FaultSite::RequestBytes)).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn rules_are_site_scoped_and_budgeted() {
        let plan = SeededFaults::new(7).with_rule(FaultSite::Features, 1.0, 3);
        // Unruled sites never fire.
        assert_eq!(plan.decide(FaultSite::WorkerDelay), None);
        // Rate-1 rule fires exactly `budget` times, then goes quiet.
        let fired = (0..10).filter(|_| plan.decide(FaultSite::Features).is_some()).count();
        assert_eq!(fired, 3);
        assert_eq!(plan.fired(FaultSite::Features), 3);
    }

    #[test]
    fn rate_zero_and_rate_one() {
        let never = SeededFaults::new(1).with_rule(FaultSite::WorkerDelay, 0.0, u64::MAX);
        assert!((0..100).all(|_| never.decide(FaultSite::WorkerDelay).is_none()));
        let always = SeededFaults::new(1).with_rule(FaultSite::WorkerDelay, 1.0, u64::MAX);
        assert!((0..100).all(|_| always.decide(FaultSite::WorkerDelay).is_some()));
    }

    #[test]
    fn no_faults_is_silent() {
        for site in ALL_SITES {
            assert_eq!(NoFaults.decide(site), None);
        }
    }

    #[test]
    fn corrupt_bytes_is_deterministic_and_preserves_framing() {
        let original = br#"{"type":"predict","company":3,"features":[0.1,0.2]}"#.to_vec();
        let mut a = original.clone();
        let mut b = original.clone();
        corrupt_bytes(&mut a, 99, 0.3);
        corrupt_bytes(&mut b, 99, 0.3);
        assert_eq!(a, b);
        assert_ne!(a, original, "density 0.3 over 50 bytes must corrupt something");
        assert!(!a.contains(&b'\n'), "corruption must not invent newlines");
    }

    #[test]
    fn flip_non_finite_plants_non_finite_values() {
        let mut v = vec![1.0; 16];
        flip_non_finite(&mut v, 4, 5);
        let bad = v.iter().filter(|x| !x.is_finite()).count();
        assert!((1..=4).contains(&bad), "{bad} non-finite entries");
        let mut w = vec![1.0; 16];
        flip_non_finite(&mut w, 4, 5);
        assert_eq!(
            v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            w.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        flip_non_finite(&mut [], 4, 5); // empty slice: no panic
    }

    #[test]
    fn mix64_and_unit_are_stable() {
        // Pin a few values: these feed every seeded decision in the
        // repo, so silent changes would invalidate recorded chaos runs.
        assert_eq!(mix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix64(1), 0x910A_2DEC_8902_5CC1);
        let u = unit(mix64(7));
        assert!((0.0..1.0).contains(&u));
    }
}
