//! Checksummed, atomically-published single-file framing.
//!
//! Both training checkpoints and serving artifacts need the same two
//! guarantees from the filesystem:
//!
//! 1. **A reader never observes a torn write.** [`write_atomic`] writes
//!    to a temporary sibling, fsyncs it, and renames it over the target
//!    — the POSIX publish idiom. A crash mid-write leaves either the
//!    old file or a stray `.tmp`, never a half-written target.
//! 2. **At-rest corruption is detected, not served.** The first line is
//!    a header `MAGIC vN crc32=XXXXXXXX len=M`; [`read_verified`]
//!    recomputes the CRC over the body and rejects on any mismatch,
//!    so a bit-flipped model or checkpoint fails loudly at load time
//!    instead of silently mis-scoring.
//!
//! The body is opaque to this module (in practice: one JSON document,
//! or — for the `ams-store` columnar format — a JSON skeleton followed
//! by binary column blocks that carry their own per-block CRCs).
//!
//! **The on-disk header layout is frozen.** The first line of every
//! framed file is exactly
//!
//! ```text
//! MAGIC v1 crc32=XXXXXXXX len=M\n
//! ```
//!
//! — four space-separated tokens: caller-chosen magic, literal format
//! version `v1`, lowercase-hex CRC-32 (IEEE 802.3, reflected) of the
//! `M` body bytes, and the body length in bytes. Files written by any
//! past version of this repo must keep verifying, so changes here may
//! only add *new* magics or bump [`FRAME_VERSION`] alongside a
//! migration path — never reinterpret these four tokens.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Framing format version, embedded in the header.
pub const FRAME_VERSION: u32 = 1;

/// Why a framed read failed. `Io` means the file could not be read at
/// all; every other variant means the file exists but must not be
/// trusted.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Missing or malformed header line.
    BadHeader(String),
    /// Header magic differs from what the caller expected.
    WrongMagic { expected: String, found: String },
    /// Body checksum does not match the header.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// Body length does not match the header (truncated file).
    LengthMismatch { expected: usize, actual: usize },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::BadHeader(h) => write!(f, "bad frame header: {h}"),
            FrameError::WrongMagic { expected, found } => {
                write!(f, "wrong magic: expected `{expected}`, found `{found}`")
            }
            FrameError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: header {expected:08x}, body {actual:08x}")
            }
            FrameError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: header says {expected} bytes, body has {actual}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected), computed bitwise — no table, no
/// dependency; fast enough for checkpoint/artifact-sized payloads.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Render the (frozen-layout) header line for a body: the caller's
/// magic, the format version, and the body's CRC-32 and length.
#[must_use]
pub fn header_line(magic: &str, body: &[u8]) -> String {
    debug_assert!(!magic.contains(' '), "magic must be a single token");
    format!("{magic} v{FRAME_VERSION} crc32={:08x} len={}\n", crc32(body), body.len())
}

/// Parse and verify a header line (without its trailing newline)
/// against an expected magic; returns the declared `(crc32, len)` of
/// the body. Shared by [`read_verified`] and the `ams-store` reader,
/// which verifies its skeleton through this and its blocks through
/// per-block CRCs.
pub fn parse_header(head: &str, magic: &str) -> Result<(u32, usize), FrameError> {
    let fields: Vec<&str> = head.split(' ').collect();
    if fields.len() != 4 {
        return Err(FrameError::BadHeader(head.to_string()));
    }
    if fields[0] != magic {
        return Err(FrameError::WrongMagic {
            expected: magic.to_string(),
            found: fields[0].to_string(),
        });
    }
    if fields[1] != format!("v{FRAME_VERSION}") {
        return Err(FrameError::BadHeader(head.to_string()));
    }
    let expected_crc = fields[2]
        .strip_prefix("crc32=")
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| FrameError::BadHeader(head.to_string()))?;
    let expected_len = fields[3]
        .strip_prefix("len=")
        .and_then(|n| n.parse::<usize>().ok())
        .ok_or_else(|| FrameError::BadHeader(head.to_string()))?;
    Ok((expected_crc, expected_len))
}

/// Atomically publish a file at `path`: a closure streams the content
/// into `path.tmp`, which is fsynced and renamed over the target. A
/// crash mid-write leaves either the old file or a stray `.tmp`, never
/// a half-written target. This is the publication idiom under
/// [`write_atomic`], exposed so callers with large or binary payloads
/// (the columnar store) can stream instead of buffering a `String`.
pub fn publish_atomic<F>(path: &Path, write_content: F) -> io::Result<()>
where
    F: FnOnce(&mut File) -> io::Result<()>,
{
    let tmp: PathBuf = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".tmp");
        PathBuf::from(name)
    };
    {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        write_content(&mut f)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Fsync the directory so the rename itself is durable; best-effort
    // (some filesystems reject directory handles).
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Atomically publish `body` at `path` under a checksummed header:
/// write `path.tmp`, fsync, rename over `path`. `magic` is a short
/// identifier (no spaces) naming the payload kind, e.g. `AMS-CKPT`.
pub fn write_atomic(path: &Path, magic: &str, body: &str) -> io::Result<()> {
    publish_atomic(path, |f| {
        f.write_all(header_line(magic, body.as_bytes()).as_bytes())?;
        f.write_all(body.as_bytes())
    })
}

/// Read a framed file, verify magic + length + checksum, return the
/// body. Any verification failure is an error — corrupt data is
/// rejected, never returned.
pub fn read_verified(path: &Path, magic: &str) -> Result<String, FrameError> {
    let raw = fs::read_to_string(path)?;
    let (head, body) =
        raw.split_once('\n').ok_or_else(|| FrameError::BadHeader("no header line".to_string()))?;
    let (expected_crc, expected_len) = parse_header(head, magic)?;
    if body.len() != expected_len {
        return Err(FrameError::LengthMismatch { expected: expected_len, actual: body.len() });
    }
    let actual = crc32(body.as_bytes());
    if actual != expected_crc {
        return Err(FrameError::ChecksumMismatch { expected: expected_crc, actual });
    }
    Ok(body.to_string())
}

/// Flip one bit of the file at `path` in place (bit index `bit` modulo
/// the file's length in bits). Returns the absolute bit index flipped.
/// Deliberately *not* atomic — this simulates at-rest corruption, the
/// exact failure [`read_verified`] (and the store's per-block CRCs)
/// must detect.
pub fn bit_flip_file(path: &Path, bit: u64) -> std::io::Result<u64> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty file"));
    }
    let at = bit % (bytes.len() as u64 * 8);
    bytes[(at / 8) as usize] ^= 1 << (at % 8);
    fs::write(path, bytes)?;
    Ok(at)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ams-framed-{tag}-{}", std::process::id()))
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn write_then_read_round_trips() {
        let path = temp_path("roundtrip");
        let body = r#"{"hello":"world","n":1.5}"#;
        write_atomic(&path, "AMS-TEST", body).unwrap();
        assert_eq!(read_verified(&path, "AMS-TEST").unwrap(), body);
        // No stray temp file remains.
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!Path::new(&tmp).exists());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let path = temp_path("bitflip");
        let body = "x".repeat(256);
        write_atomic(&path, "AMS-TEST", &body).unwrap();
        let clean = fs::read(&path).unwrap();
        // Flip a handful of deterministic positions across header and
        // body; every single one must be rejected.
        for bit in [3u64, 77, 400, 1000, 1600] {
            fs::write(&path, &clean).unwrap();
            crate::bit_flip_file(&path, bit).unwrap();
            assert!(
                read_verified(&path, "AMS-TEST").is_err(),
                "bit {bit} flipped but file still verified"
            );
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_and_wrong_magic_are_rejected() {
        let path = temp_path("trunc");
        write_atomic(&path, "AMS-TEST", "0123456789").unwrap();
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(matches!(read_verified(&path, "AMS-TEST"), Err(FrameError::LengthMismatch { .. })));
        fs::write(&path, &full).unwrap();
        assert!(matches!(read_verified(&path, "AMS-OTHER"), Err(FrameError::WrongMagic { .. })));
        fs::write(&path, "garbage with no header structure").unwrap();
        assert!(read_verified(&path, "AMS-TEST").is_err());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_file_round_trip() {
        let path = temp_path("bitflip-helper");
        fs::write(&path, b"hello world").unwrap();
        let at = bit_flip_file(&path, 1234567).unwrap();
        let after = fs::read(&path).unwrap();
        assert_ne!(after, b"hello world");
        // Flipping the same bit again restores the original.
        bit_flip_file(&path, at).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello world");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn header_line_and_parse_header_round_trip() {
        let body = b"binary\x00body";
        let line = header_line("AMS-STORE", body);
        let head = line.strip_suffix('\n').unwrap();
        let (crc, len) = parse_header(head, "AMS-STORE").unwrap();
        assert_eq!(crc, crc32(body));
        assert_eq!(len, body.len());
        assert!(matches!(parse_header(head, "AMS-CKPT"), Err(FrameError::WrongMagic { .. })));
        assert!(parse_header("AMS-STORE v1 crc32=zz len=3", "AMS-STORE").is_err());
        assert!(parse_header("AMS-STORE v9 crc32=00000000 len=3", "AMS-STORE").is_err());
    }

    #[test]
    fn publish_atomic_streams_and_leaves_no_tmp() {
        let path = temp_path("publish");
        publish_atomic(&path, |f| {
            f.write_all(b"part one, ")?;
            f.write_all(b"part two")
        })
        .unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"part one, part two");
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!Path::new(&tmp).exists());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn overwrite_is_atomic_publication() {
        let path = temp_path("swap");
        write_atomic(&path, "AMS-TEST", "version-one").unwrap();
        write_atomic(&path, "AMS-TEST", "version-two").unwrap();
        assert_eq!(read_verified(&path, "AMS-TEST").unwrap(), "version-two");
        fs::remove_file(&path).ok();
    }
}
