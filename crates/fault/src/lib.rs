//! # ams-fault — deterministic fault injection and resilience primitives
//!
//! The AMS stack's premise is that alternative data is noisy and the
//! serving environment is hostile: bytes get corrupted on the wire,
//! connections stall and die mid-request, features arrive as NaN,
//! workers hang, locks get poisoned by panicking threads, and files rot
//! on disk. This crate makes all of those failures *injectable on
//! purpose and reproducible from a single `u64` seed*, so every chaos
//! run is a regression test rather than a flake.
//!
//! Two halves, split by cargo feature:
//!
//! * [`framed`] (always available) — corruption *detection*: a
//!   checksummed single-file format (`MAGIC vN crc32=…` header + body)
//!   with atomic write-temp → fsync → rename publication, used by
//!   training checkpoints, serving artifacts, and the `ams-store`
//!   columnar feature store. Depend on `ams-fault` with
//!   `default-features = false` to get only this layer.
//! * the injection machinery (behind the default `inject` feature) —
//!   [`FaultPlan`] / [`SeededFaults`] / [`NoFaults`] decision hooks at
//!   named [`FaultSite`]s, plus the injector helpers
//!   ([`corrupt_bytes`], [`flip_non_finite`]) that apply a
//!   [`FaultAction`]. Every decision is a pure function of
//!   `(seed, site, occurrence counter)`, so two runs with the same
//!   seed inject byte-identical faults in the same order.
//!
//! Everything is `std`-only and dependency-free.

pub mod framed;

pub use framed::{bit_flip_file, crc32};

#[cfg(feature = "inject")]
mod inject;
#[cfg(feature = "inject")]
pub use inject::*;
