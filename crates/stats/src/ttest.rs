//! Student-t hypothesis tests.
//!
//! Tables I and II of the paper report pairwise t-tests: between AMS and
//! each baseline on BA (Table I), and between each model's SR series and
//! the constant 1 representing analysts' consensus (Table II). Both
//! reduce to a one-sample t-test on a difference series, implemented
//! here.

use crate::describe::{mean, std_dev};
use crate::distributions::t_two_sided_pvalue;

/// Outcome of a t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (n − 1).
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// One-sample t-test of the null hypothesis `mean(xs) == mu0`.
///
/// Returns `None` when fewer than two observations are available or the
/// sample is exactly constant at `mu0` (t undefined: 0/0).
pub fn ttest_1samp(xs: &[f64], mu0: f64) -> Option<TTestResult> {
    if xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let m = mean(xs);
    let s = std_dev(xs);
    if s == 0.0 {
        if m == mu0 {
            return None;
        }
        // Constant sample away from mu0: infinitely significant.
        return Some(TTestResult {
            t: f64::INFINITY * (m - mu0).signum(),
            df: n - 1.0,
            p_value: 0.0,
        });
    }
    let t = (m - mu0) / (s / n.sqrt());
    Some(TTestResult { t, df: n - 1.0, p_value: t_two_sided_pvalue(t, n - 1.0) })
}

/// Paired two-sample t-test: tests whether the mean of `a - b` differs
/// from zero. This is the "pairwise t-test" of §IV-D, pairing model
/// scores across cross-validation folds.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn paired_ttest(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    assert_eq!(a.len(), b.len(), "paired_ttest: length mismatch");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    ttest_1samp(&diffs, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_sample_known_value() {
        // xs = [5.1, 4.9, 5.6, 4.7, 5.2], H0: mu = 5.0
        // mean = 5.1, sd = 0.3391..., t = 0.6594..., df = 4.
        let xs = [5.1, 4.9, 5.6, 4.7, 5.2];
        let r = ttest_1samp(&xs, 5.0).unwrap();
        assert!((r.t - 0.659_380_473).abs() < 1e-6, "t = {}", r.t);
        assert_eq!(r.df, 4.0);
        assert!((r.p_value - 0.545_745).abs() < 1e-3, "p = {}", r.p_value);
    }

    #[test]
    fn one_sample_too_small() {
        assert!(ttest_1samp(&[1.0], 0.0).is_none());
        assert!(ttest_1samp(&[], 0.0).is_none());
    }

    #[test]
    fn one_sample_constant_at_mu0() {
        assert!(ttest_1samp(&[2.0, 2.0, 2.0], 2.0).is_none());
    }

    #[test]
    fn one_sample_constant_away_from_mu0() {
        let r = ttest_1samp(&[2.0, 2.0, 2.0], 1.0).unwrap();
        assert_eq!(r.p_value, 0.0);
        assert!(r.t.is_infinite() && r.t > 0.0);
    }

    #[test]
    fn paired_equal_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!(paired_ttest(&a, &a).is_none()); // all diffs zero
    }

    #[test]
    fn paired_shifted_samples_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b: Vec<f64> = a.iter().map(|x| x - 1.0).collect();
        let r = paired_ttest(&a, &b).unwrap();
        // Constant difference of 1 → infinitely significant.
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn paired_noisy_shift() {
        let a = [2.1, 3.2, 4.0, 5.1, 6.3, 6.9];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let r = paired_ttest(&a, &b).unwrap();
        assert!(r.t > 0.0);
        assert!(r.p_value < 0.01, "clear shift should be significant, p={}", r.p_value);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn paired_mismatch_panics() {
        paired_ttest(&[1.0], &[1.0, 2.0]);
    }
}
