//! Correlation coefficients.
//!
//! The company correlation graph of §III-C is built from the Pearson
//! correlation of historical revenue series between pairs of companies.
//! Spearman rank correlation is provided as a robustness alternative
//! (used by the graph-construction ablation bench).

use crate::describe::mean;

/// Pearson product-moment correlation of two equal-length series.
///
/// Returns 0.0 (uncorrelated) when either series is constant — a company
/// with flat recorded revenue carries no co-movement information, and
/// treating it as correlation 0 keeps it out of every top-k edge list,
/// which is the behaviour the graph builder wants.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    // Clamp to [-1, 1]: rounding can push |r| epsilon past 1.
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Spearman rank correlation: Pearson correlation of the rank vectors,
/// with ties assigned the average rank of the tied block.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman: length mismatch");
    pearson(&ranks(xs), &ranks(ys))
}

/// Fractional ranks (1-based, ties averaged).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank over the tie block [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_known_value() {
        // Computed by hand: r = 0.9819805060619659
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 5.0, 4.0, 5.0];
        assert!((pearson(&xs, &ys) - 0.7745966692414834).abs() < 1e-12);
    }

    #[test]
    fn pearson_symmetric() {
        let xs = [0.3, -1.2, 4.4, 2.0];
        let ys = [9.0, 3.0, 0.1, -2.0];
        assert_eq!(pearson(&xs, &ys), pearson(&ys, &xs));
    }

    #[test]
    fn pearson_short_series_is_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn spearman_monotone_is_one() {
        // Any strictly monotone relation has Spearman rho = 1.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 8.0, 27.0, 64.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_tie_averaging() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }
}
