//! Statistical substrate for the AMS reproduction.
//!
//! The paper relies on a handful of classical statistics: Pearson
//! correlation (to build the company correlation graph, §III-C), paired
//! t-tests (significance columns of Tables I and II), and routine
//! descriptive statistics used throughout feature engineering and the
//! backtest. None of these are allowed to come from external crates in
//! this reproduction, so they are implemented here from first principles
//! and tested against known values.
//!
//! Modules:
//! * [`describe`] — means, variances, quantiles, min–max scaling.
//! * [`correlation`] — Pearson and Spearman correlation.
//! * [`special`] — log-gamma, regularized incomplete beta, error function.
//! * [`distributions`] — normal and Student-t CDFs built on [`special`].
//! * [`ttest`] — one-sample and paired two-sample t-tests.

pub mod correlation;
pub mod describe;
pub mod distributions;
pub mod special;
pub mod ttest;

pub use correlation::{pearson, spearman};
pub use describe::{max, mean, min, minmax_scale, quantile, std_dev, variance};
pub use distributions::{normal_cdf, student_t_cdf};
pub use ttest::{paired_ttest, ttest_1samp, TTestResult};
