//! Descriptive statistics over `f64` slices.
//!
//! All functions treat the input as a complete population unless noted;
//! [`variance`] and [`std_dev`] use the unbiased (n−1) estimator because
//! every caller in this workspace works with samples (CV folds, analyst
//! panels, daily return series).

/// Arithmetic mean. Returns 0.0 for an empty slice so that callers
/// aggregating over possibly-empty CV folds do not need a special case.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (divides by n−1). Returns 0.0 when fewer
/// than two observations are available.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value; NaN-free inputs assumed. Returns +inf for empty input.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value; NaN-free inputs assumed. Returns −inf for empty input.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Linear-interpolation quantile (the "type 7" estimator used by NumPy's
/// default). `q` must lie in `[0, 1]`.
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Scale a slice to `[0, 1]` by min–max normalization, as the paper does
/// for the Figure 8 weight visualization ("we linearly scale the value
/// along with the feature to [0,1] in selected companies").
///
/// A constant slice maps to all zeros (rather than dividing by zero).
pub fn minmax_scale(xs: &[f64]) -> Vec<f64> {
    let lo = min(xs);
    let hi = max(xs);
    let range = hi - lo;
    if range == 0.0 || !range.is_finite() {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - lo) / range).collect()
}

/// Mean and standard deviation in one pass pair, convenient for
/// train-split standardization.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (mean(xs), std_dev(xs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn variance_unbiased() {
        // Known: sample variance of [2,4,4,4,5,5,7,9] with n-1 is 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        assert_eq!(variance(&[3.5]), 0.0);
    }

    #[test]
    fn std_dev_matches_variance() {
        let xs = [1.0, 2.0, 3.0];
        assert!((std_dev(&xs) - variance(&xs).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn min_max_basic() {
        let xs = [3.0, -1.0, 7.5, 0.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 7.5);
    }

    #[test]
    fn quantile_median_odd() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        // positions: 0->1, 1->2, 2->3, 3->4; q=0.25 → pos 0.75 → 1.75
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [5.0, 1.0, 9.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "quantile of empty slice")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn minmax_scale_unit_interval() {
        let scaled = minmax_scale(&[10.0, 20.0, 15.0]);
        assert_eq!(scaled, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn minmax_scale_constant_input() {
        assert_eq!(minmax_scale(&[4.0, 4.0, 4.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn mean_std_pair() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64).sqrt()).abs() < 1e-12);
    }
}
