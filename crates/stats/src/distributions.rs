//! Cumulative distribution functions for the standard normal and
//! Student-t distributions, built on [`crate::special`].

use crate::special::{betainc, erf};

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Student-t CDF with `df` degrees of freedom, via the regularized
/// incomplete beta function:
/// `P(T ≤ t) = 1 − ½ I_{df/(df+t²)}(df/2, ½)` for `t ≥ 0`, and the
/// symmetric counterpart for `t < 0`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf requires positive degrees of freedom");
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let tail = 0.5 * betainc(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Two-sided p-value for a t statistic: `P(|T| ≥ |t|)`.
pub fn t_two_sided_pvalue(t: f64, df: f64) -> f64 {
    2.0 * (1.0 - student_t_cdf(t.abs(), df))
}

/// One-sided p-value `P(T ≥ t)` (upper tail).
pub fn t_upper_pvalue(t: f64, df: f64) -> f64 {
    1.0 - student_t_cdf(t, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_center_and_tails() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-4);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn t_cdf_is_symmetric() {
        for &df in &[1.0, 5.0, 30.0] {
            for &t in &[0.5, 1.3, 2.7] {
                let up = student_t_cdf(t, df);
                let dn = student_t_cdf(-t, df);
                assert!((up + dn - 1.0).abs() < 1e-12, "asymmetric at t={t}, df={df}");
            }
        }
    }

    #[test]
    fn t_cdf_cauchy_case() {
        // df=1 is the Cauchy distribution: CDF(t) = 1/2 + atan(t)/pi.
        for &t in &[-2.0f64, -0.5, 0.0, 0.5, 2.0] {
            let expected = 0.5 + t.atan() / std::f64::consts::PI;
            assert!((student_t_cdf(t, 1.0) - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn t_cdf_approaches_normal_for_large_df() {
        for &t in &[-1.5, 0.3, 2.0] {
            let diff = (student_t_cdf(t, 1e6) - normal_cdf(t)).abs();
            assert!(diff < 1e-4, "t-CDF with huge df should match normal at {t}");
        }
    }

    #[test]
    fn t_cdf_known_critical_value() {
        // For df=10, P(T <= 2.228) ≈ 0.975 (classic t-table value).
        assert!((student_t_cdf(2.228, 10.0) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn two_sided_pvalue() {
        // |t|=2.228, df=10 → p ≈ 0.05.
        assert!((t_two_sided_pvalue(2.228, 10.0) - 0.05).abs() < 2e-3);
        assert!((t_two_sided_pvalue(-2.228, 10.0) - 0.05).abs() < 2e-3);
    }

    #[test]
    fn upper_pvalue_monotone_in_t() {
        let p1 = t_upper_pvalue(1.0, 8.0);
        let p2 = t_upper_pvalue(2.0, 8.0);
        assert!(p2 < p1);
    }
}
