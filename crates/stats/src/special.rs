//! Special functions needed by the distribution CDFs.
//!
//! Implemented from the classical numerical recipes: Lanczos
//! approximation for log-gamma, a continued-fraction evaluation of the
//! regularized incomplete beta function, and the Abramowitz–Stegun
//! rational approximation of the error function. Accuracy targets are
//! ~1e-10 for `ln_gamma`/`betainc` and ~1e-7 for `erf`, which is ample
//! for computing p-values reported to four decimal places.

/// Natural log of the gamma function, Lanczos approximation (g = 7,
/// n = 9 coefficients). Valid for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    // Lanczos coefficients for g=7, quoted at published precision.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps precision for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Uses the continued-fraction expansion (Lentz's method) with the
/// standard symmetry transformation so the fraction always converges
/// quickly.
pub fn betainc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betainc requires positive shape parameters");
    assert!((0.0..=1.0).contains(&x), "betainc requires x in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (Lentz's algorithm).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function, Abramowitz & Stegun formula 7.1.26 (max abs error
/// 1.5e-7), extended to negative arguments by odd symmetry.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers() {
        // Gamma(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(10.0) - 362_880.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Gamma(x+1) = x * Gamma(x)
        for &x in &[0.3, 1.7, 4.2, 9.9] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "recurrence failed at {x}");
        }
    }

    #[test]
    fn betainc_endpoints() {
        assert_eq!(betainc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betainc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betainc_uniform_case() {
        // I_x(1,1) = x
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert!((betainc(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn betainc_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let (a, b, x) = (2.5, 4.0, 0.3);
        assert!((betainc(a, b, x) - (1.0 - betainc(b, a, 1.0 - x))).abs() < 1e-12);
    }

    #[test]
    fn betainc_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.5}(3, 1) = 0.125 (x^3).
        assert!((betainc(2.0, 2.0, 0.5) - 0.5).abs() < 1e-12);
        assert!((betainc(3.0, 1.0, 0.5) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-6);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
