//! The paper's long/short strategy and backtest metrics (§IV-F).
//!
//! At the end of each test fiscal quarter the strategy inspects the
//! model's predicted unexpected revenue: positive ⇒ the market
//! underestimates revenue ⇒ buy and sell a month later; negative ⇒
//! short sell and buy back a month later. Capital is split across
//! companies in the ratio 1:2:3 by market-cap tier (boundaries 1 B and
//! 10 B).
//!
//! Reported metrics: total Earning, Max Drawdown (MDD), the
//! Sharpe-ratio of a baseline's daily returns *relative to AMS*
//! (`AVG(R_B − R_AMS)/STD(R_B − R_AMS)`), and the Average Excess Return
//! (AER) over quarter ends.

use ams_data::Panel;
use ams_stats::{mean, std_dev};

use crate::market::MarketSim;

/// Per-window trading signals: `signals[w][c]` is the model's predicted
/// unexpected revenue for company `c` at the window's quarter. Sign
/// decides direction; zero means no position.
pub type Signals = Vec<Vec<f64>>;

/// Outcome of one strategy backtest.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BacktestResult {
    /// Model name.
    pub model: String,
    /// Daily asset series; element 0 is the initial capital.
    pub asset_curve: Vec<f64>,
    /// Indices into `asset_curve` marking each quarter window's end.
    pub quarter_ends: Vec<usize>,
    /// Total earning over the period, percent.
    pub earning_pct: f64,
    /// Max drawdown per the paper's definition, as percent of initial
    /// capital.
    pub mdd_pct: f64,
}

/// Strategy variations beyond the paper's base long/short rule —
/// useful for robustness studies and closer to how a desk would deploy
/// the signal.
#[derive(Debug, Clone)]
pub struct StrategyConfig {
    /// Starting capital.
    pub initial_capital: f64,
    /// Ignore signals whose predicted surprise is below this fraction
    /// of the company's consensus (0 = trade everything, the paper's
    /// rule).
    pub min_rel_signal: f64,
    /// Suppress short positions (long-only portfolios are common where
    /// borrowing is constrained).
    pub long_only: bool,
    /// One-way transaction cost in basis points of traded notional,
    /// charged at entry and exit.
    pub cost_bps: f64,
}

impl Default for StrategyConfig {
    fn default() -> Self {
        Self { initial_capital: 100.0, min_rel_signal: 0.0, long_only: false, cost_bps: 0.0 }
    }
}

/// Run the strategy for one model's signals over a simulated market
/// with the paper's base rule (every signal traded, long/short, no
/// costs).
///
/// # Panics
/// Panics if the signal dimensions disagree with the simulation.
pub fn run_strategy(
    panel: &Panel,
    sim: &MarketSim,
    signals: &Signals,
    model: &str,
    initial_capital: f64,
) -> BacktestResult {
    run_strategy_with(
        panel,
        sim,
        signals,
        model,
        &StrategyConfig { initial_capital, ..Default::default() },
    )
}

/// [`run_strategy`] with explicit [`StrategyConfig`].
pub fn run_strategy_with(
    panel: &Panel,
    sim: &MarketSim,
    signals: &Signals,
    model: &str,
    config: &StrategyConfig,
) -> BacktestResult {
    let initial_capital = config.initial_capital;
    assert_eq!(signals.len(), sim.num_windows(), "signal windows != simulated windows");
    let n = panel.num_companies();
    let mut curve = vec![initial_capital];
    let mut quarter_ends = Vec::with_capacity(signals.len());
    let mut capital = initial_capital;

    for (w, sig) in signals.iter().enumerate() {
        assert_eq!(sig.len(), n, "signal count != companies");
        let tq = sim.quarters()[w];
        // Which companies are actually traded under the configured rule.
        let tradable = |c: usize| -> bool {
            let s = sig[c];
            if s == 0.0 {
                return false;
            }
            if config.long_only && s < 0.0 {
                return false;
            }
            if config.min_rel_signal > 0.0 {
                let consensus = panel.get(c, tq).consensus.abs().max(1e-12);
                if s.abs() / consensus < config.min_rel_signal {
                    return false;
                }
            }
            true
        };
        // Allocation: 1:2:3 by cap tier over traded companies.
        let weights: Vec<f64> = (0..n)
            .map(|c| if tradable(c) { panel.companies[c].cap_tier().capital_weight() } else { 0.0 })
            .collect();
        let total_w: f64 = weights.iter().sum();
        if total_w == 0.0 {
            // No positions: capital sits in cash for the window.
            for _ in 0..sim.days_per_window() {
                curve.push(capital);
            }
            quarter_ends.push(curve.len() - 1);
            continue;
        }
        // Entry costs reduce the deployable capital.
        let entry_cost = capital * config.cost_bps / 10_000.0;
        let deployable = capital - entry_cost;
        let alloc: Vec<f64> = weights.iter().map(|w_i| deployable * w_i / total_w).collect();
        // Track each position's cumulative price factor.
        let mut factors = vec![1.0; n];
        for d in 0..sim.days_per_window() {
            let mut assets = 0.0;
            for c in 0..n {
                if weights[c] == 0.0 {
                    continue;
                }
                factors[c] *= 1.0 + sim.window_returns(w, c)[d];
                let value = if sig[c] > 0.0 {
                    alloc[c] * factors[c] // long
                } else {
                    alloc[c] * (2.0 - factors[c]) // short: profit = 1 − factor
                };
                assets += value;
            }
            curve.push(assets);
        }
        capital = *curve.last().expect("nonempty curve");
        // Exit costs on the closing notional.
        if config.cost_bps > 0.0 {
            let exit_cost = capital * config.cost_bps / 10_000.0;
            capital -= exit_cost;
            *curve.last_mut().expect("nonempty curve") = capital;
        }
        quarter_ends.push(curve.len() - 1);
    }

    let earning_pct = (capital / initial_capital - 1.0) * 100.0;
    let mdd_pct = max_drawdown(&curve) / initial_capital * 100.0;
    BacktestResult { model: model.into(), asset_curve: curve, quarter_ends, earning_pct, mdd_pct }
}

/// Max drawdown per the paper's definition:
/// `max_l max_{t<l} (S_t − S_l)` — the largest peak-to-later-trough
/// asset drop, in asset units.
pub fn max_drawdown(curve: &[f64]) -> f64 {
    let mut peak = f64::NEG_INFINITY;
    let mut mdd = 0.0f64;
    for &s in curve {
        peak = peak.max(s);
        mdd = mdd.max(peak - s);
    }
    mdd
}

/// Daily simple returns of an asset curve.
pub fn daily_returns(curve: &[f64]) -> Vec<f64> {
    curve.windows(2).map(|w| w[1] / w[0] - 1.0).collect()
}

/// The paper's relative Sharpe ratio:
/// `AVG(R_B − R_AMS) / STD(R_B − R_AMS)` over daily returns. Negative
/// means the baseline earns no excess return over AMS. Returns `None`
/// when the difference series is constant (STD = 0).
pub fn sharpe_vs(baseline: &BacktestResult, ams: &BacktestResult) -> Option<f64> {
    let rb = daily_returns(&baseline.asset_curve);
    let ra = daily_returns(&ams.asset_curve);
    assert_eq!(rb.len(), ra.len(), "sharpe_vs: curve length mismatch");
    let diff: Vec<f64> = rb.iter().zip(&ra).map(|(b, a)| b - a).collect();
    let sd = std_dev(&diff);
    if sd == 0.0 {
        None
    } else {
        Some(mean(&diff) / sd)
    }
}

/// Average Excess Return (§IV-F): the baseline's earning minus AMS's at
/// every quarter end, averaged, in percentage points.
pub fn aer_vs(baseline: &BacktestResult, ams: &BacktestResult) -> f64 {
    assert_eq!(
        baseline.quarter_ends.len(),
        ams.quarter_ends.len(),
        "aer_vs: quarter count mismatch"
    );
    let init_b = baseline.asset_curve[0];
    let init_a = ams.asset_curve[0];
    let ers: Vec<f64> = baseline
        .quarter_ends
        .iter()
        .zip(&ams.quarter_ends)
        .map(|(&qb, &qa)| {
            let eb = (baseline.asset_curve[qb] / init_b - 1.0) * 100.0;
            let ea = (ams.asset_curve[qa] / init_a - 1.0) * 100.0;
            eb - ea
        })
        .collect();
    mean(&ers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketConfig;
    use ams_data::{generate, SynthConfig};

    fn setup() -> (Panel, MarketSim) {
        let p = generate(&SynthConfig::tiny(310)).panel;
        let sim = MarketSim::simulate(&p, &[6, 7, 8], MarketConfig::default());
        (p, sim)
    }

    /// Oracle signals: the actual unexpected revenue (perfect foresight).
    fn oracle_signals(p: &Panel, sim: &MarketSim) -> Signals {
        sim.quarters()
            .iter()
            .map(|&tq| (0..p.num_companies()).map(|c| p.get(c, tq).unexpected_revenue()).collect())
            .collect()
    }

    /// Anti-oracle: always on the wrong side.
    fn anti_signals(p: &Panel, sim: &MarketSim) -> Signals {
        oracle_signals(p, sim).into_iter().map(|v| v.into_iter().map(|x| -x).collect()).collect()
    }

    #[test]
    fn curve_shape_and_quarter_marks() {
        let (p, sim) = setup();
        let r = run_strategy(&p, &sim, &oracle_signals(&p, &sim), "oracle", 100.0);
        assert_eq!(r.asset_curve.len(), 1 + 3 * 21);
        assert_eq!(r.quarter_ends, vec![21, 42, 63]);
        assert_eq!(r.asset_curve[0], 100.0);
    }

    #[test]
    fn oracle_beats_anti_oracle() {
        let (p, sim) = setup();
        let good = run_strategy(&p, &sim, &oracle_signals(&p, &sim), "oracle", 100.0);
        let bad = run_strategy(&p, &sim, &anti_signals(&p, &sim), "anti", 100.0);
        assert!(
            good.earning_pct > bad.earning_pct + 1.0,
            "oracle {} should beat anti-oracle {}",
            good.earning_pct,
            bad.earning_pct
        );
        assert!(good.earning_pct > 0.0, "oracle earning {}", good.earning_pct);
    }

    #[test]
    fn no_signals_means_flat_curve() {
        let (p, sim) = setup();
        let zero: Signals = (0..3).map(|_| vec![0.0; p.num_companies()]).collect();
        let r = run_strategy(&p, &sim, &zero, "cash", 100.0);
        assert!(r.asset_curve.iter().all(|&s| s == 100.0));
        assert_eq!(r.earning_pct, 0.0);
        assert_eq!(r.mdd_pct, 0.0);
    }

    #[test]
    fn max_drawdown_cases() {
        assert_eq!(max_drawdown(&[100.0, 110.0, 105.0, 120.0, 90.0, 95.0]), 30.0);
        assert_eq!(max_drawdown(&[100.0, 101.0, 102.0]), 0.0);
        assert_eq!(max_drawdown(&[100.0]), 0.0);
    }

    #[test]
    fn sharpe_vs_self_is_none() {
        let (p, sim) = setup();
        let r = run_strategy(&p, &sim, &oracle_signals(&p, &sim), "oracle", 100.0);
        assert!(sharpe_vs(&r, &r).is_none());
    }

    #[test]
    fn worse_model_has_negative_sharpe_vs_oracle() {
        let (p, sim) = setup();
        let good = run_strategy(&p, &sim, &oracle_signals(&p, &sim), "oracle", 100.0);
        let bad = run_strategy(&p, &sim, &anti_signals(&p, &sim), "anti", 100.0);
        let s = sharpe_vs(&bad, &good).expect("non-degenerate diff");
        assert!(s < 0.0, "anti-oracle sharpe vs oracle should be negative, got {s}");
        let aer = aer_vs(&bad, &good);
        assert!(aer < 0.0, "anti-oracle AER {aer}");
    }

    #[test]
    fn cap_tiers_shift_allocation() {
        // A universe where one large-cap stock moves: tier weighting
        // must make its move matter 3× a small-cap's.
        let (p, sim) = setup();
        // Find a large-cap and small-cap company if present; otherwise
        // the test trivially passes on weights.
        let large = p.companies.iter().position(|c| c.market_cap > 10.0);
        let small = p.companies.iter().position(|c| c.market_cap < 1.0);
        if let (Some(l), Some(s)) = (large, small) {
            let w_l = p.companies[l].cap_tier().capital_weight();
            let w_s = p.companies[s].cap_tier().capital_weight();
            assert_eq!(w_l, 3.0);
            assert_eq!(w_s, 1.0);
        }
        let _ = sim;
    }

    #[test]
    fn long_only_never_shorts() {
        let (p, sim) = setup();
        // All-negative signals + long_only ⇒ nothing traded ⇒ flat.
        let neg: Signals = (0..3).map(|_| vec![-1.0; p.num_companies()]).collect();
        let cfg = StrategyConfig { long_only: true, ..Default::default() };
        let r = run_strategy_with(&p, &sim, &neg, "long-only", &cfg);
        assert!(r.asset_curve.iter().all(|&v| v == 100.0));
    }

    #[test]
    fn threshold_filters_small_signals() {
        let (p, sim) = setup();
        // Tiny signals relative to consensus get filtered entirely.
        let tiny: Signals = (0..3).map(|_| vec![1e-9; p.num_companies()]).collect();
        let cfg = StrategyConfig { min_rel_signal: 0.01, ..Default::default() };
        let r = run_strategy_with(&p, &sim, &tiny, "filtered", &cfg);
        assert_eq!(r.earning_pct, 0.0);
        // The same signals unfiltered do trade.
        let r2 = run_strategy(&p, &sim, &tiny, "unfiltered", 100.0);
        assert!(r2.asset_curve.iter().any(|&v| v != 100.0));
    }

    #[test]
    fn costs_strictly_reduce_earnings() {
        let (p, sim) = setup();
        let sigs = oracle_signals(&p, &sim);
        let free = run_strategy(&p, &sim, &sigs, "free", 100.0);
        let costly = run_strategy_with(
            &p,
            &sim,
            &sigs,
            "costly",
            &StrategyConfig { cost_bps: 25.0, ..Default::default() },
        );
        assert!(costly.earning_pct < free.earning_pct);
        // Six one-way charges (3 windows × 2 sides) of 25 bps ≈ 1.5%.
        let gap = free.earning_pct - costly.earning_pct;
        assert!(gap > 0.5 && gap < 3.0, "cost drag {gap}");
    }

    #[test]
    fn daily_returns_roundtrip() {
        let curve = [100.0, 110.0, 99.0];
        let r = daily_returns(&curve);
        assert!((r[0] - 0.1).abs() < 1e-12);
        assert!((r[1] + 0.1).abs() < 1e-12);
    }
}
