//! # ams-backtest — market simulator and the §IV-F trading backtest
//!
//! Reproduces the paper's application study: a market simulator with
//! surprise-driven abnormal returns ([`market`]) and the long/short
//! strategy with Earning / MDD / relative Sharpe / AER metrics
//! ([`strategy`]). Price paths are generated from the panel and a seed
//! only — identical for every model — so strategy comparisons (Tables
//! IV/V, Figures 6/7) are apples-to-apples.

pub mod market;
pub mod strategy;

pub use market::{MarketConfig, MarketSim};
pub use strategy::{
    aer_vs, daily_returns, max_drawdown, run_strategy, run_strategy_with, sharpe_vs,
    BacktestResult, Signals, StrategyConfig,
};
