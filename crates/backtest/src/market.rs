//! Daily price simulator for the backtest (§IV-F).
//!
//! The strategy only ever holds positions during the one-month window
//! after each fiscal quarter end ("buy at end of the company's fiscal
//! quarter and sell a month later"), so the simulator generates daily
//! returns exactly for those windows. Prices embed the documented
//! empirical phenomenon the strategy exploits (paper refs [2]–[6]):
//! revenue surprises produce abnormal returns — partly leaked before
//! the announcement, a jump on the announcement day, and a
//! post-announcement drift — proportional to the relative surprise
//! `UR / E(R)`, on top of market and idiosyncratic noise.
//!
//! Crucially the simulation depends only on the panel and the seed,
//! never on any model's predictions, so every strategy is evaluated on
//! identical price paths.

use ams_data::Panel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Market simulation parameters.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Trading days in the post-quarter holding window (≈ one month).
    pub days_per_window: usize,
    /// Day within the window on which revenue is announced.
    pub announce_day: usize,
    /// Cumulative abnormal return per unit of relative surprise.
    pub surprise_sensitivity: f64,
    /// Cap on the absolute cumulative abnormal return from one surprise.
    pub max_abnormal: f64,
    /// Daily idiosyncratic volatility.
    pub idio_vol: f64,
    /// Daily market-factor volatility (shared across stocks).
    pub market_vol: f64,
    /// Price-path seed.
    pub seed: u64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        Self {
            days_per_window: 21,
            announce_day: 10,
            surprise_sensitivity: 0.8,
            max_abnormal: 0.08,
            idio_vol: 0.020,
            market_vol: 0.008,
            seed: 0,
        }
    }
}

/// Simulated daily simple returns for every company over every
/// requested holding window.
#[derive(Debug, Clone)]
pub struct MarketSim {
    config: MarketConfig,
    /// Panel quarter indices the windows correspond to.
    quarters: Vec<usize>,
    /// `returns[w][c][d]`: simple return of company `c` on day `d` of
    /// window `w`.
    returns: Vec<Vec<Vec<f64>>>,
}

impl MarketSim {
    /// Simulate holding windows after each of `test_quarters`.
    pub fn simulate(panel: &Panel, test_quarters: &[usize], config: MarketConfig) -> Self {
        assert!(config.announce_day < config.days_per_window, "announcement outside window");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = panel.num_companies();
        let mut returns = Vec::with_capacity(test_quarters.len());
        for &tq in test_quarters {
            // Market factor path shared by all stocks in this window.
            let market: Vec<f64> =
                (0..config.days_per_window).map(|_| config.market_vol * normal(&mut rng)).collect();
            let mut window = Vec::with_capacity(n);
            for c in 0..n {
                let o = panel.get(c, tq);
                let rel_surprise =
                    if o.consensus != 0.0 { (o.revenue - o.consensus) / o.consensus } else { 0.0 };
                let car = (config.surprise_sensitivity * rel_surprise)
                    .clamp(-config.max_abnormal, config.max_abnormal);
                // 30% leaks pre-announcement, 50% jumps on the day, 20%
                // drifts afterwards (post-earnings-announcement drift).
                let pre_days = config.announce_day;
                let post_days = config.days_per_window - config.announce_day - 1;
                let daily: Vec<f64> = (0..config.days_per_window)
                    .map(|d| {
                        let abnormal = if d < config.announce_day {
                            if pre_days > 0 {
                                0.3 * car / pre_days as f64
                            } else {
                                0.0
                            }
                        } else if d == config.announce_day {
                            0.5 * car
                        } else if post_days > 0 {
                            0.2 * car / post_days as f64
                        } else {
                            0.0
                        };
                        abnormal + market[d] + config.idio_vol * normal(&mut rng)
                    })
                    .collect();
                window.push(daily);
            }
            returns.push(window);
        }
        Self { config, quarters: test_quarters.to_vec(), returns }
    }

    /// Panel quarter indices of the simulated windows.
    pub fn quarters(&self) -> &[usize] {
        &self.quarters
    }

    /// Number of windows.
    pub fn num_windows(&self) -> usize {
        self.returns.len()
    }

    /// Days per window.
    pub fn days_per_window(&self) -> usize {
        self.config.days_per_window
    }

    /// Daily simple returns of company `c` in window `w`.
    pub fn window_returns(&self, w: usize, c: usize) -> &[f64] {
        &self.returns[w][c]
    }

    /// Cumulative (buy-and-hold) return of company `c` over window `w`.
    pub fn window_total_return(&self, w: usize, c: usize) -> f64 {
        self.returns[w][c].iter().fold(1.0, |acc, r| acc * (1.0 + r)) - 1.0
    }
}

fn normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::{generate, SynthConfig};

    fn panel() -> Panel {
        generate(&SynthConfig::tiny(300)).panel
    }

    #[test]
    fn shapes_and_determinism() {
        let p = panel();
        let cfg = MarketConfig::default();
        let a = MarketSim::simulate(&p, &[6, 7], cfg.clone());
        let b = MarketSim::simulate(&p, &[6, 7], cfg);
        assert_eq!(a.num_windows(), 2);
        assert_eq!(a.window_returns(0, 3).len(), 21);
        assert_eq!(a.window_returns(1, 5), b.window_returns(1, 5));
    }

    #[test]
    fn positive_surprises_earn_more_on_average() {
        let p = panel();
        let sim = MarketSim::simulate(
            &p,
            &[5, 6, 7, 8, 9],
            MarketConfig { idio_vol: 0.004, market_vol: 0.0, ..Default::default() },
        );
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (w, &tq) in sim.quarters().iter().enumerate() {
            for c in 0..p.num_companies() {
                let o = p.get(c, tq);
                let total = sim.window_total_return(w, c);
                if o.revenue > o.consensus {
                    pos.push(total);
                } else {
                    neg.push(total);
                }
            }
        }
        let mp = ams_stats::mean(&pos);
        let mn = ams_stats::mean(&neg);
        assert!(mp > mn + 0.01, "positive-surprise stocks should outperform: {mp} vs {mn}");
    }

    #[test]
    fn zero_sensitivity_removes_the_edge() {
        let p = panel();
        let sim = MarketSim::simulate(
            &p,
            &[5, 6, 7, 8, 9],
            MarketConfig {
                surprise_sensitivity: 0.0,
                idio_vol: 0.004,
                market_vol: 0.0,
                ..Default::default()
            },
        );
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (w, &tq) in sim.quarters().iter().enumerate() {
            for c in 0..p.num_companies() {
                let o = p.get(c, tq);
                let total = sim.window_total_return(w, c);
                if o.revenue > o.consensus {
                    pos.push(total);
                } else {
                    neg.push(total);
                }
            }
        }
        let gap = (ams_stats::mean(&pos) - ams_stats::mean(&neg)).abs();
        assert!(gap < 0.01, "no-sensitivity market still shows a {gap} edge");
    }

    #[test]
    fn abnormal_return_is_capped() {
        // Extreme surprises must not produce runaway returns.
        let p = panel();
        let sim = MarketSim::simulate(
            &p,
            &[6],
            MarketConfig {
                surprise_sensitivity: 100.0,
                idio_vol: 0.0,
                market_vol: 0.0,
                ..Default::default()
            },
        );
        for c in 0..p.num_companies() {
            let total = sim.window_total_return(0, c).abs();
            assert!(total < 0.17, "company {c} total {total} exceeds the cap");
        }
    }

    #[test]
    #[should_panic(expected = "announcement outside window")]
    fn rejects_bad_announce_day() {
        let p = panel();
        MarketSim::simulate(&p, &[6], MarketConfig { announce_day: 25, ..Default::default() });
    }
}
