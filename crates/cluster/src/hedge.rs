//! Hedged-read policy: the router's tail-latency defence.
//!
//! Classic hedging sends a duplicate request to a second replica when
//! the first is slow and keeps both in flight. Over a persistent JSONL
//! connection a duplicate would desynchronize the request/response
//! pairing, so the router implements *staged* hedging: the first
//! attempt's read is capped at the hedge threshold whenever another
//! admissible replica exists; on expiry the connection is abandoned
//! (dropped, so a late response can never be mis-paired) and the
//! request is re-sent to the next replica with the remaining budget.
//! Same tail-cutting effect, one request in flight at a time — the
//! honest trade-off is documented in DESIGN §15.
//!
//! The decision itself is this pure function, kept free of I/O so it
//! can be audited (panic/alloc/block-free) and unit-tested exactly.

/// The read budget (ms) for one upstream attempt.
///
/// * `remaining_ms` — what is left of the request's deadline budget
///   (callers pass a large sentinel when the request has no deadline).
/// * `hedge_after_ms` — the configured hedge threshold; `0` disables
///   hedging.
/// * `alternatives` — how many other admissible replicas could still
///   take this request if this attempt is abandoned.
///
/// With alternatives available the read is capped at the threshold so
/// a stalled replica costs `hedge_after_ms`, not the full budget; on
/// the last admissible replica the full remaining budget applies —
/// abandoning it early would buy nothing. Never returns 0: a zero
/// socket timeout means "block forever" in std, the opposite of the
/// intent.
pub fn hedge_read_timeout(remaining_ms: u64, hedge_after_ms: u64, alternatives: u32) -> u64 {
    let full = remaining_ms.max(1);
    if hedge_after_ms == 0 || alternatives == 0 {
        return full;
    }
    full.min(hedge_after_ms.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_only_when_an_alternative_exists() {
        assert_eq!(hedge_read_timeout(1000, 150, 1), 150);
        assert_eq!(hedge_read_timeout(1000, 150, 0), 1000);
        assert_eq!(hedge_read_timeout(1000, 0, 3), 1000, "hedging disabled");
    }

    #[test]
    fn never_exceeds_the_remaining_budget() {
        assert_eq!(hedge_read_timeout(80, 150, 2), 80);
        assert_eq!(hedge_read_timeout(80, 150, 0), 80);
    }

    #[test]
    fn never_returns_a_blocking_zero() {
        assert_eq!(hedge_read_timeout(0, 0, 0), 1);
        assert_eq!(hedge_read_timeout(0, 150, 1), 1);
        assert_eq!(hedge_read_timeout(5, 0, 9), 5);
    }
}
