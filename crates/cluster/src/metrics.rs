//! Router-side counters, exposed through the router's `stats`
//! endpoint. All atomics: incremented from client workers, shard
//! dispatchers and the health prober concurrently.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters for one running router.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Request lines handled (all types, including local health/stats).
    pub requests: AtomicU64,
    /// Connections or works refused with an explicit shed line.
    pub sheds: AtomicU64,
    /// Responses served from the router's local fallback because a
    /// shard group had no usable replica.
    pub degraded: AtomicU64,
    /// Reads capped at the hedge threshold that expired and moved the
    /// request to another replica.
    pub hedges: AtomicU64,
    /// Responses served by a replica other than the first one tried.
    pub failovers: AtomicU64,
    /// Health probes sent by the prober thread.
    pub probes: AtomicU64,
    /// Probes that closed an open breaker (upstream re-admitted).
    pub readmissions: AtomicU64,
    /// Dispatcher flushes (one upstream round trip each).
    pub flushes: AtomicU64,
    /// Single predicts coalesced into `multi_predict` envelopes.
    pub coalesced: AtomicU64,
    /// Full-universe batches fanned out across shard groups.
    pub batch_fanouts: AtomicU64,
    /// Client requests that outwaited the router's own reply budget.
    pub router_timeouts: AtomicU64,
}

impl RouterMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Relaxed load of every counter as `(name, value)` pairs, in
    /// stable order — the `stats` endpoint serializes these directly.
    pub fn snapshot(&self) -> [(&'static str, u64); 11] {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        [
            ("requests", get(&self.requests)),
            ("sheds", get(&self.sheds)),
            ("degraded", get(&self.degraded)),
            ("hedges", get(&self.hedges)),
            ("failovers", get(&self.failovers)),
            ("probes", get(&self.probes)),
            ("readmissions", get(&self.readmissions)),
            ("flushes", get(&self.flushes)),
            ("coalesced", get(&self.coalesced)),
            ("batch_fanouts", get(&self.batch_fanouts)),
            ("router_timeouts", get(&self.router_timeouts)),
        ]
    }

    /// Relaxed increment, the only mutation the router uses.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps_in_order() {
        let m = RouterMetrics::new();
        RouterMetrics::bump(&m.requests);
        RouterMetrics::bump(&m.requests);
        RouterMetrics::bump(&m.readmissions);
        let snap = m.snapshot();
        assert_eq!(snap[0], ("requests", 2));
        assert_eq!(snap[6], ("readmissions", 1));
        assert!(snap.iter().all(|(name, _)| !name.is_empty()));
    }
}
