//! Consistent-hash shard map: rendezvous (highest-random-weight)
//! hashing of company ids onto shard groups.
//!
//! Why rendezvous instead of a hash ring: the properties the router
//! needs fall out of the definition with no virtual-node tuning.
//!
//! * **Total coverage** — every company id gets exactly one owner
//!   (the argmax over a non-empty weight list always exists).
//! * **Determinism across processes** — the weight is a pure function
//!   of `(company, shard id)` built on [`ams_fault::mix64`], so the
//!   router, every shard, the bench and the proptests all compute the
//!   same assignment with no shared state.
//! * **Bounded movement** — adding a shard moves exactly the keys
//!   whose new argmax is the added shard (≈ `1/(n+1)` of them);
//!   removing one moves only the keys it owned. Keys never move
//!   *between* surviving shards, which the property tests assert.
//!
//! The map hashes *shard ids*, not positions, so the same id set in a
//! different order yields identical ownership.

use ams_fault::mix64;

/// Domain-separation salt so company hashing here is independent of
/// every other `mix64` user in the workspace.
const COMPANY_SALT: u64 = 0x5348_4152_444D_4150; // "SHARDMAP"

/// The rendezvous weight of `company` on shard `id`. Pure and
/// allocation-free: callable from the router's hot routing path.
fn weight(company: u64, id: u32) -> u64 {
    mix64(mix64(company ^ COMPANY_SALT) ^ u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// An immutable assignment of the company-id space onto a set of
/// shard-group ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    ids: Vec<u32>,
}

impl ShardMap {
    /// Build a map over the given shard-group ids. Ids must be
    /// non-empty and unique (order does not matter).
    pub fn new(ids: Vec<u32>) -> Result<Self, String> {
        if ids.is_empty() {
            return Err("shard map needs at least one shard".to_string());
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(format!("duplicate shard id in {ids:?}"));
        }
        Ok(Self { ids })
    }

    /// Contiguous ids `0..n` — the common topology.
    pub fn contiguous(n: usize) -> Result<Self, String> {
        Self::new((0..n as u32).collect())
    }

    /// Number of shard groups.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the map has no shards (never constructible via
    /// [`ShardMap::new`], but `len`/`is_empty` come in pairs).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The shard ids, in construction order.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The owning shard id for a company: the id with the highest
    /// rendezvous weight. Panic-, allocation- and block-free — this is
    /// the router's per-request routing decision.
    pub fn shard_of(&self, company: u64) -> u32 {
        let mut best_id = self.ids[0];
        let mut best_w = weight(company, best_id);
        let mut i = 1;
        while i < self.ids.len() {
            let id = self.ids[i];
            let w = weight(company, id);
            // Ties broken by id so the argmax is total and stable.
            if w > best_w || (w == best_w && id > best_id) {
                best_id = id;
                best_w = w;
            }
            i += 1;
        }
        best_id
    }

    /// Position of a company's owner within [`ShardMap::ids`] — the
    /// router indexes its dispatcher table with this.
    pub fn position_of(&self, company: u64) -> usize {
        let owner = self.shard_of(company);
        let mut i = 0;
        while i < self.ids.len() {
            if self.ids[i] == owner {
                return i;
            }
            i += 1;
        }
        // Unreachable: shard_of only returns members of `ids`.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_duplicate_ids() {
        assert!(ShardMap::new(vec![]).is_err());
        assert!(ShardMap::new(vec![1, 2, 1]).is_err());
        assert!(ShardMap::new(vec![3, 1, 2]).is_ok());
    }

    #[test]
    fn assignment_ignores_id_order() {
        let a = ShardMap::new(vec![0, 1, 2, 3]).unwrap();
        let b = ShardMap::new(vec![3, 1, 0, 2]).unwrap();
        for company in 0..500u64 {
            assert_eq!(a.shard_of(company), b.shard_of(company));
        }
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let map = ShardMap::contiguous(4).unwrap();
        let mut counts = [0usize; 4];
        let n = 4000u64;
        for company in 0..n {
            counts[map.shard_of(company) as usize] += 1;
        }
        let expect = n as usize / 4;
        for (id, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "shard {id} owns {c} of {n}: badly skewed {counts:?}"
            );
        }
    }

    #[test]
    fn position_matches_owner() {
        let map = ShardMap::new(vec![7, 3, 9]).unwrap();
        for company in 0..300u64 {
            assert_eq!(map.ids()[map.position_of(company)], map.shard_of(company));
        }
    }
}
