//! The cluster router front door.
//!
//! ```text
//! router --shards "HOST:PORT[,HOST:PORT...][;GROUP2...]"
//!        [--addr 127.0.0.1:7979] [--workers 4]
//!        [--artifact PATH | --demo] [--seed 7]
//!        [--queue 64] [--max-batch 32]
//!        [--probe-ms 200] [--hedge-ms 150] [--deadline-ms 0]
//! ```
//!
//! `--shards` lists the shard groups: replicas within a group are
//! comma-separated, groups are semicolon-separated. Example — two
//! groups, the first with a replica:
//!
//! ```text
//! router --shards "127.0.0.1:7878,127.0.0.1:7879;127.0.0.1:7880" --demo
//! ```
//!
//! The router speaks the same JSONL protocol as a single `serve`
//! process, so `loadgen` (and any shard client) works against it
//! unmodified. `--artifact`/`--demo` give the router its own copy of
//! the served model for batch fan-in and local degraded fallbacks —
//! point it at the same artifact the shards serve.

use ams_cluster::{Router, RouterConfig};
use ams_serve::net::resolve;
use ams_serve::{demo, ModelArtifact, ARTIFACT_MAGIC};
use std::net::SocketAddr;

struct Args {
    addr: String,
    workers: usize,
    shards: String,
    artifact: Option<String>,
    demo: bool,
    seed: u64,
    queue: usize,
    max_batch: usize,
    probe_ms: u64,
    hedge_ms: u64,
    deadline_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7979".to_string(),
        workers: 4,
        shards: String::new(),
        artifact: None,
        demo: false,
        seed: 7,
        queue: 64,
        max_batch: 32,
        probe_ms: 200,
        hedge_ms: 150,
        deadline_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--shards" => args.shards = value("--shards")?,
            "--artifact" => args.artifact = Some(value("--artifact")?),
            "--demo" => args.demo = true,
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--queue" => {
                args.queue = value("--queue")?.parse().map_err(|e| format!("--queue: {e}"))?;
            }
            "--max-batch" => {
                args.max_batch =
                    value("--max-batch")?.parse().map_err(|e| format!("--max-batch: {e}"))?;
            }
            "--probe-ms" => {
                args.probe_ms =
                    value("--probe-ms")?.parse().map_err(|e| format!("--probe-ms: {e}"))?;
            }
            "--hedge-ms" => {
                args.hedge_ms =
                    value("--hedge-ms")?.parse().map_err(|e| format!("--hedge-ms: {e}"))?;
            }
            "--deadline-ms" => {
                args.deadline_ms =
                    value("--deadline-ms")?.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: router --shards \"HOST:PORT[,REPLICA...][;GROUP2...]\" \
                     [--addr HOST:PORT] [--workers N] [--artifact PATH | --demo] [--seed N] \
                     [--queue N] [--max-batch N] [--probe-ms MS] [--hedge-ms MS] \
                     [--deadline-ms MS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.shards.is_empty() {
        return Err(
            "--shards is required (e.g. --shards \"127.0.0.1:7878;127.0.0.1:7879\")".to_string()
        );
    }
    // Sizing knobs came off the command line — clamp them so a typo'd
    // count costs a warning-sized structure, not the number's worth of
    // threads or preallocated queue slots.
    args.workers = args.workers.clamp(1, MAX_WORKERS);
    args.queue = args.queue.clamp(1, MAX_QUEUE);
    args.max_batch = args.max_batch.clamp(1, MAX_MAX_BATCH);
    Ok(args)
}

/// Ceiling on `--workers`: one thread per worker.
const MAX_WORKERS: usize = 1024;
/// Ceiling on `--queue`: each slot holds a pending request.
const MAX_QUEUE: usize = 1 << 16;
/// Ceiling on `--max-batch`: rows fanned in per batched request.
const MAX_MAX_BATCH: usize = 1 << 12;

/// Parse `"a,b;c"` into groups of replica addresses.
fn parse_shards(spec: &str) -> Result<Vec<Vec<SocketAddr>>, String> {
    let mut groups = Vec::new();
    for group in spec.split(';') {
        let group = group.trim();
        if group.is_empty() {
            continue;
        }
        let mut replicas = Vec::new();
        for addr in group.split(',') {
            let addr = addr.trim();
            if addr.is_empty() {
                continue;
            }
            replicas.push(resolve(addr)?);
        }
        if replicas.is_empty() {
            return Err(format!("empty shard group in `{spec}`"));
        }
        groups.push(replicas);
    }
    if groups.is_empty() {
        return Err(format!("no shard groups in `{spec}`"));
    }
    Ok(groups)
}

/// Load a plain-JSON or checksummed (`AMS-ART` framed) artifact file.
fn load_artifact(path: &str) -> Result<ModelArtifact, String> {
    let head = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if head.starts_with(ARTIFACT_MAGIC.as_bytes()) {
        return ModelArtifact::read_file(std::path::Path::new(path));
    }
    let json = String::from_utf8(head).map_err(|e| format!("{path}: not UTF-8: {e}"))?;
    ModelArtifact::from_json(&json)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("router: {e}");
            std::process::exit(2);
        }
    };
    let shards = match parse_shards(&args.shards) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("router: --shards: {e}");
            std::process::exit(2);
        }
    };
    let artifact = match (&args.artifact, args.demo) {
        (Some(path), _) => match load_artifact(path) {
            Ok(a) => Some(a),
            Err(e) => {
                eprintln!("router: {path}: {e}");
                std::process::exit(1);
            }
        },
        (None, true) => {
            println!("training demo model (seed {})...", args.seed);
            Some(demo::train_demo(args.seed).artifact)
        }
        (None, false) => {
            eprintln!("router: no --artifact/--demo: batch fan-in and degraded fallbacks disabled");
            None
        }
    };

    let groups = shards.len();
    let replicas: usize = shards.iter().map(Vec::len).sum();
    let router = match Router::start(RouterConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        shards,
        artifact,
        queue_capacity: args.queue,
        max_batch: args.max_batch,
        probe_interval_ms: args.probe_ms,
        hedge_after_ms: args.hedge_ms,
        default_deadline_ms: args.deadline_ms,
        ..Default::default()
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("router: cannot start on {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "routing on {} with {} workers over {groups} shard groups ({replicas} replicas; \
         JSON lines; try {{\"type\":\"health\"}})",
        router.local_addr(),
        args.workers
    );
    // Route until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
