//! # ams-cluster — fault-tolerant sharded serving
//!
//! Scales the single-process server in `ams-serve` out to a
//! multi-process topology: N shard-group server processes, each with
//! optional replicas, fronted by a std-only router that speaks the
//! same JSONL protocol as a single shard.
//!
//! * [`shardmap`] — [`ShardMap`], rendezvous-hashed assignment of the
//!   company-id space onto shard groups: total coverage, deterministic
//!   across processes, bounded key movement on membership change
//!   (property-tested in `crates/cluster/tests/shardmap_props.rs`);
//! * [`hedge`] — [`hedge_read_timeout`], the pure staged-hedging
//!   decision: cap upstream reads when another replica could take the
//!   request, spend the full budget on the last one;
//! * [`metrics`] — [`RouterMetrics`], atomic counters surfaced by the
//!   router's `stats` endpoint;
//! * [`router`] — [`Router`], the front door: bounded admission with
//!   explicit sheds, per-group dispatcher threads with persistent
//!   upstream connections and adaptive micro-batching onto the shard
//!   `multi_predict` path, per-upstream circuit breakers, jittered
//!   retry, health-probe-driven replica re-admission, and per-company
//!   degraded fallbacks when a whole group is down — clients see typed
//!   responses, never connection errors.
//!
//! Binary: `router` (see `--help`). The failover protocol (prober vs
//! live-traffic race for the breaker's half-open probe) is modeled in
//! the `conc` explorer (`ams_analyze::conc::models::router_failover`);
//! the multi-process chaos characterization lives in
//! `crates/bench/src/bin/cluster_bench.rs` → `results/BENCH_scale.json`.

pub mod hedge;
pub mod metrics;
pub mod router;
pub mod shardmap;

pub use hedge::hedge_read_timeout;
pub use metrics::RouterMetrics;
pub use router::{fast_field_u64, route_shard, Router, RouterConfig};
pub use shardmap::ShardMap;
