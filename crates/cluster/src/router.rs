//! The cluster router: one TCP JSONL front door over N shard groups.
//!
//! Topology: each shard group owns the companies the [`ShardMap`]
//! assigns it and runs one or more replica `serve` processes. The
//! router terminates client connections, routes each request to the
//! owning group, and absorbs upstream failure so clients only ever see
//! typed responses:
//!
//! * **connection pooling** — one persistent [`JsonlConn`] per replica
//!   per dispatcher, lazily (re)connected, never shared across threads;
//! * **adaptive micro-batching** — each group has a single dispatcher
//!   thread that drains its bounded work queue and coalesces single
//!   predicts into one `multi_predict` envelope per upstream round
//!   trip ([`coalesce_drain`] / [`adapt_window`]);
//! * **per-upstream circuit breakers** — a [`CircuitBreaker`] per
//!   replica gates dispatch; trips stop hammering a dead process;
//! * **staged hedging** — reads are capped at the hedge threshold when
//!   another admissible replica exists ([`hedge_read_timeout`]); an
//!   expired read abandons the connection and fails over;
//! * **health-probe re-admission** — a prober thread periodically
//!   spends the breaker's half-open probe on a `health` round trip so
//!   recovered replicas rejoin without waiting for live traffic;
//! * **partial degradation** — a group with no usable replica degrades
//!   to the router's local fallback predictor per company
//!   (`{"ok":true,"degraded":true,...}`), never a whole-batch error.
//!
//! The wire protocol is exactly the shard protocol (see
//! `ams_serve::server`), so `loadgen` drives a router unmodified.

use crate::hedge::hedge_read_timeout;
use crate::metrics::RouterMetrics;
use crate::shardmap::ShardMap;
use ams_serve::net::{
    backoff, read_line_bounded, BoundedLine, JsonlConn, Timeouts, MAX_LINE_BYTES,
};
use ams_serve::{BreakerConfig, BreakerState, CircuitBreaker, Engine, ModelArtifact};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Read-timeout tick for client connections, so workers notice
/// shutdown promptly (mirrors the shard server).
const READ_TICK: Duration = Duration::from_millis(100);

/// How long a client worker waits for a dispatcher's reply when the
/// request carries no deadline: covers a full two-cycle failover sweep
/// with margin.
const DEFAULT_REPLY_WAIT: Duration = Duration::from_secs(15);

/// Upper bound for the adaptive coalescing window.
const MAX_WINDOW_US: u64 = 500;

/// Cap on the company count used to pre-size the fan-in response
/// buffer (1M companies ≈ a 24 MB hint). Larger batches still render —
/// the buffer just grows past the hint.
const MAX_FANIN_HINT: usize = 1 << 20;

/// Configuration for [`Router::start`].
#[derive(Clone)]
pub struct RouterConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Client worker threads (min 1).
    pub workers: usize,
    /// `shards[g]` is the replica address list of shard group `g`.
    /// Group ids are the indexes, hashed by the [`ShardMap`].
    pub shards: Vec<Vec<SocketAddr>>,
    /// The served artifact. Required for batch fan-out and for local
    /// degraded fallbacks; `None` still routes singles but answers
    /// `{"ok":false}` when a whole group is down.
    pub artifact: Option<ModelArtifact>,
    /// Bounded admission queue for client connections (min 1).
    pub queue_capacity: usize,
    /// Bounded per-group dispatch queue (min 1).
    pub dispatch_queue: usize,
    /// Max single predicts coalesced into one upstream envelope.
    pub max_batch: usize,
    /// Health-probe cadence for non-closed upstreams; `0` disables the
    /// prober (re-admission then rides on live traffic only).
    pub probe_interval_ms: u64,
    /// Hedge threshold: cap upstream reads at this when another
    /// admissible replica exists; `0` disables hedging.
    pub hedge_after_ms: u64,
    /// Default per-request deadline; `0` means none. A request's
    /// `deadline_ms` field overrides it.
    pub default_deadline_ms: u64,
    /// Socket budgets for upstream connections.
    pub upstream: Timeouts,
    /// Per-upstream breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            shards: Vec::new(),
            artifact: None,
            queue_capacity: 64,
            dispatch_queue: 1024,
            max_batch: 32,
            probe_interval_ms: 200,
            hedge_after_ms: 150,
            default_deadline_ms: 0,
            upstream: Timeouts::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// One replica endpoint with its breaker and traffic counters.
struct Upstream {
    addr: SocketAddr,
    breaker: CircuitBreaker,
    sent: AtomicU64,
    failed: AtomicU64,
}

/// One shard group: the replicas that can answer for its companies.
struct GroupState {
    id: u32,
    upstreams: Vec<Upstream>,
    /// Round-robin seed so replicas share healthy load.
    rotation: AtomicU64,
}

struct RouterShared {
    map: ShardMap,
    groups: Vec<Arc<GroupState>>,
    queues: Vec<SyncSender<Work>>,
    engine: Option<Arc<Engine>>,
    metrics: Arc<RouterMetrics>,
    shutdown: Arc<AtomicBool>,
    upstream_timeouts: Timeouts,
    hedge_after_ms: u64,
    default_deadline_ms: u64,
    max_batch: usize,
    batch_rotation: AtomicU64,
}

/// A unit of routed work handed to a group dispatcher.
pub(crate) enum Work {
    /// A single `predict`, eligible for coalescing.
    Single { line: String, company: u64, deadline: Option<Instant>, reply: SyncSender<String> },
    /// A request forwarded verbatim, alone (e.g. `slave_weights`).
    Passthrough { line: String, deadline: Option<Instant>, reply: SyncSender<String> },
    /// One leg of a full-universe batch fan-out.
    Batch {
        line: Arc<String>,
        deadline: Option<Instant>,
        group_pos: usize,
        reply: SyncSender<(usize, Option<String>)>,
    },
}

/// A running router; dropping it without [`Router::shutdown`] detaches
/// the threads (they exit when the process does).
pub struct Router {
    local_addr: SocketAddr,
    shared: Arc<RouterShared>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    dispatchers: Vec<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl Router {
    /// Bind, spawn workers + dispatchers + prober, and start serving.
    pub fn start(config: RouterConfig) -> std::io::Result<Self> {
        if config.shards.is_empty() || config.shards.iter().any(Vec::is_empty) {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "router needs at least one shard group, each with at least one replica",
            ));
        }
        let engine = match config.artifact.clone() {
            None => None,
            Some(a) => Some(Arc::new(
                Engine::new(a).map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?,
            )),
        };
        let map = ShardMap::contiguous(config.shards.len())
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))?;

        let groups: Vec<Arc<GroupState>> = config
            .shards
            .iter()
            .enumerate()
            .map(|(g, replicas)| {
                Arc::new(GroupState {
                    id: g as u32,
                    upstreams: replicas
                        .iter()
                        .map(|&addr| Upstream {
                            addr,
                            breaker: CircuitBreaker::new(config.breaker),
                            sent: AtomicU64::new(0),
                            failed: AtomicU64::new(0),
                        })
                        .collect(),
                    rotation: AtomicU64::new(g as u64),
                })
            })
            .collect();

        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(RouterMetrics::new());

        let mut queues = Vec::with_capacity(groups.len());
        let mut dispatch_rxs = Vec::with_capacity(groups.len());
        for _ in &groups {
            let (tx, rx) = mpsc::sync_channel::<Work>(config.dispatch_queue.max(1));
            queues.push(tx);
            dispatch_rxs.push(rx);
        }

        let shared = Arc::new(RouterShared {
            map,
            groups: groups.clone(),
            queues,
            engine,
            metrics: Arc::clone(&metrics),
            shutdown: Arc::clone(&shutdown),
            upstream_timeouts: config.upstream,
            hedge_after_ms: config.hedge_after_ms,
            default_deadline_ms: config.default_deadline_ms,
            max_batch: config.max_batch.max(1),
            batch_rotation: AtomicU64::new(0),
        });

        let dispatchers: Vec<JoinHandle<()>> = dispatch_rxs
            .into_iter()
            .zip(groups.iter().cloned())
            .map(|(rx, group)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || dispatcher_loop(&group, &rx, &shared))
            })
            .collect();

        let prober = if config.probe_interval_ms > 0 {
            let shared = Arc::clone(&shared);
            let interval = Duration::from_millis(config.probe_interval_ms);
            Some(std::thread::spawn(move || prober_loop(&shared, interval)))
        } else {
            None
        };

        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;

        // Bounded admission: beyond `queue_capacity` waiting
        // connections the acceptor sheds with an explicit line.
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.queue_capacity.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&conn_rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &shared))
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(s) => match conn_tx.try_send(s) {
                            Ok(()) => {}
                            Err(TrySendError::Full(s)) => {
                                RouterMetrics::bump(&metrics.sheds);
                                shed_connection(s);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        },
                        Err(_) => continue,
                    }
                }
            })
        };

        Ok(Self {
            local_addr,
            shared,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            dispatchers,
            prober,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The router's counters.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.shared.metrics
    }

    /// Breaker state per upstream, as `(group, addr, state)` — test
    /// and bench observability.
    pub fn upstream_states(&self) -> Vec<(u32, SocketAddr, BreakerState)> {
        self.shared
            .groups
            .iter()
            .flat_map(|g| g.upstreams.iter().map(|u| (g.id, u.addr, u.breaker.state())))
            .collect()
    }

    /// Stop accepting, drain workers and dispatchers, join everything.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection — connected
        // then dropped, never read from, so only the connect is bounded.
        // ams-lint: allow(no-connect-without-timeout) — write-less nudge, no read to time out
        let _ = TcpStream::connect_timeout(&self.local_addr, READ_TICK);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Dispatchers and the prober poll the shutdown flag on their
        // receive/sleep ticks, so joining is bounded by READ_TICK.
        for h in self.dispatchers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

/// Refuse one connection with an explicit shed line, then close it.
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.write_all(
        b"{\"ok\":false,\"shed\":true,\"error\":\"router overloaded: connection shed\"}\n",
    );
}

// ---------------------------------------------------------------------------
// Fast request scanning (no full JSON parse on the hot path)
// ---------------------------------------------------------------------------

/// Scan a request line for `"type":"..."` without parsing the whole
/// object. Returns `None` on anything unusual; callers then fall back
/// to a full parse, so this only has to be right for the common
/// compact encoding.
fn fast_request_type(line: &str) -> Option<&str> {
    let at = line.find("\"type\"")?;
    let rest = line.get(at + 6..)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix(':')?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    rest.get(..end)
}

/// Scan a request line for an unsigned integer field without a full
/// parse. Rejects signs, fractions and exponents (falls back to the
/// full parser via `None`).
pub fn fast_field_u64(line: &str, field: &str) -> Option<u64> {
    let mut from = 0usize;
    loop {
        let hit = line.get(from..)?.find(field)?;
        let at = from + hit;
        // Must be a quoted key: `"field"` followed by a colon.
        let before_ok = at >= 1 && line.as_bytes().get(at - 1) == Some(&b'"');
        let after = line.get(at + field.len()..)?;
        if !before_ok || !after.starts_with('"') {
            from = at + field.len();
            continue;
        }
        let rest = after.get(1..)?.trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            from = at + field.len();
            continue;
        };
        let rest = rest.trim_start();
        let bytes = rest.as_bytes();
        let mut value: u64 = 0;
        let mut digits = 0usize;
        while let Some(&b) = bytes.get(digits) {
            if !b.is_ascii_digit() {
                break;
            }
            value = value.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
            digits += 1;
        }
        if digits == 0 {
            return None;
        }
        // A fraction/exponent means this isn't a plain integer.
        match bytes.get(digits) {
            Some(b'.') | Some(b'e') | Some(b'E') => return None,
            _ => return Some(value),
        }
    }
}

/// The router's per-request routing decision: company id out of the
/// raw line, owner position out of the shard map. Panic-, allocation-
/// and block-free (audited as `router-route`).
pub fn route_shard(line: &str, map: &ShardMap) -> Option<usize> {
    let company = fast_field_u64(line, "company")?;
    Some(map.position_of(company))
}

/// Cheap structural check that a line is one balanced JSON object
/// (string- and escape-aware). Lines that fail go through the full
/// parser for a per-request error instead of poisoning an envelope.
fn balanced_object(line: &str) -> bool {
    let s = line.trim();
    if !s.starts_with('{') {
        return false;
    }
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for (i, b) in s.bytes().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                depth -= 1;
                if depth == 0 {
                    return i == s.len() - 1;
                }
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    false
}

/// Split a shard `multi_predict` response's `"results":[...]` array
/// into per-element byte ranges (each element is one `{...}` object).
/// Returns `None` when the envelope isn't a well-formed ok response.
fn split_results(resp: &str) -> Option<Vec<(usize, usize)>> {
    split_array_objects(resp, "\"results\":[")
}

/// Split a shard batch response's `"predictions":[...]` array into
/// per-element byte ranges (scalars, so a flat comma split at depth 0).
fn split_predictions(resp: &str) -> Option<Vec<(usize, usize)>> {
    let start = resp.find("\"predictions\":[")? + "\"predictions\":[".len();
    let rest = resp.get(start..)?;
    let mut spans = Vec::new();
    let mut elem_start = 0usize;
    for (i, b) in rest.bytes().enumerate() {
        match b {
            b',' => {
                spans.push((start + elem_start, start + i));
                elem_start = i + 1;
            }
            b']' => {
                if i > elem_start {
                    spans.push((start + elem_start, start + i));
                }
                return Some(spans);
            }
            _ => {}
        }
    }
    None
}

/// Split `marker`-introduced arrays of JSON objects into byte ranges,
/// tracking strings/escapes so braces inside strings don't miscount.
fn split_array_objects(resp: &str, marker: &str) -> Option<Vec<(usize, usize)>> {
    let start = resp.find(marker)? + marker.len();
    let rest = resp.get(start..)?;
    let mut spans = Vec::new();
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    let mut elem_start = None;
    for (i, b) in rest.bytes().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => {
                if depth == 0 {
                    elem_start = Some(i);
                }
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = elem_start.take() {
                        spans.push((start + s, start + i + 1));
                    }
                }
                if depth < 0 {
                    return None;
                }
            }
            b']' if depth == 0 => {
                return Some(spans);
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Client-facing workers
// ---------------------------------------------------------------------------

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Arc<RouterShared>) {
    loop {
        let stream = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            match guard.recv_timeout(READ_TICK) {
                Ok(s) => Some(s),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(stream) = stream {
            handle_client(stream, shared);
        }
    }
}

fn handle_client(stream: TcpStream, shared: &Arc<RouterShared>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match read_client_line(&mut reader, &mut line, shared) {
            ReadOutcome::Line => {}
            ReadOutcome::Closed => return,
            ReadOutcome::TooLarge => {
                // Past the cap there is no line boundary to resync on:
                // answer with a typed refusal and drop the connection.
                let refusal = error_line(&format!("request line exceeded {MAX_LINE_BYTES} bytes"));
                let _ = writer.write_all(refusal.as_bytes());
                let _ = writer.write_all(b"\n");
                let _ = writer.flush();
                return;
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = handle_line(trimmed, shared);
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            return;
        }
    }
}

enum ReadOutcome {
    Line,
    Closed,
    /// The client streamed past [`MAX_LINE_BYTES`] without a newline.
    TooLarge,
}

fn read_client_line<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    shared: &Arc<RouterShared>,
) -> ReadOutcome {
    loop {
        match read_line_bounded(reader, line, MAX_LINE_BYTES) {
            Ok(BoundedLine::Line(_)) => return ReadOutcome::Line,
            Ok(BoundedLine::Closed) => return ReadOutcome::Closed,
            Ok(BoundedLine::TooLarge) => return ReadOutcome::TooLarge,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Partial bytes stay in `line`; the next call resumes
                // with the remaining budget.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return ReadOutcome::Closed;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
}

fn error_line(message: &str) -> String {
    let quoted = serde_json::to_string(&serde::Value::String(message.to_string()))
        .unwrap_or_else(|_| "\"error\"".to_string());
    format!("{{\"ok\":false,\"error\":{quoted}}}")
}

/// Route one request line to a typed response line (no newline).
fn handle_line(line: &str, shared: &Arc<RouterShared>) -> String {
    RouterMetrics::bump(&shared.metrics.requests);
    match fast_request_type(line) {
        Some(ty) => dispatch_typed(ty, line, shared),
        None => {
            // Odd spacing or invalid JSON: let the full parser decide,
            // then retry the fast path on a compact re-serialization.
            match serde_json::from_str::<serde::Value>(line) {
                Err(e) => error_line(&format!("invalid JSON: {e}")),
                Ok(v) => match v.get("type").and_then(serde::Value::as_str) {
                    None => error_line("missing `type`"),
                    Some(ty) => {
                        let ty = ty.to_string();
                        let compact =
                            serde_json::to_string(&v).unwrap_or_else(|_| line.to_string());
                        dispatch_typed(&ty, &compact, shared)
                    }
                },
            }
        }
    }
}

fn dispatch_typed(ty: &str, line: &str, shared: &Arc<RouterShared>) -> String {
    match ty {
        "predict" => route_single(line, shared),
        "slave_weights" => route_slave_weights(line, shared),
        "batch_predict" => route_batch(line, shared),
        "multi_predict" => error_line("multi_predict is a router-internal envelope"),
        "health" => local_health(shared),
        "stats" => local_stats(shared),
        other => error_line(&format!("unknown request type `{other}`")),
    }
}

fn request_deadline(line: &str, shared: &RouterShared) -> Option<Instant> {
    let ms = fast_field_u64(line, "deadline_ms").unwrap_or(shared.default_deadline_ms);
    if ms == 0 {
        None
    } else {
        Some(Instant::now() + Duration::from_millis(ms))
    }
}

fn reply_budget(deadline: Option<Instant>) -> Duration {
    match deadline {
        Some(d) => d.saturating_duration_since(Instant::now()) + Duration::from_secs(1),
        None => DEFAULT_REPLY_WAIT,
    }
}

fn await_reply(rx: &Receiver<String>, deadline: Option<Instant>, shared: &RouterShared) -> String {
    match rx.recv_timeout(reply_budget(deadline)) {
        Ok(resp) => resp,
        Err(_) => {
            RouterMetrics::bump(&shared.metrics.router_timeouts);
            error_line("router timeout waiting for shard")
        }
    }
}

fn route_single(line: &str, shared: &Arc<RouterShared>) -> String {
    let Some(company) = fast_field_u64(line, "company") else {
        // Companies must be plain unsigned integers on the wire; the
        // full parser produces the authoritative error.
        return match serde_json::from_str::<serde::Value>(line) {
            Err(e) => error_line(&format!("invalid JSON: {e}")),
            Ok(v) => match v.get("company").and_then(serde::Value::as_f64) {
                Some(c) if c >= 0.0 && c.fract() == 0.0 => route_single_to(c as u64, line, shared),
                Some(_) => error_line("`company` must be a non-negative integer"),
                None => error_line("missing `company`"),
            },
        };
    };
    if !balanced_object(line) {
        return match serde_json::from_str::<serde::Value>(line) {
            Err(e) => error_line(&format!("invalid JSON: {e}")),
            Ok(_) => error_line("request must be a single JSON object"),
        };
    }
    route_single_to(company, line, shared)
}

fn route_single_to(company: u64, line: &str, shared: &Arc<RouterShared>) -> String {
    let pos = shared.map.position_of(company);
    let deadline = request_deadline(line, shared);
    let (tx, rx) = mpsc::sync_channel::<String>(1);
    let work = Work::Single { line: line.to_string(), company, deadline, reply: tx };
    match shared.queues.get(pos).map(|q| q.try_send(work)) {
        Some(Ok(())) => await_reply(&rx, deadline, shared),
        Some(Err(TrySendError::Full(_))) => {
            RouterMetrics::bump(&shared.metrics.sheds);
            "{\"ok\":false,\"shed\":true,\"error\":\"router overloaded: shard queue full\"}"
                .to_string()
        }
        _ => error_line("router shutting down"),
    }
}

fn route_slave_weights(line: &str, shared: &Arc<RouterShared>) -> String {
    let Some(company) = fast_field_u64(line, "company") else {
        return error_line("missing `company`");
    };
    if !balanced_object(line) {
        return error_line("request must be a single JSON object");
    }
    let pos = shared.map.position_of(company);
    let deadline = request_deadline(line, shared);
    let (tx, rx) = mpsc::sync_channel::<String>(1);
    let work = Work::Passthrough { line: line.to_string(), deadline, reply: tx };
    match shared.queues.get(pos).map(|q| q.try_send(work)) {
        Some(Ok(())) => await_reply(&rx, deadline, shared),
        Some(Err(TrySendError::Full(_))) => {
            RouterMetrics::bump(&shared.metrics.sheds);
            "{\"ok\":false,\"shed\":true,\"error\":\"router overloaded: shard queue full\"}"
                .to_string()
        }
        _ => error_line("router shutting down"),
    }
}

fn route_batch(line: &str, shared: &Arc<RouterShared>) -> String {
    if !balanced_object(line) {
        return error_line("request must be a single JSON object");
    }
    let deadline = request_deadline(line, shared);
    let Some(engine) = shared.engine.as_ref() else {
        // Without a local artifact the router can't merge partial
        // answers; any single shard serves the full universe, so
        // rotate whole batches across groups as passthroughs.
        let pos = (shared.batch_rotation.fetch_add(1, Ordering::Relaxed) as usize)
            % shared.groups.len().max(1);
        let (tx, rx) = mpsc::sync_channel::<String>(1);
        let work = Work::Passthrough { line: line.to_string(), deadline, reply: tx };
        return match shared.queues.get(pos).map(|q| q.try_send(work)) {
            Some(Ok(())) => await_reply(&rx, deadline, shared),
            Some(Err(TrySendError::Full(_))) => {
                RouterMetrics::bump(&shared.metrics.sheds);
                "{\"ok\":false,\"shed\":true,\"error\":\"router overloaded: shard queue full\"}"
                    .to_string()
            }
            _ => error_line("router shutting down"),
        };
    };

    RouterMetrics::bump(&shared.metrics.batch_fanouts);
    let arc_line = Arc::new(line.to_string());
    let (tx, rx) = mpsc::sync_channel::<(usize, Option<String>)>(shared.groups.len().max(1));
    let mut outstanding = 0usize;
    let mut responses: Vec<Option<String>> = (0..shared.groups.len()).map(|_| None).collect();
    for pos in 0..shared.groups.len() {
        let work = Work::Batch {
            line: Arc::clone(&arc_line),
            deadline,
            group_pos: pos,
            reply: tx.clone(),
        };
        // A full or closed queue leaves `responses[pos]` empty: that
        // group's companies degrade, the batch still answers.
        if let Some(Ok(())) = shared.queues.get(pos).map(|q| q.try_send(work)) {
            outstanding += 1;
        }
    }
    drop(tx);
    let budget = reply_budget(deadline);
    let collect_deadline = Instant::now() + budget;
    for _ in 0..outstanding {
        let left = collect_deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(left) {
            Ok((pos, resp)) => {
                if let Some(slot) = responses.get_mut(pos) {
                    *slot = resp;
                }
            }
            Err(_) => {
                RouterMetrics::bump(&shared.metrics.router_timeouts);
                break;
            }
        }
    }

    let n = engine.num_companies();
    // Pre-extract each group's prediction spans; groups that failed or
    // answered malformed get `None` and degrade per company.
    let spans: Vec<Option<Vec<(usize, usize)>>> = responses
        .iter()
        .map(|r| {
            r.as_deref().and_then(|resp| {
                if resp.contains("\"ok\":true") {
                    split_predictions(resp).filter(|s| s.len() == n)
                } else {
                    None
                }
            })
        })
        .collect();
    let upstream_degraded = responses
        .iter()
        .any(|r| r.as_deref().is_some_and(|resp| resp.contains("\"degraded\":true")));

    // Pre-render local fallbacks only for companies owned by a group
    // with no usable response.
    let mut fallback_text: Vec<Option<String>> = (0..n).map(|_| None).collect();
    let mut degraded_companies: Vec<usize> = Vec::new();
    for (c, slot) in fallback_text.iter_mut().enumerate() {
        let owner = shared.map.position_of(c as u64);
        if spans.get(owner).map(Option::is_none).unwrap_or(true) {
            let p = engine.fallback_predict(Some(c), None);
            *slot = Some(fmt_num(p));
            degraded_companies.push(c);
        }
    }
    if !degraded_companies.is_empty() {
        RouterMetrics::bump(&shared.metrics.degraded);
    }

    fanin_merge(
        n,
        &shared.map,
        &responses,
        &spans,
        &fallback_text,
        &degraded_companies,
        upstream_degraded,
    )
}

/// Assemble the merged batch response from per-group prediction spans
/// plus pre-rendered local fallbacks. Panic-free (audited as
/// `router-fanin`): every access is checked, every gap has a fallback.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fanin_merge(
    n: usize,
    map: &ShardMap,
    responses: &[Option<String>],
    spans: &[Option<Vec<(usize, usize)>>],
    fallback_text: &[Option<String>],
    degraded_companies: &[usize],
    upstream_degraded: bool,
) -> String {
    // Capacity hint only (the string grows as needed) — capped so the
    // engine's company count, which traces back to an operator-supplied
    // artifact, never sizes an allocation by itself.
    let mut out = String::with_capacity(64 + n.min(MAX_FANIN_HINT) * 24);
    out.push_str("{\"ok\":true");
    if !degraded_companies.is_empty() || upstream_degraded {
        out.push_str(",\"degraded\":true,\"degraded_reason\":\"");
        if degraded_companies.is_empty() {
            out.push_str("upstream degraded");
        } else {
            out.push_str("shard unavailable");
        }
        out.push_str("\",\"degraded_companies\":[");
        let mut first = true;
        let mut i = 0;
        while i < degraded_companies.len() {
            if !first {
                out.push(',');
            }
            first = false;
            if let Some(c) = degraded_companies.get(i) {
                push_usize(&mut out, *c);
            }
            i += 1;
        }
        out.push(']');
    }
    out.push_str(",\"predictions\":[");
    let mut c = 0usize;
    while c < n {
        if c > 0 {
            out.push(',');
        }
        let owner = map.position_of(c as u64);
        let served = match (
            responses.get(owner).and_then(Option::as_deref),
            spans.get(owner).and_then(Option::as_ref),
        ) {
            (Some(resp), Some(sp)) => match sp.get(c) {
                Some(&(a, b)) => match resp.get(a..b) {
                    Some(text) => {
                        out.push_str(text.trim());
                        true
                    }
                    None => false,
                },
                None => false,
            },
            _ => false,
        };
        if !served {
            match fallback_text.get(c).and_then(Option::as_deref) {
                Some(text) => out.push_str(text),
                // Unreachable: fallbacks were rendered exactly for the
                // gaps. `null` keeps the output well-formed regardless.
                None => out.push_str("null"),
            }
        }
        c += 1;
    }
    out.push_str("]}");
    out
}

/// Decimal-format a usize without `format!` (keeps [`fanin_merge`]
/// simple for the audit).
fn push_usize(out: &mut String, v: usize) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 || i == 0 {
            break;
        }
    }
    if let Ok(s) = std::str::from_utf8(&buf[i..]) {
        out.push_str(s);
    }
}

/// Shortest-round-trip float text, matching the shard's serializer
/// bit-for-bit (`vendor/serde_json` uses the same `{}` display).
fn fmt_num(p: f64) -> String {
    if p.is_finite() {
        format!("{p}")
    } else {
        "null".to_string()
    }
}

fn local_health(shared: &Arc<RouterShared>) -> String {
    let mut out = String::with_capacity(256);
    let mut all_groups_up = true;
    let mut upstreams = String::new();
    for g in &shared.groups {
        let mut group_up = false;
        for u in &g.upstreams {
            let state = u.breaker.state();
            if state == BreakerState::Closed {
                group_up = true;
            }
            if !upstreams.is_empty() {
                upstreams.push(',');
            }
            upstreams.push_str(&format!(
                "{{\"group\":{},\"addr\":\"{}\",\"state\":\"{}\"}}",
                g.id,
                u.addr,
                state_name(state)
            ));
        }
        all_groups_up &= group_up;
    }
    out.push_str("{\"ok\":true,\"role\":\"router\",\"status\":\"");
    out.push_str(if all_groups_up { "healthy" } else { "degraded" });
    out.push_str("\",\"groups\":");
    push_usize(&mut out, shared.groups.len());
    out.push_str(",\"upstreams\":[");
    out.push_str(&upstreams);
    out.push_str("],\"models\":[");
    if let Some(engine) = shared.engine.as_ref() {
        let a = engine.artifact();
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"version\":{},\"companies\":{},\"feature_width\":{}}}",
            a.name,
            a.version,
            a.num_companies(),
            a.feature_width()
        ));
    }
    out.push_str("]}");
    out
}

fn local_stats(shared: &Arc<RouterShared>) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"ok\":true,\"role\":\"router\",\"stats\":{");
    for (i, (name, value)) in shared.metrics.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str("},\"upstreams\":[");
    let mut first = true;
    for g in &shared.groups {
        for u in &g.upstreams {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"group\":{},\"addr\":\"{}\",\"state\":\"{}\",\"sent\":{},\"failed\":{}}}",
                g.id,
                u.addr,
                state_name(u.breaker.state()),
                u.sent.load(Ordering::Relaxed),
                u.failed.load(Ordering::Relaxed)
            ));
        }
    }
    out.push_str("]}");
    out
}

fn state_name(s: BreakerState) -> &'static str {
    match s {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

// ---------------------------------------------------------------------------
// Per-group dispatchers: coalescing, failover, hedging
// ---------------------------------------------------------------------------

/// Drain up to `slots.len()` works from the queue: everything already
/// waiting, then at most one bounded wait of `window` to let a partial
/// batch fill. `slots[0]` is pre-filled by the caller; returns the
/// number of filled slots. Panic-, allocation-free after warm-up
/// (audited as `router-coalesce`): slot assignment only, one
/// `recv_timeout` as the single bounded wait.
pub(crate) fn coalesce_drain(
    rx: &Receiver<Work>,
    slots: &mut [Option<Work>],
    window: Duration,
) -> usize {
    let mut n = 1usize;
    while n < slots.len() {
        match rx.try_recv() {
            Ok(w) => {
                slots[n] = Some(w);
                n += 1;
            }
            Err(_) => break,
        }
    }
    if n < slots.len() && window > Duration::ZERO {
        if let Ok(w) = rx.recv_timeout(window) {
            slots[n] = Some(w);
            n += 1;
            while n < slots.len() {
                match rx.try_recv() {
                    Ok(w) => {
                        slots[n] = Some(w);
                        n += 1;
                    }
                    Err(_) => break,
                }
            }
        }
    }
    n
}

/// Adapt the coalescing window to observed batch fill: a lone request
/// or a saturated queue needs no waiting; partial batches earn a
/// slightly longer window (capped at [`MAX_WINDOW_US`]).
pub(crate) fn adapt_window(window_us: u64, flushed: usize, cap: usize) -> u64 {
    if flushed <= 1 || flushed >= cap {
        window_us / 2
    } else {
        (window_us.saturating_mul(2)).clamp(50, MAX_WINDOW_US)
    }
}

fn dispatcher_loop(group: &Arc<GroupState>, rx: &Receiver<Work>, shared: &Arc<RouterShared>) {
    let mut conns: Vec<Option<JsonlConn>> = group.upstreams.iter().map(|_| None).collect();
    let mut slots: Vec<Option<Work>> = (0..shared.max_batch).map(|_| None).collect();
    let mut window_us = 0u64;
    let mut env_buf = String::new();
    let mut resp_buf = String::new();
    loop {
        match rx.recv_timeout(READ_TICK) {
            Ok(first) => {
                slots[0] = Some(first);
                // `coalesce_drain` never fills past the slot vec, but
                // the slice below is taken on that contract — restate
                // it as a bound rather than trusting the count.
                let n = coalesce_drain(rx, &mut slots, Duration::from_micros(window_us))
                    .min(slots.len());
                flush_slots(
                    group,
                    &mut conns,
                    &mut slots[..n],
                    shared,
                    &mut env_buf,
                    &mut resp_buf,
                );
                window_us = adapt_window(window_us, n, shared.max_batch);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Dispatch a filled slot range: consecutive singles coalesce into one
/// `multi_predict` envelope; passthroughs and batch legs flush the
/// pending envelope and go out alone, preserving arrival order.
fn flush_slots(
    group: &Arc<GroupState>,
    conns: &mut [Option<JsonlConn>],
    slots: &mut [Option<Work>],
    shared: &Arc<RouterShared>,
    env_buf: &mut String,
    resp_buf: &mut String,
) {
    let mut pending: Vec<(String, u64, Option<Instant>, SyncSender<String>)> = Vec::new();
    for slot in slots.iter_mut() {
        match slot.take() {
            None => {}
            Some(Work::Single { line, company, deadline, reply }) => {
                pending.push((line, company, deadline, reply));
            }
            Some(Work::Passthrough { line, deadline, reply }) => {
                flush_singles(group, conns, &mut pending, shared, env_buf, resp_buf);
                let ok = dispatch_line(shared, group, conns, &line, deadline, resp_buf);
                let response =
                    if ok { resp_buf.trim().to_string() } else { error_line("shard unavailable") };
                let _ = reply.send(response);
            }
            Some(Work::Batch { line, deadline, group_pos, reply }) => {
                flush_singles(group, conns, &mut pending, shared, env_buf, resp_buf);
                let ok = dispatch_line(shared, group, conns, &line, deadline, resp_buf);
                let resp = if ok { Some(resp_buf.trim().to_string()) } else { None };
                let _ = reply.send((group_pos, resp));
            }
        }
    }
    flush_singles(group, conns, &mut pending, shared, env_buf, resp_buf);
}

/// Send the pending singles as one `multi_predict` envelope; on any
/// upstream failure degrade each to the router's local fallback.
fn flush_singles(
    group: &Arc<GroupState>,
    conns: &mut [Option<JsonlConn>],
    pending: &mut Vec<(String, u64, Option<Instant>, SyncSender<String>)>,
    shared: &Arc<RouterShared>,
    env_buf: &mut String,
    resp_buf: &mut String,
) {
    if pending.is_empty() {
        return;
    }
    RouterMetrics::bump(&shared.metrics.flushes);
    if pending.len() > 1 {
        shared.metrics.coalesced.fetch_add(pending.len() as u64, Ordering::Relaxed);
    }

    // Envelope deadline: the *max* remaining budget among the batch —
    // a min would let one nearly-expired request poison its
    // batch-mates inside the shard's per-element deadline check (each
    // element still carries its own `deadline_ms` for exactness).
    let deadline = pending.iter().filter_map(|(_, _, d, _)| *d).max();
    let effective = if pending.iter().all(|(_, _, d, _)| d.is_some()) { deadline } else { None };

    env_buf.clear();
    env_buf.push_str("{\"type\":\"multi_predict\"");
    if let Some(d) = effective {
        let ms = d.saturating_duration_since(Instant::now()).as_millis().max(1);
        env_buf.push_str(",\"deadline_ms\":");
        push_usize(env_buf, ms as usize);
    }
    env_buf.push_str(",\"requests\":[");
    for (i, (line, _, _, _)) in pending.iter().enumerate() {
        if i > 0 {
            env_buf.push(',');
        }
        env_buf.push_str(line.trim());
    }
    env_buf.push_str("]}");

    let ok = dispatch_line(shared, group, conns, env_buf, effective, resp_buf);
    if ok {
        let resp = resp_buf.trim();
        if resp.contains("\"ok\":true") {
            if let Some(spans) = split_results(resp) {
                if spans.len() == pending.len() {
                    for (i, (_, _, _, reply)) in pending.drain(..).enumerate() {
                        let text = spans
                            .get(i)
                            .and_then(|&(a, b)| resp.get(a..b))
                            .map(str::to_string)
                            .unwrap_or_else(|| error_line("shard response truncated"));
                        let _ = reply.send(text);
                    }
                    return;
                }
            }
        }
    }
    // Upstream gone or the envelope came back unusable: answer every
    // coalesced request from the local fallback ladder.
    for (_, company, _, reply) in pending.drain(..) {
        let _ = reply.send(degraded_single(shared, company));
    }
}

/// The router's local fallback answer for one company when its shard
/// group has no usable replica — typed, never an error, mirroring the
/// shard's own degradation ladder.
fn degraded_single(shared: &RouterShared, company: u64) -> String {
    RouterMetrics::bump(&shared.metrics.degraded);
    match shared.engine.as_ref() {
        Some(engine) => {
            let c = usize::try_from(company).ok().filter(|&c| c < engine.num_companies());
            let p = engine.fallback_predict(c, None);
            format!(
                "{{\"ok\":true,\"degraded\":true,\"degraded_reason\":\"shard unavailable\",\
                 \"company\":{company},\"prediction\":{}}}",
                fmt_num(p)
            )
        }
        None => error_line("shard unavailable"),
    }
}

enum AttemptOutcome {
    Served,
    HedgeTimeout,
    Failed,
}

/// Send one line to the group with failover and staged hedging: sweep
/// the replicas from a rotating start, honoring breakers; retry the
/// sweep once after a jittered backoff. Returns true with the response
/// in `resp` on success.
fn dispatch_line(
    shared: &RouterShared,
    group: &GroupState,
    conns: &mut [Option<JsonlConn>],
    line: &str,
    deadline: Option<Instant>,
    resp: &mut String,
) -> bool {
    let n = group.upstreams.len();
    if n == 0 {
        return false;
    }
    let start = group.rotation.fetch_add(1, Ordering::Relaxed) as usize % n;
    for cycle in 0..2u32 {
        for k in 0..n {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return false;
                }
            }
            let i = (start + k) % n;
            let Some(up) = group.upstreams.get(i) else { continue };
            if !up.breaker.allow() {
                continue;
            }
            // We hold either normal admission or the half-open probe:
            // every path below records an outcome on the breaker.
            up.sent.fetch_add(1, Ordering::Relaxed);
            let closed_others = (0..n)
                .filter(|&j| j != i)
                .filter(|&j| {
                    group.upstreams.get(j).map(|u| u.breaker.state() == BreakerState::Closed)
                        == Some(true)
                })
                .count() as u32;
            let alternatives = closed_others + (1 - cycle);
            match attempt_upstream(shared, conns, i, up.addr, alternatives, line, deadline, resp) {
                AttemptOutcome::Served => {
                    up.breaker.record_success();
                    if k > 0 || cycle > 0 {
                        RouterMetrics::bump(&shared.metrics.failovers);
                    }
                    return true;
                }
                AttemptOutcome::HedgeTimeout => {
                    up.failed.fetch_add(1, Ordering::Relaxed);
                    up.breaker.record_failure();
                    RouterMetrics::bump(&shared.metrics.hedges);
                }
                AttemptOutcome::Failed => {
                    up.failed.fetch_add(1, Ordering::Relaxed);
                    up.breaker.record_failure();
                }
            }
        }
        if cycle == 0 {
            std::thread::sleep(backoff(0, u64::from(group.id)));
        }
    }
    false
}

/// One send/read attempt against replica `i`, (re)connecting lazily.
/// A read capped below the full budget that times out is a hedge
/// expiry: the connection is dropped (a late response must never be
/// mis-paired with a later request) and the caller fails over.
#[allow(clippy::too_many_arguments)]
fn attempt_upstream(
    shared: &RouterShared,
    conns: &mut [Option<JsonlConn>],
    i: usize,
    addr: SocketAddr,
    alternatives: u32,
    line: &str,
    deadline: Option<Instant>,
    resp: &mut String,
) -> AttemptOutcome {
    if conns.get(i).map(Option::is_none) == Some(true) {
        match JsonlConn::connect(addr, &shared.upstream_timeouts) {
            Ok(c) => {
                if let Some(slot) = conns.get_mut(i) {
                    *slot = Some(c);
                }
            }
            Err(_) => return AttemptOutcome::Failed,
        }
    }
    let Some(Some(conn)) = conns.get_mut(i) else {
        return AttemptOutcome::Failed;
    };
    let remaining_ms = match deadline {
        Some(d) => {
            let left = d.saturating_duration_since(Instant::now()).as_millis();
            u64::try_from(left).unwrap_or(u64::MAX).max(1)
        }
        None => u64::try_from(shared.upstream_timeouts.read.as_millis()).unwrap_or(u64::MAX),
    };
    let cap_ms = hedge_read_timeout(remaining_ms, shared.hedge_after_ms, alternatives);
    let hedge_capped = cap_ms < remaining_ms;
    let _ = conn.set_read_timeout(Duration::from_millis(cap_ms));
    if conn.send_line(line).is_err() {
        if let Some(slot) = conns.get_mut(i) {
            *slot = None;
        }
        return AttemptOutcome::Failed;
    }
    match conn.read_line_into(resp) {
        Ok(0) => {
            if let Some(slot) = conns.get_mut(i) {
                *slot = None;
            }
            AttemptOutcome::Failed
        }
        // A line without its newline is a connection that died
        // mid-response (truncation): a failure, not an answer.
        Ok(_) if !resp.ends_with('\n') => {
            if let Some(slot) = conns.get_mut(i) {
                *slot = None;
            }
            AttemptOutcome::Failed
        }
        Ok(_) => AttemptOutcome::Served,
        Err(e) => {
            let timed_out = e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut;
            if let Some(slot) = conns.get_mut(i) {
                *slot = None;
            }
            if timed_out && hedge_capped {
                AttemptOutcome::HedgeTimeout
            } else {
                AttemptOutcome::Failed
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Health prober: half-open re-admission without waiting for traffic
// ---------------------------------------------------------------------------

fn prober_loop(shared: &Arc<RouterShared>, interval: Duration) {
    let probe_timeouts = Timeouts::uniform(Duration::from_millis(500));
    loop {
        // Sleep in small ticks so shutdown joins promptly.
        let wake = Instant::now() + interval;
        while Instant::now() < wake {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(READ_TICK.min(wake.saturating_duration_since(Instant::now())));
        }
        for g in &shared.groups {
            for u in &g.upstreams {
                if u.breaker.state() == BreakerState::Closed {
                    continue;
                }
                // `allow()` spends the half-open probe slot; a live
                // dispatcher may win it first — either way exactly one
                // prober records the outcome (modeled in the `conc`
                // explorer as `router_failover`).
                if !u.breaker.allow() {
                    continue;
                }
                RouterMetrics::bump(&shared.metrics.probes);
                if probe_once(u.addr, &probe_timeouts) {
                    u.breaker.record_success();
                    RouterMetrics::bump(&shared.metrics.readmissions);
                } else {
                    u.breaker.record_failure();
                }
            }
        }
    }
}

/// One `health` round trip; true means the replica answered ok.
fn probe_once(addr: SocketAddr, timeouts: &Timeouts) -> bool {
    let Ok(mut conn) = JsonlConn::connect(addr, timeouts) else {
        return false;
    };
    let mut buf = String::new();
    match conn.send_line("{\"type\":\"health\"}").and_then(|()| conn.read_line_into(&mut buf)) {
        // A truncated health response (no newline) is not healthy.
        Ok(n) if n > 0 => buf.ends_with('\n') && buf.contains("\"ok\":true"),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_request_type_handles_compact_and_spaced() {
        assert_eq!(fast_request_type(r#"{"type":"predict","company":3}"#), Some("predict"));
        assert_eq!(fast_request_type(r#"{ "type" : "health" }"#), Some("health"));
        assert_eq!(fast_request_type(r#"{"company":3}"#), None);
        assert_eq!(fast_request_type("not json"), None);
    }

    #[test]
    fn fast_field_u64_parses_plain_integers_only() {
        let line = r#"{"type":"predict","company":42,"deadline_ms":250}"#;
        assert_eq!(fast_field_u64(line, "company"), Some(42));
        assert_eq!(fast_field_u64(line, "deadline_ms"), Some(250));
        assert_eq!(fast_field_u64(r#"{"company":-1}"#, "company"), None);
        assert_eq!(fast_field_u64(r#"{"company":1.5}"#, "company"), None);
        assert_eq!(fast_field_u64(r#"{"company":1e3}"#, "company"), None);
        assert_eq!(fast_field_u64(r#"{"x":1}"#, "company"), None);
        // A same-named substring in a value must not fool the scanner.
        assert_eq!(fast_field_u64(r#"{"note":"company","company":7}"#, "company"), Some(7));
    }

    #[test]
    fn route_shard_agrees_with_the_map() {
        let map = ShardMap::contiguous(3).unwrap();
        for c in 0..50u64 {
            let line = format!(r#"{{"type":"predict","company":{c},"features":[]}}"#);
            assert_eq!(route_shard(&line, &map), Some(map.position_of(c)));
        }
        assert_eq!(route_shard(r#"{"type":"health"}"#, &map), None);
    }

    #[test]
    fn balanced_object_accepts_objects_rejects_fragments() {
        assert!(balanced_object(r#"{"a":1,"b":[1,2],"c":"}"}"#));
        assert!(balanced_object(r#"{"esc":"\""}"#));
        assert!(!balanced_object(r#"{"a":1"#));
        assert!(!balanced_object(r#"{"a":1}{"b":2}"#));
        assert!(!balanced_object(r#"[1,2,3]"#));
    }

    #[test]
    fn split_results_finds_each_object() {
        let resp = r#"{"ok":true,"results":[{"ok":true,"prediction":1.5},{"ok":false,"error":"x{y"},{"ok":true,"s":"\"}"}]}"#;
        let spans = split_results(resp).unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(&resp[spans[0].0..spans[0].1], r#"{"ok":true,"prediction":1.5}"#);
        assert_eq!(&resp[spans[1].0..spans[1].1], r#"{"ok":false,"error":"x{y"}"#);
    }

    #[test]
    fn split_predictions_handles_scalars() {
        let resp = r#"{"ok":true,"predictions":[1.5,-2.25e-3,0]}"#;
        let spans = split_predictions(resp).unwrap();
        let texts: Vec<&str> = spans.iter().map(|&(a, b)| &resp[a..b]).collect();
        assert_eq!(texts, vec!["1.5", "-2.25e-3", "0"]);
        assert_eq!(split_predictions(r#"{"ok":false}"#), None);
        assert_eq!(split_predictions(r#"{"ok":true,"predictions":[]}"#).unwrap().len(), 0);
    }

    #[test]
    fn adapt_window_shrinks_and_grows() {
        assert_eq!(adapt_window(400, 1, 32), 200, "lone request shrinks");
        assert_eq!(adapt_window(400, 32, 32), 200, "saturated queue shrinks");
        assert_eq!(adapt_window(100, 8, 32), 200, "partial batch grows");
        assert_eq!(adapt_window(0, 8, 32), 50, "growth starts at the floor");
        assert_eq!(adapt_window(MAX_WINDOW_US, 8, 32), MAX_WINDOW_US, "growth is capped");
    }

    #[test]
    fn coalesce_drain_takes_waiting_work_without_blocking() {
        let (tx, rx) = mpsc::sync_channel::<Work>(16);
        let mk = || {
            let (reply, _keep) = mpsc::sync_channel::<String>(1);
            std::mem::forget(_keep);
            Work::Single { line: String::new(), company: 0, deadline: None, reply }
        };
        for _ in 0..3 {
            tx.send(mk()).unwrap();
        }
        let mut slots: Vec<Option<Work>> = (0..8).map(|_| None).collect();
        slots[0] = Some(mk());
        let started = Instant::now();
        let n = coalesce_drain(&rx, &mut slots, Duration::ZERO);
        assert_eq!(n, 4, "one pre-filled + three waiting");
        assert!(started.elapsed() < Duration::from_millis(50), "zero window must not wait");
        assert!(slots[..4].iter().all(Option::is_some));
    }

    #[test]
    fn fanin_merge_uses_fallbacks_for_missing_groups() {
        let map = ShardMap::contiguous(2).unwrap();
        let n = 4usize;
        // Group 0 answered for everyone; group 1's response is missing.
        let resp0 = r#"{"ok":true,"predictions":[10,11,12,13]}"#.to_string();
        let spans0 = split_predictions(&resp0).unwrap();
        let responses = vec![Some(resp0.clone()), None];
        let spans = vec![Some(spans0), None];
        let mut fallback: Vec<Option<String>> = (0..n).map(|_| None).collect();
        let mut degraded = Vec::new();
        for (c, slot) in fallback.iter_mut().enumerate() {
            if map.position_of(c as u64) == 1 {
                *slot = Some(format!("{}", 90 + c));
                degraded.push(c);
            }
        }
        assert!(!degraded.is_empty(), "fixture must exercise the fallback path");
        let out = fanin_merge(n, &map, &responses, &spans, &fallback, &degraded, false);
        let v: serde::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v.get("ok").and_then(serde::Value::as_bool), Some(true));
        assert_eq!(v.get("degraded").and_then(serde::Value::as_bool), Some(true));
        let preds = v.get("predictions").and_then(serde::Value::as_array).unwrap();
        assert_eq!(preds.len(), n);
        for (c, pred) in preds.iter().enumerate() {
            let got = pred.as_f64().unwrap();
            let expect =
                if map.position_of(c as u64) == 0 { 10.0 + c as f64 } else { 90.0 + c as f64 };
            assert_eq!(got, expect, "company {c}");
        }
    }

    #[test]
    fn push_usize_matches_format() {
        for v in [0usize, 7, 10, 12345, usize::MAX] {
            let mut s = String::new();
            push_usize(&mut s, v);
            assert_eq!(s, format!("{v}"));
        }
    }
}
