//! Property tests for the rendezvous shard map: the three guarantees
//! the router's correctness rests on — total coverage of the
//! company-id space, deterministic assignment across independently
//! constructed maps (i.e. across processes), and bounded key movement
//! when the shard set changes.

use ams_cluster::ShardMap;
use proptest::prelude::*;

proptest! {
    /// Every company gets exactly one owner, and that owner is a
    /// member of the map: coverage is total, never out of range.
    #[test]
    fn every_company_is_covered(
        n in 1usize..9,
        companies in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let map = ShardMap::contiguous(n).unwrap();
        for &c in &companies {
            let owner = map.shard_of(c);
            prop_assert!(map.ids().contains(&owner), "owner {owner} not a shard id");
            let pos = map.position_of(c);
            prop_assert!(pos < map.len());
            prop_assert_eq!(map.ids()[pos], owner);
        }
    }

    /// Two maps built independently — different processes, different
    /// id order — agree on every assignment.
    #[test]
    fn assignment_is_deterministic_across_processes(
        ids in prop::collection::vec(0u32..64, 1..8),
        companies in prop::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut ids = ids;
        ids.sort_unstable();
        ids.dedup();
        let a = ShardMap::new(ids.clone()).unwrap();
        let mut reversed = ids.clone();
        reversed.reverse();
        let b = ShardMap::new(reversed).unwrap();
        for &c in &companies {
            prop_assert_eq!(a.shard_of(c), b.shard_of(c));
        }
    }

    /// Adding a shard moves keys only *to* the new shard: no key
    /// shuffles between surviving shards, and the moved fraction is
    /// in the right ballpark (≈ 1/(n+1)).
    #[test]
    fn adding_a_shard_moves_keys_only_to_it(n in 1usize..8) {
        let before = ShardMap::contiguous(n).unwrap();
        let after = ShardMap::contiguous(n + 1).unwrap();
        let new_id = n as u32;
        let universe = 3000u64;
        let mut moved = 0usize;
        for c in 0..universe {
            let old = before.shard_of(c);
            let new = after.shard_of(c);
            if old != new {
                prop_assert_eq!(new, new_id, "company {} moved {} -> {}, not to the new shard", c, old, new);
                moved += 1;
            }
        }
        // Expect ≈ universe/(n+1) moves; allow a wide band (the bound
        // that matters is structural: only-to-the-new-shard above).
        let expect = universe as usize / (n + 1);
        prop_assert!(moved > expect / 3, "moved {moved}, expected ≈ {expect}: new shard starved");
        prop_assert!(moved < expect * 3, "moved {moved}, expected ≈ {expect}: excessive movement");
    }

    /// Removing a shard moves only the keys it owned; every other
    /// assignment is untouched.
    #[test]
    fn removing_a_shard_moves_only_its_keys(
        ids in prop::collection::vec(0u32..32, 2..8),
        remove_idx in 0usize..8,
    ) {
        let mut ids = ids;
        ids.sort_unstable();
        ids.dedup();
        prop_assume!(ids.len() >= 2);
        let remove = ids[remove_idx % ids.len()];
        let survivors: Vec<u32> = ids.iter().copied().filter(|&i| i != remove).collect();
        let before = ShardMap::new(ids).unwrap();
        let after = ShardMap::new(survivors).unwrap();
        for c in 0..2000u64 {
            let old = before.shard_of(c);
            let new = after.shard_of(c);
            if old != remove {
                prop_assert_eq!(old, new, "company {} moved {} -> {} though its shard survived", c, old, new);
            } else {
                prop_assert!(new != remove);
            }
        }
    }
}
