//! Terminal line charts for the figure binaries.
//!
//! Renders multiple asset-curve series into a character grid with a
//! y-axis, per-series glyphs and a legend — enough to eyeball the shape
//! of Figures 6/7 without leaving the terminal (the binaries also write
//! CSVs for real plotting).

/// One plottable series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The values (x is the index).
    pub values: Vec<f64>,
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Render series into a `width`×`height` chart (plot area; axes add a
/// margin). Series longer than `width` are subsampled; shorter series
/// simply end early.
pub fn render(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "chart too small");
    assert!(!series.is_empty(), "no series to plot");
    let lo = series.iter().flat_map(|s| s.values.iter().copied()).fold(f64::INFINITY, f64::min);
    let hi = series.iter().flat_map(|s| s.values.iter().copied()).fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    let max_len = series.iter().map(|s| s.values.len()).max().expect("nonempty");

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        #[allow(clippy::needless_range_loop)] // col is a 2-D coordinate, not a slice walk
        for col in 0..width {
            // Sample the series position corresponding to this column.
            let idx = col * max_len.saturating_sub(1) / width.saturating_sub(1).max(1);
            if idx >= s.values.len() {
                continue;
            }
            let v = s.values[idx];
            let row = ((hi - v) / range * (height - 1) as f64).round() as usize;
            let row = row.min(height - 1);
            // Later series overwrite earlier ones where they collide.
            grid[row][col] = glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:>10.2} ")
        } else if r == height - 1 {
            format!("{lo:>10.2} ")
        } else {
            " ".repeat(11)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(11));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    // Legend.
    out.push_str(&" ".repeat(12));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, s)| format!("{} {}", GLYPHS[si % GLYPHS.len()], s.label))
        .collect();
    out.push_str(&legend.join("   "));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(chart: &str) -> Vec<&str> {
        chart.lines().collect()
    }

    #[test]
    fn renders_expected_dimensions() {
        let s = vec![Series { label: "a".into(), values: (0..50).map(|i| i as f64).collect() }];
        let chart = render(&s, 40, 10);
        let lines = lines_of(&chart);
        // height rows + axis + legend.
        assert_eq!(lines.len(), 12);
        assert!(lines[0].contains("49.00"));
        assert!(lines[9].contains("0.00"));
    }

    #[test]
    fn monotone_series_is_monotone_on_grid() {
        let s = vec![Series { label: "up".into(), values: (0..100).map(|i| i as f64).collect() }];
        let chart = render(&s, 30, 8);
        // The glyph in the first column must be on a lower row (visually
        // lower = larger row index) than in the last column.
        let lines = lines_of(&chart);
        let col_of = |line: &str| line.rfind('*');
        let mut first_row = None;
        let mut last_row = None;
        for (r, line) in lines.iter().enumerate().take(8) {
            let body = &line[12..];
            if body.starts_with('*') {
                first_row = Some(r);
            }
            if let Some(pos) = col_of(body) {
                if pos == body.len() - 1 {
                    last_row = Some(r);
                }
            }
        }
        let (f, l) = (first_row.expect("first col plotted"), last_row.expect("last col plotted"));
        assert!(f > l, "rising series should end higher on screen: first row {f}, last row {l}");
    }

    #[test]
    fn legend_names_every_series() {
        let s = vec![
            Series { label: "AMS".into(), values: vec![1.0, 2.0] },
            Series { label: "Ridge".into(), values: vec![2.0, 1.0] },
        ];
        let chart = render(&s, 20, 5);
        assert!(chart.contains("* AMS"));
        assert!(chart.contains("o Ridge"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = vec![Series { label: "flat".into(), values: vec![5.0; 10] }];
        let chart = render(&s, 12, 4);
        assert!(chart.contains('*'));
    }

    #[test]
    #[should_panic(expected = "no series")]
    fn empty_input_panics() {
        render(&[], 20, 5);
    }
}
