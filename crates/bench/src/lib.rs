//! # ams-bench — experiment binaries and micro-benchmarks
//!
//! One binary per paper artifact (`table1` … `table5`, `figure5` …
//! `figure8`, plus the `ablation_*` design-choice studies), all driven
//! by the shared runner in [`exp`]. Criterion micro-benchmarks for the
//! substrate kernels live under `benches/`.

pub mod chart;
pub mod exp;
