//! Static tape-IR audit of the AMS training graph across every
//! Table III ablation variant (plus the architecture knobs: residual
//! off, slave-column subset, reduced widths).
//!
//! For each variant this records one real epoch-0 training graph via
//! `AmsModel::training_audit` — phase-1 anchored LR, warm-started
//! parameters, dropout masks and all — and runs the full `ams-analyze`
//! pass suite over its plan: symbolic shape inference, gradient
//! reachability of every parameter from Γ_master, dead-node /
//! duplicate detection and numerical-risk rules. CI runs this next to
//! `ams-check`: exit 1 if any variant's graph carries an
//! error-severity finding.

use ams_analyze::{analyze, PlanAudit};
use ams_core::{AmsConfig, AmsModel, QuarterBatch};
use ams_graph::CompanyGraph;
use ams_tensor::init::standard_normal;
use ams_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

/// Small synthetic universe with the same structure the experiment
/// harness feeds `fit`: one feature matrix and label column per
/// quarter, rows aligned to graph nodes.
fn synthetic_quarters(
    n: usize,
    d: usize,
    quarters: usize,
    seed: u64,
) -> (CompanyGraph, Vec<QuarterBatch>) {
    let graph = CompanyGraph::complete(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let train = (0..quarters)
        .map(|_| {
            let mut x = Matrix::zeros(n, d);
            let mut y = Matrix::zeros(n, 1);
            for i in 0..n {
                for j in 0..d {
                    x[(i, j)] = standard_normal(&mut rng);
                }
                y[(i, 0)] = x[(i, 0)] - 0.5 * x[(i, 1)] + 0.05 * standard_normal(&mut rng);
            }
            QuarterBatch { x, y }
        })
        .collect();
    (graph, train)
}

fn main() -> ExitCode {
    let base = AmsConfig { epochs: 1, ..Default::default() };
    let variants: Vec<(&str, AmsConfig)> = vec![
        ("AMS (full)", base.clone()),
        ("w/o supervised gen (λ_slg=0)", AmsConfig { lambda_slg: 0.0, ..base.clone() }),
        ("w/o assembly (γ=1)", AmsConfig { gamma: 1.0, ..base.clone() }),
        ("Γ₁ only (γ=1, λ_slg=0)", AmsConfig { gamma: 1.0, lambda_slg: 0.0, ..base.clone() }),
        ("global only (γ=0)", AmsConfig { gamma: 0.0, ..base.clone() }),
        ("w/o residual skip", AmsConfig { residual: false, ..base.clone() }),
        ("slave columns subset", AmsConfig { slave_cols: Some(vec![0, 2, 4]), ..base.clone() }),
        (
            "reduced widths (-na regime)",
            AmsConfig {
                nt_hidden: vec![16],
                gat_hidden: 4,
                gat_heads: 2,
                gat_out: 8,
                gen_hidden: vec![16],
                ..base.clone()
            },
        ),
        ("no dropout", AmsConfig { dropout: 0.0, ..base }),
    ];

    let (graph, train) = synthetic_quarters(12, 6, 3, 2024);
    println!("{:<32} {:>7} {:>7} {:>7} {:>7}", "Variant", "nodes", "params", "errors", "warns");
    let mut failed = false;
    for (name, config) in variants {
        let mut model = AmsModel::new(config);
        let audit = model.training_audit(&graph, &train);
        let nodes = audit.plan.len();
        let n_params = audit.params.len();
        let report =
            analyze(&PlanAudit { plan: audit.plan, params: audit.params, loss: Some(audit.loss) });
        println!(
            "{:<32} {:>7} {:>7} {:>7} {:>7}",
            name,
            nodes,
            n_params,
            report.errors(),
            report.warnings()
        );
        if report.has_errors() {
            failed = true;
            for d in &report.diagnostics {
                println!("  {}", d.render_text().replace('\n', "\n  "));
            }
        }
    }
    if failed {
        eprintln!("graph_audit: at least one variant's training graph has error findings");
        ExitCode::from(1)
    } else {
        println!("all variants clean: every parameter reachable, all shapes consistent");
        ExitCode::SUCCESS
    }
}
