//! Table II: SR (Surprise Ratio) comparison with one-sample t-tests of
//! each model's per-quarter SR series against 1 (analysts' consensus),
//! averaged over several panel realizations.

use ams_bench::exp::{per_quarter_means, run_lineup, Dataset, N_SEEDS};
use ams_eval::report::{build_rows, format_sr_table};

fn main() {
    for dataset in [Dataset::Transaction, Dataset::MapQuery] {
        eprintln!("== dataset: {} ==", dataset.name());
        let (_panel, results) = run_lineup(dataset);
        let rows = build_rows(&results, "AMS");
        println!("\nTable II — SR on {} dataset (mean over {N_SEEDS} panel seeds)", dataset.name());
        println!("{}", format_sr_table(&rows, &[]));
        if dataset == Dataset::MapQuery {
            println!("Per-quarter means (across seeds):");
            for r in &results {
                let cells: Vec<String> = per_quarter_means(r)
                    .into_iter()
                    .map(|(l, _, sr)| format!("SR({l})={sr:.3}"))
                    .collect();
                println!("  {:<12} {}", r.model, cells.join("  "));
            }
        }
    }
}
