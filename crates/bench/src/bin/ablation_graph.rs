//! Design-choice ablation: the company correlation graph (§III-C).
//!
//! Sensitivity of AMS to the graph structure: top-k for k ∈ {2, 5, 10,
//! 20}, an edgeless graph (self-loops only — the GAT degenerates to
//! per-node transforms), a complete graph (attention over everyone),
//! and a random graph of the same mean degree (does *correlation*
//! structure matter, or just having edges?).

use ams_bench::exp::{Dataset, MODEL_SEED};
use ams_core::AmsConfig;
use ams_data::{CvSchedule, FeatureSet, Panel};
use ams_eval::harness::run_ams_fold_with_graph;
use ams_eval::metrics::{bounded_accuracy, mean_surprise_ratio};
use ams_eval::EvalOptions;
use ams_graph::{CompanyGraph, GraphConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type GraphBuilder = Box<dyn Fn(&Panel, usize) -> CompanyGraph>;

fn topk(k: usize) -> GraphBuilder {
    Box::new(move |panel, test_q| {
        let series = panel.all_revenue_series(0, test_q);
        CompanyGraph::from_series(&series, GraphConfig { k, ..Default::default() })
    })
}

fn random_graph(k: usize, seed: u64) -> GraphBuilder {
    Box::new(move |panel, test_q| {
        let n = panel.num_companies();
        let mut rng = StdRng::seed_from_u64(seed ^ test_q as u64);
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut v = vec![i as u32];
                while v.len() < k + 1 {
                    let j = rng.gen_range(0..n) as u32;
                    if !v.contains(&j) {
                        v.push(j);
                    }
                }
                v
            })
            .collect();
        CompanyGraph::from_adjacency(adj)
    })
}

fn main() {
    let dataset = Dataset::Transaction;
    let panel = dataset.panel();
    let opts = EvalOptions::paper_for(&panel);
    let fs = FeatureSet::build(&panel, opts.k);
    let schedule = CvSchedule::paper(panel.num_quarters(), opts.k, opts.n_folds);
    let config = AmsConfig { seed: MODEL_SEED, ..Default::default() };

    let variants: Vec<(String, GraphBuilder)> = vec![
        ("top-k, k=2".into(), topk(2)),
        ("top-k, k=5 (paper)".into(), topk(5)),
        ("top-k, k=10".into(), topk(10)),
        ("top-k, k=20".into(), topk(20)),
        (
            "isolated (self-loops)".into(),
            Box::new(|p: &Panel, _| CompanyGraph::isolated(p.num_companies())),
        ),
        ("complete".into(), Box::new(|p: &Panel, _| CompanyGraph::complete(p.num_companies()))),
        ("random, degree≈5".into(), random_graph(5, 9001)),
    ];

    println!("Graph-structure ablation on {} dataset", dataset.name());
    println!("{:<24} {:>9} {:>9}", "Graph", "BA", "SR");
    for (name, builder) in &variants {
        eprintln!("  running {name} ...");
        let mut preds = Vec::new();
        let mut actuals = Vec::new();
        for fold in schedule.folds() {
            let (records, _, _) = run_ams_fold_with_graph(&panel, &fs, fold, &config, builder);
            preds.extend(records.iter().map(|r| r.pred_ur));
            actuals.extend(records.iter().map(|r| r.actual_ur));
        }
        println!(
            "{:<24} {:>9.3} {:>9.4}",
            name,
            bounded_accuracy(&preds, &actuals),
            mean_surprise_ratio(&preds, &actuals)
        );
    }
}
