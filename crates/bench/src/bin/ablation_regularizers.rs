//! Design-choice ablation: the two regularization techniques of §III-E.
//!
//! Compares full AMS against variants with supervised LR generation
//! disabled (λ_slg = 0), model assembly disabled (γ = 1), the pure
//! generated-LR objective Γ₁ of Eq. 7 (both off), and the degenerate
//! global model (γ = 0 — the slave never adapts). The paper motivates
//! both techniques as overfitting control for the generated slave
//! models; this bench quantifies that on the transaction panel.

use ams_bench::exp::{run_cached_seed, Dataset, DATA_SEED, MODEL_SEED, N_SEEDS};
use ams_core::AmsConfig;
use ams_eval::ModelKind;

fn main() {
    let dataset = Dataset::Transaction;
    let panel = dataset.panel();
    let base = AmsConfig { seed: MODEL_SEED, ..Default::default() };
    let variants: Vec<(&str, AmsConfig)> = vec![
        ("AMS (full)", base.clone()),
        ("AMS w/o supervised gen (λ_slg=0)", AmsConfig { lambda_slg: 0.0, ..base.clone() }),
        ("AMS w/o assembly (γ=1)", AmsConfig { gamma: 1.0, ..base.clone() }),
        ("Γ₁ only (γ=1, λ_slg=0)", AmsConfig { gamma: 1.0, lambda_slg: 0.0, ..base.clone() }),
        ("global only (γ=0)", AmsConfig { gamma: 0.0, ..base.clone() }),
    ];
    let _ = &panel;
    println!("Regularizer ablation on {} dataset (mean over {N_SEEDS} seeds)", dataset.name());
    println!("{:<36} {:>9} {:>9}", "Variant", "BA", "SR");
    for (name, config) in variants {
        // Cache key comes from the model name; vary it per variant via
        // a wrapper directory.
        std::env::set_var(
            "AMS_RESULTS_DIR",
            format!("results/ablation_regularizers/{}", sanitize(name)),
        );
        let kind = ModelKind::Ams { config, graph_k: 5 };
        let (mut ba, mut sr) = (0.0, 0.0);
        for seed in DATA_SEED..DATA_SEED + N_SEEDS {
            eprintln!("  running {name} (seed {seed}) ...");
            let panel = dataset.panel_for_seed(seed);
            let cv = run_cached_seed(dataset, &panel, &kind, false, seed);
            ba += cv.mean_ba();
            sr += cv.mean_sr();
        }
        println!("{:<36} {:>9.3} {:>9.4}", name, ba / N_SEEDS as f64, sr / N_SEEDS as f64);
    }
}

fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}
