//! Table IV: backtest on the transaction dataset (Earning, MDD,
//! Sharpe-vs-AMS, AER), over the seven CV test quarters.

use ams_bench::exp::{print_backtest_table, run_backtests, Dataset};

fn main() {
    let results = run_backtests(Dataset::Transaction);
    print_backtest_table("Table IV", Dataset::Transaction, &results);
}
