//! Table I: BA (Bounded Accuracy) comparison with paired t-tests vs
//! AMS, on both datasets, averaged over several panel realizations.

use ams_bench::exp::{per_quarter_means, run_lineup, Dataset, N_SEEDS};
use ams_eval::report::{build_rows, format_ba_table};

fn main() {
    for dataset in [Dataset::Transaction, Dataset::MapQuery] {
        eprintln!("== dataset: {} ==", dataset.name());
        let (_panel, results) = run_lineup(dataset);
        let rows = build_rows(&results, "AMS");
        println!("\nTable I — BA on {} dataset (mean over {N_SEEDS} panel seeds)", dataset.name());
        println!("{}", format_ba_table(&rows, &[]));
        if dataset == Dataset::MapQuery {
            println!("Per-quarter means (across seeds):");
            for r in &results {
                let cells: Vec<String> = per_quarter_means(r)
                    .into_iter()
                    .map(|(l, ba, _)| format!("BA({l})={ba:.2}"))
                    .collect();
                println!("  {:<12} {}", r.model, cells.join("  "));
            }
        }
    }
}
