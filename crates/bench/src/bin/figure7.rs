//! Figure 7: daily asset curves of every strategy on the map-query
//! dataset. Writes `results/figure7.csv` and prints ASCII sparklines.

use ams_bench::exp::{results_dir, run_backtests, write_curves_csv, Dataset};

fn main() {
    let results = run_backtests(Dataset::MapQuery);
    let path = results_dir().join("figure7.csv");
    write_curves_csv(&path, &results);
    println!("Figure 7 — asset curves on map-query dataset (CSV: {})", path.display());
    for r in &results {
        println!("{:<12} {}", r.model, ams_bench::exp::sparkline(&r.asset_curve));
    }
    let series: Vec<ams_bench::chart::Series> = results
        .iter()
        .map(|r| ams_bench::chart::Series { label: r.model.clone(), values: r.asset_curve.clone() })
        .collect();
    println!("\n{}", ams_bench::chart::render(&series, 90, 20));
}
