//! Chaos benchmark: measured resilience numbers for the serving stack.
//!
//! Four scenarios against a real [`ams_serve::Server`] over TCP:
//!
//! 1. **Shed** — park the only worker, burst more connections than the
//!    admission queue holds, and measure the shed rate (every refused
//!    connection gets an explicit `{"shed":true}` line, never a hang).
//! 2. **Degraded path** — client-side p50/p99 latency of requests
//!    answered by the fallback predictor (unknown company) next to the
//!    healthy path's, so the cost of degradation is a number.
//! 3. **Recovery** — publish a corrupt model, trip its circuit breaker,
//!    hot-swap a good version, and time until the first healthy
//!    (non-degraded) response.
//! 4. **Storm** — a seeded fault plan corrupting request bytes,
//!    stalling and truncating connections, delaying workers and
//!    poisoning features, driven by reconnecting clients; the server
//!    must finish healthy.
//!
//! Writes `results/BENCH_fault.json` (override the directory with
//! `AMS_RESULTS_DIR`). Build with `--release`; the latency numbers are
//! not meaningful in debug.

use ams_bench::exp::results_dir;
use ams_fault::{FaultSite, SeededFaults};
use ams_serve::demo::train_demo;
use ams_serve::{BreakerConfig, ModelArtifact, Registry, Server, ServerConfig};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const STORM_SEED: u64 = 7;
const BURST: usize = 32;
const SHED_QUEUE: usize = 2;
const LATENCY_ITERS: usize = 300;
const BREAKER_THRESHOLD: u32 = 3;
const BREAKER_COOLDOWN_MS: u64 = 150;
const STORM_REQUESTS_PER_CLIENT: usize = 60;
const STORM_CLIENTS: usize = 4;

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// One request/response round trip; `None` if the connection died.
fn round_trip(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &str,
) -> Option<Value> {
    writer.write_all(request.as_bytes()).ok()?;
    writer.write_all(b"\n").ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    if line.trim().is_empty() {
        return None;
    }
    serde_json::from_str(line.trim()).ok()
}

fn features_json(row: &[f64]) -> String {
    let parts: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", parts.join(","))
}

fn predict_request(company: usize, row: &[f64]) -> String {
    format!(r#"{{"type":"predict","company":{company},"features":{}}}"#, features_json(row))
}

fn batch_request(x: &ams_tensor::Matrix) -> String {
    let rows: Vec<String> = (0..x.rows()).map(|i| features_json(x.row(i))).collect();
    format!(r#"{{"type":"batch_predict","features":[{}]}}"#, rows.join(","))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Scenario 1: burst past the admission queue with the worker pinned.
/// Returns `(shed responses seen by clients, shed count from metrics)`.
fn shed_scenario(artifact: ModelArtifact) -> (usize, u64) {
    let registry = Arc::new(Registry::new());
    registry.publish(artifact).expect("publish");
    let server = Server::start(
        ServerConfig {
            workers: 1,
            queue_capacity: SHED_QUEUE,
            idle_timeout_ms: 0,
            ..Default::default()
        },
        registry,
    )
    .expect("server");
    let addr = server.local_addr().to_string();

    // Pin the only worker: a health round trip proves it owns this
    // connection, and keeping the connection open keeps it owned.
    let (mut pin_w, mut pin_r) = connect(&addr);
    round_trip(&mut pin_w, &mut pin_r, r#"{"type":"health"}"#).expect("pin health");

    // Burst: the first SHED_QUEUE connections queue, the rest must be
    // shed with an explicit line (read timeout tells them apart from
    // the queued ones, which receive nothing).
    let mut burst = Vec::with_capacity(BURST);
    for _ in 0..BURST {
        let (w, r) = connect(&addr);
        w.set_read_timeout(Some(Duration::from_millis(800))).ok();
        burst.push((w, r));
    }
    let mut shed_seen = 0usize;
    for (_, reader) in &mut burst {
        let mut line = String::new();
        if reader.read_line(&mut line).is_ok()
            && serde_json::from_str::<Value>(line.trim())
                .ok()
                .and_then(|v| v.get("shed").and_then(Value::as_bool))
                == Some(true)
        {
            shed_seen += 1;
        }
    }
    let shed_metric = server.metrics().snapshot().shed;
    drop(burst);
    drop((pin_w, pin_r));
    server.shutdown();
    (shed_seen, shed_metric)
}

/// Scenario 2: healthy vs degraded (fallback) latency, client-side µs.
/// Returns `(healthy_p50, healthy_p99, degraded_p50, degraded_p99)`.
fn latency_scenario(artifact: ModelArtifact, x: &ams_tensor::Matrix) -> (f64, f64, f64, f64) {
    let registry = Arc::new(Registry::new());
    registry.publish(artifact).expect("publish");
    let server =
        Server::start(ServerConfig { workers: 2, ..Default::default() }, registry).expect("server");
    let addr = server.local_addr().to_string();
    let (mut w, mut r) = connect(&addr);

    let mut measure = |company: usize, expect_degraded: bool| -> Vec<f64> {
        let request = predict_request(company, x.row(0));
        let mut lat = Vec::with_capacity(LATENCY_ITERS);
        for i in 0..LATENCY_ITERS + 10 {
            let t = Instant::now();
            let resp = round_trip(&mut w, &mut r, &request).expect("predict");
            let dt = t.elapsed().as_secs_f64() * 1e6;
            assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
            let degraded = resp.get("degraded").and_then(Value::as_bool) == Some(true);
            assert_eq!(degraded, expect_degraded, "degraded tag mismatch");
            if i >= 10 {
                lat.push(dt);
            }
        }
        lat.sort_by(f64::total_cmp);
        lat
    };

    let healthy = measure(0, false);
    // A company the model has never seen: answered by the fallback
    // ladder, tagged degraded.
    let degraded = measure(x.rows() + 1000, true);
    server.shutdown();
    (
        percentile(&healthy, 0.5),
        percentile(&healthy, 0.99),
        percentile(&degraded, 0.5),
        percentile(&degraded, 0.99),
    )
}

/// Scenario 3: corrupt model trips the breaker; hot-swapping a good
/// version heals it after the cooldown. Returns
/// `(requests until open, recovery ms from publish to healthy answer)`.
fn recovery_scenario(
    good: ModelArtifact,
    corrupt: ModelArtifact,
    x: &ams_tensor::Matrix,
) -> (usize, f64) {
    let registry = Arc::new(Registry::with_breaker_config(BreakerConfig {
        failure_threshold: BREAKER_THRESHOLD,
        cooldown: Duration::from_millis(BREAKER_COOLDOWN_MS),
    }));
    registry.publish(corrupt).expect("publish corrupt");
    let server =
        Server::start(ServerConfig { workers: 1, ..Default::default() }, Arc::clone(&registry))
            .expect("server");
    let addr = server.local_addr().to_string();
    let (mut w, mut r) = connect(&addr);

    // Batch predictions hit the corrupted generator weights: each is
    // answered degraded ("engine error") and counts against the
    // breaker until it opens.
    let batch = batch_request(x);
    let mut until_open = 0usize;
    loop {
        let resp = round_trip(&mut w, &mut r, &batch).expect("batch");
        assert_eq!(resp.get("degraded").and_then(Value::as_bool), Some(true));
        until_open += 1;
        let reason = resp.get("degraded_reason").and_then(Value::as_str).unwrap_or("");
        if reason == "circuit open" {
            break;
        }
        assert!(until_open <= BREAKER_THRESHOLD as usize + 1, "breaker never opened");
    }

    // Heal: publish a good version, then poll until a non-degraded
    // answer arrives. The breaker holds requests on the fallback until
    // the cooldown elapses and a half-open probe succeeds.
    let publish_at = Instant::now();
    registry.publish(good).expect("publish good");
    let probe = predict_request(0, x.row(0));
    let recovery_ms = loop {
        let resp = round_trip(&mut w, &mut r, &probe).expect("probe");
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        if resp.get("degraded").and_then(Value::as_bool) != Some(true) {
            break publish_at.elapsed().as_secs_f64() * 1e3;
        }
        assert!(publish_at.elapsed() < Duration::from_secs(10), "never recovered");
        std::thread::sleep(Duration::from_millis(5));
    };
    server.shutdown();
    (until_open, recovery_ms)
}

/// Scenario 4: seeded fault storm. Returns
/// `(ok, degraded, errors, reconnects, finished healthy)`.
fn storm_scenario(artifact: ModelArtifact, x: &ams_tensor::Matrix) -> (u64, u64, u64, u64, bool) {
    let faults = Arc::new(
        SeededFaults::new(STORM_SEED)
            .with_rule(FaultSite::RequestBytes, 0.25, u64::MAX)
            .with_rule(FaultSite::ConnectionStall, 0.10, u64::MAX)
            .with_rule(FaultSite::ConnectionTruncate, 0.15, u64::MAX)
            .with_rule(FaultSite::WorkerDelay, 0.20, u64::MAX)
            .with_rule(FaultSite::Features, 0.20, u64::MAX),
    );
    let registry = Arc::new(Registry::new());
    registry.publish(artifact).expect("publish");
    let server = Server::start(
        ServerConfig { workers: 4, faults: Some(faults), ..Default::default() },
        registry,
    )
    .expect("server");
    let addr = server.local_addr().to_string();

    let handles: Vec<_> = (0..STORM_CLIENTS)
        .map(|client| {
            let addr = addr.clone();
            let row = x.row(client % x.rows()).to_vec();
            std::thread::spawn(move || {
                let (mut ok, mut degraded, mut errors, mut reconnects) = (0u64, 0u64, 0u64, 0u64);
                let (mut w, mut r) = connect(&addr);
                for i in 0..STORM_REQUESTS_PER_CLIENT {
                    let request = predict_request(i % 8, &row);
                    match round_trip(&mut w, &mut r, &request) {
                        Some(resp) => {
                            if resp.get("ok").and_then(Value::as_bool) == Some(true) {
                                if resp.get("degraded").and_then(Value::as_bool) == Some(true) {
                                    degraded += 1;
                                } else {
                                    ok += 1;
                                }
                            } else {
                                // Corrupted bytes → an error line, by design.
                                errors += 1;
                            }
                        }
                        None => {
                            // Truncated mid-response: reconnect and go on.
                            reconnects += 1;
                            let c = connect(&addr);
                            (w, r) = c;
                        }
                    }
                }
                (ok, degraded, errors, reconnects)
            })
        })
        .collect();
    let mut totals = (0u64, 0u64, 0u64, 0u64);
    for h in handles {
        let (ok, degraded, errors, reconnects) = h.join().expect("storm client");
        totals.0 += ok;
        totals.1 += degraded;
        totals.2 += errors;
        totals.3 += reconnects;
    }

    // After the storm the server must still answer health cleanly on a
    // fresh connection (faults may still fire on it, so retry).
    let mut survived = false;
    for _ in 0..20 {
        let (mut w, mut r) = connect(&addr);
        if let Some(resp) = round_trip(&mut w, &mut r, r#"{"type":"health"}"#) {
            if resp.get("ok").and_then(Value::as_bool) == Some(true) {
                survived = true;
                break;
            }
        }
    }
    server.shutdown();
    (totals.0, totals.1, totals.2, totals.3, survived)
}

/// The demo artifact with its generator weights corrupted to NaN: the
/// typed engine path detects the non-finite output and reports an
/// engine failure (never a panic, never a NaN on the wire).
fn corrupted(mut artifact: ModelArtifact) -> ModelArtifact {
    artifact.version = 1;
    let last = artifact.snapshot.gen.last_mut().expect("gen layers");
    last.w[(0, 0)] = f64::NAN;
    artifact
}

fn main() {
    println!("chaos bench: training demo model (seed {STORM_SEED})...");
    let bundle = train_demo(STORM_SEED);
    let artifact = bundle.artifact;
    let x = bundle.test_x;
    let mut good_v2 = artifact.clone();
    good_v2.version = 2;

    let (shed_seen, shed_metric) = shed_scenario(artifact.clone());
    let shed_rate = shed_metric as f64 / BURST as f64;
    println!(
        "  shed: burst {BURST} vs queue {SHED_QUEUE} → {shed_metric} shed \
         ({shed_seen} explicit shed lines, rate {shed_rate:.2})"
    );

    let (h50, h99, d50, d99) = latency_scenario(artifact.clone(), &x);
    println!(
        "  latency: healthy p50 {h50:.0}us p99 {h99:.0}us · degraded p50 {d50:.0}us p99 {d99:.0}us"
    );

    let (until_open, recovery_ms) = recovery_scenario(good_v2, corrupted(artifact.clone()), &x);
    println!(
        "  recovery: breaker open after {until_open} failing requests, \
         healthy {recovery_ms:.0} ms after hot-swap (cooldown {BREAKER_COOLDOWN_MS} ms)"
    );

    let (ok, degraded, errors, reconnects, survived) = storm_scenario(artifact, &x);
    println!(
        "  storm: {ok} ok · {degraded} degraded · {errors} error lines · \
         {reconnects} reconnects · survived={survived}"
    );
    assert!(survived, "server did not answer health after the storm");

    let json = format!(
        "{{\n  \"shed\": {{\"burst\": {BURST}, \"queue_capacity\": {SHED_QUEUE}, \
         \"shed\": {shed_metric}, \"shed_lines_seen\": {shed_seen}, \
         \"shed_rate\": {shed_rate:.4}}},\n  \
         \"latency\": {{\"iters\": {LATENCY_ITERS}, \"healthy_p50_us\": {h50:.1}, \
         \"healthy_p99_us\": {h99:.1}, \"degraded_p50_us\": {d50:.1}, \
         \"degraded_p99_us\": {d99:.1}}},\n  \
         \"recovery\": {{\"failure_threshold\": {BREAKER_THRESHOLD}, \
         \"cooldown_ms\": {BREAKER_COOLDOWN_MS}, \"requests_until_open\": {until_open}, \
         \"recovery_ms\": {recovery_ms:.1}}},\n  \
         \"storm\": {{\"seed\": {STORM_SEED}, \"clients\": {STORM_CLIENTS}, \
         \"requests_per_client\": {STORM_REQUESTS_PER_CLIENT}, \"ok\": {ok}, \
         \"degraded\": {degraded}, \"error_lines\": {errors}, \
         \"reconnects\": {reconnects}, \"server_survived\": {survived}}}\n}}\n"
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_fault.json");
    std::fs::write(&path, json).expect("write BENCH_fault.json");
    println!("wrote {}", path.display());
}
