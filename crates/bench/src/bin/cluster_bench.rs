//! Cluster chaos benchmark: measured fault-tolerance numbers for the
//! sharded serving topology (router + shard processes over loopback).
//!
//! Unlike `chaos_bench` (one in-process server), every server here is
//! a real OS process — the router binary fronting `serve` shard
//! binaries — so the failures are real process failures:
//!
//! 1. **Throughput** — aggregate req/s through the router over a
//!    2-replica + 1-solo topology next to a single-process baseline on
//!    the same hardware. The ≥5× scaling target needs one core per
//!    process; this records the measured ratio plus the core count so
//!    the number is honest wherever it was produced.
//! 2. **Stall + re-admission** — SIGSTOP one replica mid-load at a
//!    seeded offset: requests must keep succeeding (hedged failover to
//!    the sibling replica, zero degraded), and after SIGCONT the
//!    router's health probes must re-admit the replica (breaker back
//!    to closed), timed.
//! 3. **Kill** — SIGKILL the solo shard mid-load: its companies must
//!    degrade to typed `{"degraded":true}` fallbacks — never an error
//!    line, never a dropped connection — while the surviving group
//!    stays healthy; failover latency is the gap from kill to the
//!    first typed fallback.
//! 4. **Corrupt artifact** — a shard started on a bit-flipped `AMS-ART`
//!    file must refuse to serve (checksum rejection at startup).
//!
//! The kill/stall offsets are derived from a seed via `ams_fault::mix64`,
//! so the chaos schedule is deterministic. Writes
//! `results/BENCH_scale.json` (override with `AMS_RESULTS_DIR`). Run
//! in `--release` after building the `serve` and `router` binaries.

use ams_bench::exp::results_dir;
use ams_cluster::ShardMap;
use ams_fault::mix64;
use ams_serve::demo::train_demo;
use ams_serve::Registry;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CHAOS_SEED: u64 = 11;
const CLIENTS: usize = 4;
const SHARD_WORKERS: usize = 4;
const ROUTER_WORKERS: usize = 8;
const MEASURE_MS: u64 = 2_000;
const STALL_WINDOW_MS: u64 = 3_000;
const KILL_WINDOW_MS: u64 = 2_500;
const PROBE_MS: u64 = 200;
const HEDGE_MS: u64 = 120;
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(20);
const READY_TIMEOUT: Duration = Duration::from_secs(30);

/// Child processes killed on drop, so a panicking scenario never
/// leaves orphan servers holding ports.
struct Procs(Vec<(String, Child)>);

impl Procs {
    fn push(&mut self, name: &str, child: Child) {
        self.0.push((name.to_string(), child));
    }
    fn kill(&mut self, name: &str) {
        for (n, c) in &mut self.0 {
            if n == name {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }
    fn pid(&self, name: &str) -> u32 {
        self.0.iter().find(|(n, _)| n == name).expect("known process").1.id()
    }
}

impl Drop for Procs {
    fn drop(&mut self) {
        for (_, c) in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn signal(pid: u32, sig: &str) {
    let status =
        Command::new("kill").arg(sig).arg(pid.to_string()).status().expect("spawn kill(1)");
    assert!(status.success(), "kill {sig} {pid} failed");
}

/// Reserve a loopback port by binding and dropping. Racy in theory,
/// fine for a bench that owns the machine for its lifetime.
fn free_port() -> u16 {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    l.local_addr().expect("local addr").port()
}

fn bin_path(name: &str) -> PathBuf {
    let mut p = std::env::current_exe().expect("current exe");
    p.pop();
    p.push(name);
    if !p.exists() {
        eprintln!(
            "cluster_bench: {} not found — build it first:\n  cargo build --release -p ams-serve -p ams-cluster",
            p.display()
        );
        std::process::exit(2);
    }
    p
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT)).ok();
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// One round trip; `None` if the connection died or timed out.
fn round_trip(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &str,
) -> Option<Value> {
    writer.write_all(request.as_bytes()).ok()?;
    writer.write_all(b"\n").ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    if line.trim().is_empty() {
        return None;
    }
    serde_json::from_str(line.trim()).ok()
}

fn wait_healthy(addr: &str, what: &str) {
    let start = Instant::now();
    loop {
        if let Ok(stream) = TcpStream::connect(addr) {
            stream.set_read_timeout(Some(Duration::from_millis(500))).ok();
            let mut w = stream.try_clone().expect("clone");
            let mut r = BufReader::new(stream);
            if let Some(resp) = round_trip(&mut w, &mut r, r#"{"type":"health"}"#) {
                if resp.get("ok").and_then(Value::as_bool) == Some(true) {
                    return;
                }
            }
        }
        assert!(start.elapsed() < READY_TIMEOUT, "{what} at {addr} never became healthy");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn features_json(row: &[f64]) -> String {
    let parts: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", parts.join(","))
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Class {
    Ok,
    Degraded,
    Shed,
    ErrorLine,
    IoError,
}

fn classify(resp: Option<&Value>) -> Class {
    match resp {
        None => Class::IoError,
        Some(v) => {
            if v.get("ok").and_then(Value::as_bool) == Some(true) {
                if v.get("degraded").and_then(Value::as_bool) == Some(true) {
                    Class::Degraded
                } else {
                    Class::Ok
                }
            } else if v.get("shed").and_then(Value::as_bool) == Some(true) {
                Class::Shed
            } else {
                Class::ErrorLine
            }
        }
    }
}

/// One classified response: milliseconds since the window opened,
/// request latency, company asked for, and what came back.
struct Sample {
    at_ms: f64,
    latency_ms: f64,
    company: u64,
    class: Class,
}

/// Drive `CLIENTS` persistent connections against `addr` for
/// `duration`, cycling the company universe, recording every response.
fn drive(addr: &str, requests: &Arc<Vec<String>>, duration: Duration) -> Vec<Sample> {
    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let addr = addr.to_string();
            let requests = Arc::clone(requests);
            std::thread::spawn(move || {
                let (mut w, mut r) = connect(&addr);
                let mut samples = Vec::new();
                let mut i = client; // stagger companies across clients
                while start.elapsed() < duration {
                    let company = (i % requests.len()) as u64;
                    let t = Instant::now();
                    let resp = round_trip(&mut w, &mut r, &requests[i % requests.len()]);
                    let class = classify(resp.as_ref());
                    samples.push(Sample {
                        at_ms: start.elapsed().as_secs_f64() * 1e3,
                        latency_ms: t.elapsed().as_secs_f64() * 1e3,
                        company,
                        class,
                    });
                    if class == Class::IoError {
                        // A dead connection would otherwise spin: make
                        // the failure visible once and re-establish.
                        let c = connect(&addr);
                        (w, r) = c;
                    }
                    i += 1;
                }
                samples
            })
        })
        .collect();
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("load client"));
    }
    all
}

fn count(samples: &[Sample], class: Class) -> usize {
    samples.iter().filter(|s| s.class == class).count()
}

/// Query the router's stats endpoint over a persistent control
/// connection and return the breaker state of `upstream_addr`.
fn upstream_state(
    w: &mut TcpStream,
    r: &mut BufReader<TcpStream>,
    upstream_addr: &str,
) -> Option<String> {
    let resp = round_trip(w, r, r#"{"type":"stats"}"#)?;
    for u in resp.get("upstreams").and_then(Value::as_array)? {
        if u.get("addr").and_then(Value::as_str) == Some(upstream_addr) {
            return u.get("state").and_then(Value::as_str).map(str::to_string);
        }
    }
    None
}

fn stat(resp: &Value, name: &str) -> u64 {
    resp.get("stats")
        .and_then(|s| s.get(name))
        .and_then(Value::as_f64)
        .map(|v| v as u64)
        .unwrap_or(0)
}

fn main() {
    let serve_bin = bin_path("serve");
    let router_bin = bin_path("router");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Deterministic chaos schedule: offsets into the load windows.
    let r0 = mix64(CHAOS_SEED);
    let stall_at_ms = 600 + r0 % 400;
    let stall_for_ms = STALL_WINDOW_MS - stall_at_ms;
    let kill_at_ms = 700 + mix64(r0) % 500;
    println!(
        "cluster bench: seed {CHAOS_SEED} → stall at {stall_at_ms} ms for {stall_for_ms} ms, \
         kill at {kill_at_ms} ms"
    );

    // One artifact shared by every shard, written once to disk.
    println!("  training demo model...");
    let bundle = train_demo(7);
    let tmp = std::env::temp_dir().join(format!("ams-cluster-bench-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("temp dir");
    let art_path = tmp.join("demo.amsart");
    bundle.artifact.write_file(&art_path).expect("write artifact");
    // A corrupted copy: flip one byte in the middle of the framed file.
    let corrupt_path = tmp.join("corrupt.amsart");
    let mut bytes = std::fs::read(&art_path).expect("read artifact back");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&corrupt_path, bytes).expect("write corrupt artifact");

    // The company universe and canned requests (row i features for
    // company i, wrapped once so every client shares one allocation).
    let registry = Registry::new();
    let engine = registry.publish(bundle.artifact.clone()).expect("publish");
    let n_companies = engine.num_companies();
    let x = &bundle.test_x;
    let requests: Arc<Vec<String>> = Arc::new(
        (0..n_companies)
            .map(|c| {
                format!(
                    r#"{{"type":"predict","company":{c},"features":{}}}"#,
                    features_json(x.row(c % x.rows()))
                )
            })
            .collect(),
    );

    let spawn_shard = |procs: &mut Procs, name: &str, port: u16, artifact: &PathBuf| {
        let child = Command::new(&serve_bin)
            .args(["--addr", &format!("127.0.0.1:{port}")])
            .args(["--workers", &SHARD_WORKERS.to_string()])
            .args(["--artifact", &artifact.to_string_lossy()])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn shard");
        procs.push(name, child);
    };

    let mut procs = Procs(Vec::new());

    // --- 1. single-process baseline -----------------------------------
    let base_port = free_port();
    spawn_shard(&mut procs, "baseline", base_port, &art_path);
    let base_addr = format!("127.0.0.1:{base_port}");
    wait_healthy(&base_addr, "baseline shard");
    let baseline = drive(&base_addr, &requests, Duration::from_millis(MEASURE_MS));
    let baseline_rps = count(&baseline, Class::Ok) as f64 / (MEASURE_MS as f64 / 1e3);
    procs.kill("baseline");
    println!("  baseline: {baseline_rps:.0} req/s ({} clients, 1 process)", CLIENTS);

    // --- cluster topology: group 0 = {A, B}, group 1 = {C} ------------
    let (pa, pb, pc) = (free_port(), free_port(), free_port());
    spawn_shard(&mut procs, "shard-a", pa, &art_path);
    spawn_shard(&mut procs, "shard-b", pb, &art_path);
    spawn_shard(&mut procs, "shard-c", pc, &art_path);
    for (name, p) in [("shard A", pa), ("shard B", pb), ("shard C", pc)] {
        wait_healthy(&format!("127.0.0.1:{p}"), name);
    }
    let router_port = free_port();
    let shards_spec = format!("127.0.0.1:{pa},127.0.0.1:{pb};127.0.0.1:{pc}");
    let child = Command::new(&router_bin)
        .args(["--addr", &format!("127.0.0.1:{router_port}")])
        .args(["--workers", &ROUTER_WORKERS.to_string()])
        .args(["--shards", &shards_spec])
        .args(["--artifact", &art_path.to_string_lossy()])
        .args(["--probe-ms", &PROBE_MS.to_string()])
        .args(["--hedge-ms", &HEDGE_MS.to_string()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn router");
    procs.push("router", child);
    let router_addr = format!("127.0.0.1:{router_port}");
    wait_healthy(&router_addr, "router");
    let (mut ctl_w, mut ctl_r) = connect(&router_addr);

    // --- 2. healthy cluster throughput --------------------------------
    let healthy = drive(&router_addr, &requests, Duration::from_millis(MEASURE_MS));
    let cluster_rps = count(&healthy, Class::Ok) as f64 / (MEASURE_MS as f64 / 1e3);
    let ratio = cluster_rps / baseline_rps;
    assert_eq!(count(&healthy, Class::Degraded), 0, "healthy cluster must not degrade");
    assert_eq!(count(&healthy, Class::IoError), 0, "healthy cluster dropped a connection");
    assert_eq!(count(&healthy, Class::ErrorLine), 0, "healthy cluster sent an error line");
    println!(
        "  cluster: {cluster_rps:.0} req/s through router ({:.2}x baseline on {cores} core(s))",
        ratio
    );

    // --- 3. stall a replica mid-load, then re-admit -------------------
    let stall_window = Duration::from_millis(STALL_WINDOW_MS);
    let pid_a = procs.pid("shard-a");
    let addr_clone = router_addr.clone();
    let req_clone = Arc::clone(&requests);
    let loader = std::thread::spawn(move || drive(&addr_clone, &req_clone, stall_window));
    std::thread::sleep(Duration::from_millis(stall_at_ms));
    signal(pid_a, "-STOP");
    // Keep the replica stopped until the load window closes, so the
    // re-admission below is driven purely by the health prober rather
    // than by request traffic winning the half-open race (both are
    // legal — the conc model proves the race safe — but only the
    // probe path is being timed here).
    let stalled = loader.join().expect("stall loader");
    signal(pid_a, "-CONT");
    let resumed_at = Instant::now();
    // Hedged failover to replica B: nothing degrades, nothing errors.
    assert_eq!(count(&stalled, Class::Degraded), 0, "replica failover must stay exact");
    assert_eq!(count(&stalled, Class::IoError), 0, "stall dropped a client connection");
    assert_eq!(count(&stalled, Class::ErrorLine), 0, "stall produced an error line");
    // The failover cost: worst latency among requests finishing inside
    // the stall (first hits eat the hedge timeout before failing over).
    let stall_lo = stall_at_ms as f64;
    let stall_hi = STALL_WINDOW_MS as f64;
    let failover_ms = stalled
        .iter()
        .filter(|s| s.at_ms >= stall_lo && s.at_ms <= stall_hi)
        .map(|s| s.latency_ms)
        .fold(0.0f64, f64::max);
    // Probe-driven re-admission: breaker on A back to closed.
    let a_addr = format!("127.0.0.1:{pa}");
    let readmission_ms = loop {
        match upstream_state(&mut ctl_w, &mut ctl_r, &a_addr) {
            Some(state) if state == "closed" => {
                break resumed_at.elapsed().as_secs_f64() * 1e3;
            }
            _ => {}
        }
        assert!(
            resumed_at.elapsed() < Duration::from_secs(15),
            "stalled replica was never re-admitted"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    println!(
        "  stall: worst in-stall latency {failover_ms:.0} ms (hedge {HEDGE_MS} ms), \
         re-admitted {readmission_ms:.0} ms after SIGCONT"
    );

    // --- 4. kill the solo shard mid-load ------------------------------
    let map = ShardMap::contiguous(2).expect("two groups");
    let kill_window = Duration::from_millis(KILL_WINDOW_MS);
    let addr_clone = router_addr.clone();
    let req_clone = Arc::clone(&requests);
    let loader = std::thread::spawn(move || drive(&addr_clone, &req_clone, kill_window));
    std::thread::sleep(Duration::from_millis(kill_at_ms));
    procs.kill("shard-c");
    let kill = loader.join().expect("kill loader");
    assert_eq!(count(&kill, Class::IoError), 0, "kill dropped a client connection");
    assert_eq!(count(&kill, Class::ErrorLine), 0, "kill produced a non-typed error");
    // Before the kill nothing degrades; after it, group-1 companies
    // degrade to typed fallbacks while group 0 stays healthy. A short
    // settling margin covers requests in flight at the kill instant.
    let settle = 250.0;
    for s in &kill {
        let group = map.shard_of(s.company);
        if s.at_ms < kill_at_ms as f64 {
            assert_eq!(s.class, Class::Ok, "pre-kill response not ok for company {}", s.company);
        } else if s.at_ms > kill_at_ms as f64 + settle {
            let expect = if group == 1 { Class::Degraded } else { Class::Ok };
            assert_eq!(
                s.class, expect,
                "company {} (group {group}) at {:.0} ms",
                s.company, s.at_ms
            );
        }
    }
    let post: Vec<&Sample> = kill.iter().filter(|s| s.at_ms > kill_at_ms as f64).collect();
    let post_degraded = post.iter().filter(|s| s.class == Class::Degraded).count();
    let post_ok = post.iter().filter(|s| s.class == Class::Ok).count();
    let degraded_fraction = post_degraded as f64 / post.len().max(1) as f64;
    let kill_to_degraded_ms = kill
        .iter()
        .filter(|s| s.class == Class::Degraded)
        .map(|s| s.at_ms - kill_at_ms as f64)
        .fold(f64::INFINITY, f64::min);
    assert!(post_degraded > 0, "the dead group never produced a typed fallback");
    println!(
        "  kill: first typed fallback {kill_to_degraded_ms:.0} ms after SIGKILL, \
         {post_ok} healthy + {post_degraded} degraded after it ({:.0}% degraded)",
        degraded_fraction * 100.0
    );

    // Router-side accounting for the whole run.
    let stats = round_trip(&mut ctl_w, &mut ctl_r, r#"{"type":"stats"}"#).expect("stats");
    let (hedges, failovers, readmissions) =
        (stat(&stats, "hedges"), stat(&stats, "failovers"), stat(&stats, "readmissions"));
    println!(
        "  router: {hedges} hedged reads, {failovers} failovers, {readmissions} re-admissions"
    );
    assert!(failovers > 0, "the stall must have forced failovers");
    assert!(readmissions > 0, "the probe loop must have re-admitted shard A");

    // --- 5. corrupt artifact is refused at startup --------------------
    let corrupt_port = free_port();
    let mut corrupt_child = Command::new(&serve_bin)
        .args(["--addr", &format!("127.0.0.1:{corrupt_port}")])
        .args(["--artifact", &corrupt_path.to_string_lossy()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn corrupt shard");
    let refused = loop {
        match corrupt_child.try_wait().expect("try_wait") {
            Some(status) => break !status.success(),
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    assert!(refused, "a corrupt artifact must be refused at startup");
    println!("  corrupt artifact: refused at startup (checksum rejection)");

    let total: usize = [&baseline, &healthy, &stalled, &kill].iter().map(|s| s.len()).sum();
    let json = format!(
        "{{\n  \"seed\": {CHAOS_SEED},\n  \
         \"topology\": {{\"groups\": 2, \"replicas_group0\": 2, \"shard_processes\": 3, \
         \"router_workers\": {ROUTER_WORKERS}, \"shard_workers\": {SHARD_WORKERS}, \
         \"clients\": {CLIENTS}, \"companies\": {n_companies}}},\n  \
         \"throughput\": {{\"baseline_rps\": {baseline_rps:.0}, \"cluster_rps\": {cluster_rps:.0}, \
         \"ratio\": {ratio:.3}, \"cores\": {cores}, \
         \"note\": \"router + 3 shard processes on {cores} core(s); the 5x scaling target \
         assumes one core per process — on shared cores the ratio measures protocol overhead, \
         not scaling\"}},\n  \
         \"stall\": {{\"at_ms\": {stall_at_ms}, \"duration_ms\": {stall_for_ms}, \
         \"hedge_ms\": {HEDGE_MS}, \"worst_in_stall_latency_ms\": {failover_ms:.1}, \
         \"readmission_ms\": {readmission_ms:.1}, \"probe_interval_ms\": {PROBE_MS}, \
         \"degraded\": 0, \"error_lines\": 0, \"io_errors\": 0}},\n  \
         \"kill\": {{\"at_ms\": {kill_at_ms}, \"first_fallback_ms\": {kill_to_degraded_ms:.1}, \
         \"post_kill_ok\": {post_ok}, \"post_kill_degraded\": {post_degraded}, \
         \"degraded_fraction\": {degraded_fraction:.4}, \"error_lines\": 0, \"io_errors\": 0}},\n  \
         \"router\": {{\"hedges\": {hedges}, \"failovers\": {failovers}, \
         \"readmissions\": {readmissions}}},\n  \
         \"corrupt_artifact\": {{\"refused_at_startup\": true}},\n  \
         \"total_requests\": {total}\n}}\n"
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_scale.json");
    std::fs::write(&path, json).expect("write BENCH_scale.json");
    println!("wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&tmp);
}
