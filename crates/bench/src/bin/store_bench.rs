//! Feature-store benchmark: CSV vs `ams-store` at scale.
//!
//! For universes of 10k and 100k companies (streamed — neither the
//! panel nor the CSV text ever exists whole in memory during writing):
//!
//! 1. **Full scan** — parse the entire CSV back into a panel
//!    (`read_csv`) vs draining a [`StoreReader`] batch by batch.
//! 2. **Point lookup** — open the store and fetch one company's
//!    history via the block directory, timed against the only CSV
//!    equivalent (a full scan: CSV has no index).
//! 3. **Size** — on-disk bytes of the CSV vs the columnar store, and
//!    the compression ratio.
//!
//! Writes `results/BENCH_store.json` (override the directory with
//! `AMS_RESULTS_DIR`). Build with `--release`; parse-bound timings are
//! meaningless in debug.

use ams_bench::exp::{results_dir, DATA_SEED};
use ams_data::io::{read_csv, write_csv_source};
use ams_data::{PanelSource, SynthConfig, SynthStream};
use ams_store::{write_source, StoreReader};
use std::path::PathBuf;
use std::time::Instant;

const SIZES: [usize; 2] = [10_000, 100_000];
const BLOCK_SIZE: usize = 64;
const LOOKUPS: usize = 50;

struct SizeReport {
    n_companies: usize,
    csv_bytes: u64,
    store_bytes: u64,
    csv_scan_ms: f64,
    store_scan_ms: f64,
    open_ms: f64,
    lookup_us: f64,
    lookup_bytes: u64,
}

fn temp_path(tag: &str, n: usize) -> PathBuf {
    std::env::temp_dir().join(format!("ams-store-bench-{tag}-{n}-{}.tmp", std::process::id()))
}

fn bench_size(n_companies: usize) -> SizeReport {
    let cfg = SynthConfig { n_companies, ..SynthConfig::tiny(DATA_SEED) };
    let csv_path = temp_path("csv", n_companies);
    let store_path = temp_path("store", n_companies);

    eprintln!("[{n_companies}] streaming universe to CSV and store ...");
    let t = Instant::now();
    write_csv_source(&mut SynthStream::new(&cfg).as_source(), &csv_path).expect("write csv");
    eprintln!("[{n_companies}] csv written in {:.1}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    let summary = write_source(&store_path, &mut SynthStream::new(&cfg).as_source(), BLOCK_SIZE)
        .expect("write store");
    eprintln!("[{n_companies}] store written in {:.1}s", t.elapsed().as_secs_f64());
    assert_eq!(summary.n_companies, n_companies as u64);

    let csv_bytes = std::fs::metadata(&csv_path).expect("csv meta").len();
    let store_bytes = std::fs::metadata(&store_path).expect("store meta").len();

    // Full scan: CSV parse vs store drain. Both yield every
    // observation of every company.
    let t = Instant::now();
    let panel = read_csv(&csv_path).expect("read csv");
    let csv_scan_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("[{n_companies}] csv scanned in {csv_scan_ms:.0}ms");
    assert_eq!(panel.num_companies(), n_companies);
    drop(panel);

    let t = Instant::now();
    let mut reader = StoreReader::open(&store_path).expect("open store");
    let mut seen = 0usize;
    loop {
        let batch = reader.next_batch(256).expect("batch");
        if batch.is_empty() {
            break;
        }
        seen += batch.len();
    }
    let store_scan_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("[{n_companies}] store scanned in {store_scan_ms:.0}ms");
    assert_eq!(seen, n_companies);
    drop(reader);

    // Point lookup: one open (skeleton load — reported separately),
    // then single-company fetches at ids spread across the block
    // directory, each reading only that company's block.
    let t = Instant::now();
    let mut reader = StoreReader::open(&store_path).expect("open store");
    let open_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let mut lookup_bytes = 0u64;
    for i in 0..LOOKUPS {
        let id = i * (n_companies / LOOKUPS) + LOOKUPS / 2;
        let before = reader.bytes_read();
        let h = reader.company_history(id as u64).expect("lookup");
        assert_eq!(h.company.id, id);
        lookup_bytes += reader.bytes_read() - before;
    }
    let lookup_us = t.elapsed().as_secs_f64() * 1e6 / LOOKUPS as f64;
    let lookup_bytes = lookup_bytes / LOOKUPS as u64;

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&store_path).ok();
    SizeReport {
        n_companies,
        csv_bytes,
        store_bytes,
        csv_scan_ms,
        store_scan_ms,
        open_ms,
        lookup_us,
        lookup_bytes,
    }
}

fn main() {
    let reports: Vec<SizeReport> = SIZES.iter().map(|&n| bench_size(n)).collect();

    let mut entries = Vec::new();
    for r in &reports {
        let size_ratio = r.csv_bytes as f64 / r.store_bytes as f64;
        let scan_speedup = r.csv_scan_ms / r.store_scan_ms;
        let lookup_speedup = r.csv_scan_ms * 1e3 / r.lookup_us;
        println!(
            "n={}: csv {:.1} MiB vs store {:.1} MiB ({size_ratio:.2}x smaller) · \
             scan csv {:.0} ms vs store {:.0} ms ({scan_speedup:.1}x) · \
             open {:.1} ms, lookup {:.0} us reading {} bytes \
             ({lookup_speedup:.0}x vs csv scan)",
            r.n_companies,
            r.csv_bytes as f64 / (1024.0 * 1024.0),
            r.store_bytes as f64 / (1024.0 * 1024.0),
            r.csv_scan_ms,
            r.store_scan_ms,
            r.open_ms,
            r.lookup_us,
            r.lookup_bytes,
        );
        entries.push(format!(
            "    {{\"n_companies\": {}, \"block_size\": {BLOCK_SIZE}, \
             \"csv_bytes\": {}, \"store_bytes\": {}, \"size_ratio\": {size_ratio:.3}, \
             \"csv_scan_ms\": {:.2}, \"store_scan_ms\": {:.2}, \
             \"scan_speedup\": {scan_speedup:.2}, \"open_ms\": {:.2}, \
             \"point_lookup_us\": {:.2}, \
             \"point_lookup_bytes\": {}, \"lookup_speedup_vs_csv_scan\": {lookup_speedup:.1}}}",
            r.n_companies,
            r.csv_bytes,
            r.store_bytes,
            r.csv_scan_ms,
            r.store_scan_ms,
            r.open_ms,
            r.lookup_us,
            r.lookup_bytes,
        ));
    }

    // Acceptance: at the largest size, an indexed point lookup must
    // beat the only CSV alternative (a full scan) by >= 100x.
    let last = reports.last().expect("at least one size");
    let lookup_speedup = last.csv_scan_ms * 1e3 / last.lookup_us;
    assert!(
        lookup_speedup >= 100.0,
        "point lookup must be >= 100x faster than a CSV scan at {} companies (got {lookup_speedup:.0}x)",
        last.n_companies,
    );

    let json = format!(
        "{{\n  \"seed\": {DATA_SEED}, \"lookups_averaged\": {LOOKUPS},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_store.json");
    std::fs::write(&path, json).expect("write BENCH_store.json");
    println!("wrote {}", path.display());
}
