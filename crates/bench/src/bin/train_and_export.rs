//! Train a small AMS on a seeded synthetic universe and write the
//! serving artifact to disk — the producer side of the train/serve
//! split.
//!
//! ```text
//! train_and_export [--seed 7] [--version 1] [--out target/ams-demo.artifact.json]
//! ```
//!
//! Feed the output to the server: `serve --artifact <path>`.

use ams_serve::demo::train_demo;
use ams_serve::engine::fast_vs_batch_deviation;
use ams_serve::Engine;

fn main() {
    let mut seed = 7u64;
    let mut version = 1u64;
    let mut out = "target/ams-demo.artifact.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("train_and_export: {name} requires a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seed" => seed = value("--seed").parse().expect("--seed: integer"),
            "--version" => version = value("--version").parse().expect("--version: integer"),
            "--out" => out = value("--out"),
            "--help" | "-h" => {
                println!("usage: train_and_export [--seed N] [--version N] [--out PATH]");
                return;
            }
            other => {
                eprintln!("train_and_export: unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }

    println!("training (seed {seed})...");
    let mut bundle = train_demo(seed);
    bundle.artifact.version = version;

    // Prove the artifact scores exactly like the in-process model
    // before writing it out.
    let engine = Engine::new(bundle.artifact.clone()).expect("exported artifact validates");
    let want = bundle.model.predict(&bundle.artifact.reference_features);
    let got = engine
        .predict_batch(&bundle.artifact.reference_features)
        .expect("reference features score");
    let worst = (0..want.rows()).map(|i| (want[(i, 0)] - got[(i, 0)]).abs()).fold(0.0f64, f64::max);
    assert!(worst < 1e-10, "engine deviates from the tape by {worst}");
    let fast_dev = fast_vs_batch_deviation(&engine).expect("reference features score");
    assert!(fast_dev < 1e-10, "fast path deviates from batch path by {fast_dev}");

    let json = bundle.artifact.to_json();
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("create output directory");
    }
    std::fs::write(&out, &json).expect("write artifact");
    println!(
        "wrote {out}: {} v{version} · {} companies · feature width {} · {} bytes \
         (engine ≡ tape: max |Δ| = {worst:.1e})",
        bundle.artifact.name,
        bundle.artifact.num_companies(),
        bundle.artifact.feature_width(),
        json.len(),
    );
}
