//! Figure 8: interpretability — the per-company slave-LR weights the
//! master model generates for the alternative-data features. Three
//! companies per dataset; weights min–max scaled to [0, 1] along each
//! feature across the selected companies, as in the paper.

use ams_bench::exp::{Dataset, MODEL_SEED};
use ams_core::AmsConfig;
use ams_data::{CvSchedule, FeatureSet};
use ams_eval::harness::{continuous_columns, run_ams_fold};
use ams_eval::EvalOptions;
use ams_stats::minmax_scale;

fn main() {
    for dataset in [Dataset::Transaction, Dataset::MapQuery] {
        let panel = dataset.panel();
        let opts = EvalOptions::paper_for(&panel);
        let fs = FeatureSet::build(&panel, opts.k);
        let schedule = CvSchedule::paper(panel.num_quarters(), opts.k, opts.n_folds);
        let fold = schedule.folds().last().expect("nonempty schedule");
        eprintln!("  fitting AMS on {} (final fold) ...", dataset.name());
        let config = AmsConfig { seed: MODEL_SEED, ..Default::default() };
        let (_records, model, xte) = run_ams_fold(&panel, &fs, fold, &config, 5);
        let (beta, _) = model.slave_weights(&xte);

        // Alternative-feature columns, mapped into slave-column space.
        let slave_cols = continuous_columns(&fs);
        let alt_in_slave: Vec<(usize, String)> = slave_cols
            .iter()
            .enumerate()
            .filter(|(_, &c)| fs.alt_cols.contains(&c))
            .map(|(j, &c)| (j, fs.names[c].clone()))
            .collect();

        // Three companies spread across the universe (deterministic).
        let picks: Vec<usize> =
            [0usize, panel.num_companies() / 2, panel.num_companies() - 1].to_vec();

        println!("\nFigure 8 — slave-LR alternative-feature weights on {} dataset", dataset.name());
        print!("{:<24}", "feature");
        for &c in &picks {
            print!(" {:>10}", format!("C{}", panel.companies[c].name));
        }
        println!();
        for (j, name) in &alt_in_slave {
            let raw: Vec<f64> = picks.iter().map(|&c| beta[(c, *j)]).collect();
            let scaled = minmax_scale(&raw);
            print!("{:<24}", name);
            for v in &scaled {
                print!(" {v:>10.3}");
            }
            println!("   (raw:");
            print!("{:<24}", "");
            for v in &raw {
                print!(" {v:>10.4}");
            }
            println!(")");
        }
        println!(
            "\nDifferent companies receive different weights on the same feature — the\n\
             adaptive behaviour Figure 8 of the paper illustrates."
        );
    }
}
