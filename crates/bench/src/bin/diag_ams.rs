//! Diagnostic: does the AMS master actually learn per-company structure
//! on the transaction panel? Prints train/test MSE vs the anchored LR
//! and the correlation between learned alt-feature slave weights and
//! the generator's true channel sensitivities.

use ams_bench::exp::{Dataset, DATA_SEED, MODEL_SEED};
use ams_core::{AmsConfig, AmsModel, QuarterBatch};
use ams_data::{generate, CvSchedule, FeatureSet, Standardizer, SynthConfig};
use ams_graph::{CompanyGraph, GraphConfig};
use ams_stats::pearson;
use ams_tensor::Matrix;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let epochs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(500);
    let gamma: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.75);
    let slg: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let lr: f64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(8e-3);

    let sp = generate(&SynthConfig::transaction_paper(DATA_SEED));
    let panel = &sp.panel;
    let _ = Dataset::Transaction;
    let fs = FeatureSet::build(panel, 4);
    let schedule = CvSchedule::paper(panel.num_quarters(), 4, 7);
    let fold = schedule.folds().last().unwrap().clone();

    let train_ids = fs.samples_at_quarters(&fold.train);
    let test_ids = fs.samples_at_quarter(fold.test);
    let st = Standardizer::fit(&fs, &train_ids);
    let z = st.transform(&fs);

    let series = panel.all_revenue_series(0, fold.test);
    let graph = CompanyGraph::from_series(&series, GraphConfig { k: 5, ..Default::default() });

    let mk = |ids: &[usize]| {
        let (x, r, c, y) = z.design(ids);
        (Matrix::from_vec(r, c, x), Matrix::col_vector(&y))
    };
    let batches: Vec<QuarterBatch> = fold
        .train
        .iter()
        .map(|&t| {
            let ids = z.samples_at_quarter(t);
            let (x, y) = mk(&ids);
            QuarterBatch { x, y }
        })
        .collect();

    let dropout: f64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let l2: f64 = args.get(6).and_then(|s| s.parse().ok()).unwrap_or(1e-4);
    // Slave sees continuous financial columns only (keep the bias out:
    // a per-company intercept is pure memorization).
    let slave_cols: Vec<usize> = (0..fs.width())
        .filter(|&i| {
            let n = &fs.names[i];
            n != "bias"
                && !n.starts_with("quarter_")
                && !n.starts_with("month_")
                && !n.starts_with("sector_")
        })
        .collect();
    let cfg = AmsConfig {
        gamma,
        lambda_slg: slg,
        epochs,
        lr,
        dropout,
        lambda_l2: l2,
        nt_hidden: vec![48],
        gen_hidden: vec![48],
        gat_out: 24,
        slave_cols: Some(slave_cols.clone()),
        seed: MODEL_SEED,
        ..Default::default()
    };
    let val_ids = z.samples_at_quarter(fold.val);
    let (xv, yv) = mk(&val_ids);
    let mut model = AmsModel::new(cfg);
    model.fit_with_validation(&graph, &batches, Some(&QuarterBatch { x: xv, y: yv }));

    let (xtr, ytr) = mk(&train_ids);
    let (xte, yte) = mk(&test_ids);
    let mse = |p: &Matrix, y: &Matrix| p.sub(y).sq_frobenius() / p.len() as f64;

    let acr = model.anchored().unwrap().clone();
    // Anchored LR lives in slave-column space; project designs.
    let project = |x: &Matrix| {
        let mut out = Matrix::zeros(x.rows(), slave_cols.len());
        for r in 0..x.rows() {
            for (j, &c) in slave_cols.iter().enumerate() {
                out[(r, j)] = x[(r, c)];
            }
        }
        out
    };
    println!(
        "anchored  train mse {:.4}  test mse {:.4}",
        mse(&project(&xtr).matmul(&acr), &ytr),
        mse(&project(&xte).matmul(&acr), &yte)
    );
    // AMS per-quarter prediction (train quarters)
    let mut tr_mse = 0.0;
    for b in &batches {
        let p = model.predict(&b.x);
        tr_mse += p.sub(&b.y).sq_frobenius();
    }
    let n_tr: usize = batches.iter().map(|b| b.y.len()).sum();
    println!(
        "AMS       train mse {:.4}  test mse {:.4}",
        tr_mse / n_tr as f64,
        mse(&model.predict(&xte), &yte)
    );

    // Correlation between learned alt weight (txn_amount_dq0 col) and true kappa.
    let (beta, _) = model.slave_weights(&xte);
    let col = slave_cols.iter().position(|&c| fs.names[c] == "txn_amount_dq0").unwrap();
    let weights: Vec<f64> = (0..beta.rows()).map(|i| beta[(i, col)]).collect();
    let kappas: Vec<f64> = sp.latents.iter().map(|l| l.kappa).collect();
    println!("corr(learned alt weight, true kappa) = {:.3}", pearson(&weights, &kappas));
    let sign_match = weights.iter().zip(&kappas).filter(|(w, k)| w.signum() == k.signum()).count();
    println!("sign match: {}/{}", sign_match, weights.len());
    // --- Oracle baselines ---
    // 0) predict zero (the consensus itself)
    let var_te = yte.sq_frobenius() / yte.len() as f64;
    println!("predict-0 test mse {var_te:.4}");
    // 1) sector-specific ridge: does the sector interaction carry signal?
    use ams_tensor::ridge_solve;
    let mut sec_mse = 0.0;
    let mut sec_n = 0usize;
    for sector in ams_data::Sector::ALL {
        let tr: Vec<usize> = train_ids
            .iter()
            .copied()
            .filter(|&i| panel.companies[z.samples[i].company].sector == sector)
            .collect();
        let te: Vec<usize> = test_ids
            .iter()
            .copied()
            .filter(|&i| panel.companies[z.samples[i].company].sector == sector)
            .collect();
        if tr.len() < 10 || te.is_empty() {
            continue;
        }
        let (xs, ys) = mk(&tr);
        let (xse, yse) = mk(&te);
        let b = ridge_solve(&xs, &ys, 5.0).unwrap();
        sec_mse += xse.matmul(&b).sub(&yse).sq_frobenius();
        sec_n += te.len();
    }
    println!("sector-ridge test mse {:.4} ({} samples)", sec_mse / sec_n as f64, sec_n);
    // 2) oracle: regress label on true shock eps (upper bound on learnable signal)
    let mut eps_te = Matrix::zeros(yte.rows(), 2);
    for (r, &i) in test_ids.iter().enumerate() {
        let s_ = &z.samples[i];
        eps_te[(r, 0)] = 1.0;
        eps_te[(r, 1)] = sp.shocks[s_.company][s_.quarter_idx];
    }
    let mut eps_tr = Matrix::zeros(ytr.rows(), 2);
    for (r, &i) in train_ids.iter().enumerate() {
        let s_ = &z.samples[i];
        eps_tr[(r, 0)] = 1.0;
        eps_tr[(r, 1)] = sp.shocks[s_.company][s_.quarter_idx];
    }
    let b = ridge_solve(&eps_tr, &ytr, 1e-6).unwrap();
    println!(
        "true-shock oracle test mse {:.4}",
        eps_te.matmul(&b).sub(&yte).sq_frobenius() / yte.len() as f64
    );

    // 3) ridge without alternative columns (the -na ablation, as an oracle diff)
    let fs_na = fs.without_alternative();
    let st_na = Standardizer::fit(&fs_na, &train_ids);
    let z_na = st_na.transform(&fs_na);
    let mkna = |ids: &[usize]| {
        let (x, r, c, y) = z_na.design(ids);
        (Matrix::from_vec(r, c, x), Matrix::col_vector(&y))
    };
    let (xtrn, ytrn) = mkna(&train_ids);
    let (xten, yten) = mkna(&test_ids);
    let bna = ridge_solve(&xtrn, &ytrn, 1.0).unwrap();
    println!(
        "ridge-na  test mse {:.4}",
        xten.matmul(&bna).sub(&yten).sq_frobenius() / yten.len() as f64
    );

    // 4) channel-implied surprise with TRUE kappa:
    //    z = log(A(t)/A(t-4))/kappa_i - log(E(t)/R(t-4)); regress y on [1, z, e].
    let build_z = |ids: &[usize]| {
        let mut xm = Matrix::zeros(ids.len(), 3);
        let mut ym = Matrix::zeros(ids.len(), 1);
        for (r, &i) in ids.iter().enumerate() {
            let s_ = &fs.samples[i]; // unstandardized features
            let c = s_.company;
            let t = s_.quarter_idx;
            let a_ratio = panel.get(c, t).alt[0] / panel.get(c, t - 4).alt[0];
            let e_ratio = panel.get(c, t).consensus / panel.get(c, t - 4).revenue;
            let kap = sp.latents[c].kappa;
            let zval = a_ratio.ln() / kap - e_ratio.ln();
            xm[(r, 0)] = 1.0;
            xm[(r, 1)] = zval * e_ratio; // scale by level to match label units
            xm[(r, 2)] = e_ratio;
            ym[(r, 0)] = st.standardize_label(s_.label);
        }
        (xm, ym)
    };
    let (zx_tr, zy_tr) = build_z(&train_ids);
    let (zx_te, zy_te) = build_z(&test_ids);
    let bz = ridge_solve(&zx_tr, &zy_tr, 1e-4).unwrap();
    println!(
        "true-kappa channel oracle test mse {:.4}",
        zx_te.matmul(&bz).sub(&zy_te).sq_frobenius() / zy_te.len() as f64
    );

    // 4b) sector-interacted ridge: pooled design plus (alt col × sector
    // one-hot) interactions — the linear ceiling for sector-level
    // adaptation, which is exactly what the master could learn.
    {
        let sec_cols: Vec<usize> =
            (0..fs.width()).filter(|&i| fs.names[i].starts_with("sector_")).collect();
        let widen = |ids: &[usize]| {
            let (x, r, c, y) = z.design(ids);
            let base = Matrix::from_vec(r, c, x);
            let extra = fs.alt_cols.len() * sec_cols.len();
            let mut xm = Matrix::zeros(r, c + extra);
            for i in 0..r {
                for j in 0..c {
                    xm[(i, j)] = base[(i, j)];
                }
                let mut k2 = c;
                for &ac in &fs.alt_cols {
                    for &sc in &sec_cols {
                        xm[(i, k2)] = base[(i, ac)] * base[(i, sc)];
                        k2 += 1;
                    }
                }
            }
            (xm, Matrix::col_vector(&y))
        };
        let (xi_tr, yi_tr) = widen(&train_ids);
        let (xi_te, yi_te) = widen(&test_ids);
        for lam in [0.3, 1.0, 3.0, 10.0] {
            let b = ridge_solve(&xi_tr, &yi_tr, lam).unwrap();
            println!(
                "sector-interaction ridge (lam={lam}) test mse {:.4}",
                xi_te.matmul(&b).sub(&yi_te).sq_frobenius() / yi_te.len() as f64
            );
        }
    }

    // 5) same oracle split by channel quality.
    for poor in [false, true] {
        let trq: Vec<usize> = train_ids
            .iter()
            .copied()
            .filter(|&i| sp.latents[fs.samples[i].company].poor_coverage == poor)
            .collect();
        let teq: Vec<usize> = test_ids
            .iter()
            .copied()
            .filter(|&i| sp.latents[fs.samples[i].company].poor_coverage == poor)
            .collect();
        if trq.len() < 10 || teq.is_empty() {
            continue;
        }
        let (zx_tr, zy_tr) = build_z(&trq);
        let (zx_te, zy_te) = build_z(&teq);
        let bz = ridge_solve(&zx_tr, &zy_tr, 1e-4).unwrap();
        let m = zx_te.matmul(&bz).sub(&zy_te).sq_frobenius() / zy_te.len() as f64;
        let v0 = zy_te.sq_frobenius() / zy_te.len() as f64;
        println!(
            "  quality={} oracle mse {m:.4} (predict-0: {v0:.4}, n_te={})",
            if poor { "poor" } else { "good" },
            zy_te.len()
        );
    }
}
