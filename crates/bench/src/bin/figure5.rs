//! Figure 5: the time-series cross-validation schedule on both panels.

use ams_bench::exp::Dataset;
use ams_data::CvSchedule;
use ams_eval::EvalOptions;

fn main() {
    for dataset in [Dataset::Transaction, Dataset::MapQuery] {
        let panel = dataset.panel();
        let opts = EvalOptions::paper_for(&panel);
        let schedule = CvSchedule::paper(panel.num_quarters(), opts.k, opts.n_folds);
        println!("\nFigure 5 — CV schedule on {} dataset", dataset.name());
        println!("{}", schedule.describe(&panel.quarters));
    }
}
