//! Table III: feature effectiveness — every learned model retrained
//! without the alternative-data columns; reports SR-m and BA-m.

use ams_bench::exp::{run_cached_seed, Dataset, DATA_SEED, MODEL_SEED, N_SEEDS};
use ams_eval::ablation::{format_ablation_table, AblationRow};
use ams_eval::ModelKind;

fn main() {
    for dataset in [Dataset::Transaction, Dataset::MapQuery] {
        eprintln!("== dataset: {} ==", dataset.name());
        let kinds: Vec<ModelKind> = ModelKind::paper_lineup(dataset.n_channels(), MODEL_SEED)
            .into_iter()
            .filter(|k| !matches!(k, ModelKind::Naive { .. } | ModelKind::Arima(_)))
            .collect();
        let rows: Vec<AblationRow> = kinds
            .iter()
            .map(|kind| {
                let (mut ba_w, mut ba_wo, mut sr_w, mut sr_wo) = (0.0, 0.0, 0.0, 0.0);
                for seed in DATA_SEED..DATA_SEED + N_SEEDS {
                    eprintln!("  running {}-na (seed {seed}) ...", kind.name());
                    let panel = dataset.panel_for_seed(seed);
                    let with = run_cached_seed(dataset, &panel, kind, false, seed);
                    let without = run_cached_seed(dataset, &panel, kind, true, seed);
                    ba_w += with.mean_ba();
                    ba_wo += without.mean_ba();
                    sr_w += with.mean_sr();
                    sr_wo += without.mean_sr();
                }
                let n = N_SEEDS as f64;
                let (ba_w, ba_wo, sr_w, sr_wo) = (ba_w / n, ba_wo / n, sr_w / n, sr_wo / n);
                AblationRow {
                    model: format!("{}-na", kind.name()),
                    sr_m: sr_wo - sr_w,
                    ba_m: ba_wo - ba_w,
                    ba_with: ba_w,
                    ba_without: ba_wo,
                    sr_with: sr_w,
                    sr_without: sr_wo,
                }
            })
            .collect();
        println!(
            "\nTable III — feature effectiveness on {} dataset (mean over {N_SEEDS} seeds)",
            dataset.name()
        );
        println!("{}", format_ablation_table(&rows));
    }
}
