//! Extension study (beyond the paper's own tables): AMS's "aggressive"
//! adaptation vs the related-work adaptive families of §V-B — the
//! semi-lazy local-regression approach and a passive online-RLS model
//! — on the transaction panel.

use ams_bench::exp::{run_cached_seed, Dataset, DATA_SEED, MODEL_SEED, N_SEEDS};
use ams_core::AmsConfig;
use ams_eval::ModelKind;

fn main() {
    let dataset = Dataset::Transaction;
    let kinds = vec![
        ModelKind::Ams { config: AmsConfig { seed: MODEL_SEED, ..Default::default() }, graph_k: 5 },
        ModelKind::SemiLazy { k: 40, lambda: 1.0 },
        ModelKind::SemiLazy { k: 120, lambda: 1.0 },
        ModelKind::OnlineRidge { forgetting: 0.98 },
        ModelKind::OnlineRidge { forgetting: 1.0 },
        ModelKind::Ridge { lambda: 1.0 },
    ];
    println!(
        "Adaptive-family comparison on {} dataset (mean over {N_SEEDS} seeds)",
        dataset.name()
    );
    println!("{:<28} {:>9} {:>9}", "Model", "BA", "SR");
    for kind in &kinds {
        let label = match kind {
            ModelKind::SemiLazy { k, .. } => format!("SemiLazy (k={k})"),
            ModelKind::OnlineRidge { forgetting } => format!("OnlineRidge (λ={forgetting})"),
            other => other.name(),
        };
        let (mut ba, mut sr) = (0.0, 0.0);
        for seed in DATA_SEED..DATA_SEED + N_SEEDS {
            eprintln!("  running {label} (seed {seed}) ...");
            std::env::set_var(
                "AMS_RESULTS_DIR",
                format!(
                    "results/extension_adaptive/{}",
                    label.replace([' ', '(', ')', '=', ',', '.'], "_")
                ),
            );
            let panel = dataset.panel_for_seed(seed);
            let cv = run_cached_seed(dataset, &panel, kind, false, seed);
            ba += cv.mean_ba();
            sr += cv.mean_sr();
        }
        println!("{:<28} {:>9.3} {:>9.4}", label, ba / N_SEEDS as f64, sr / N_SEEDS as f64);
    }
}
