//! Runtime benchmark: kernel throughput, training epoch time and
//! serving latency on both execution backends.
//!
//! Writes `results/BENCH_runtime.json` (override the directory with
//! `AMS_RESULTS_DIR`) and prints a human-readable summary. Build with
//! `--release`; debug numbers are not meaningful.
//!
//! The parallel numbers are only as good as the machine: on a
//! single-hardware-thread host `par` degenerates to the sequential
//! kernels plus dispatch overhead, which is exactly what the JSON will
//! report. The `cpus` field records what the run actually had.

use ams_bench::exp::results_dir;
use ams_core::{AmsConfig, AmsModel, QuarterBatch};
use ams_graph::CompanyGraph;
use ams_serve::demo::train_demo;
use ams_serve::Engine;
use ams_tensor::init::standard_normal;
use ams_tensor::runtime::{seq, Backend, Par, SimdSeq, Workspace};
use ams_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

const MATMUL_SIZES: [usize; 4] = [64, 128, 256, 512];
const FIT_EPOCHS: usize = 20;
const SERVE_ITERS: usize = 200;

fn filled(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = standard_normal(rng);
    }
    m
}

/// Best-of-several GFLOP/s for an n×n·n×n matmul on one backend.
fn matmul_gflops(backend: &dyn Backend, n: usize, rng: &mut StdRng) -> f64 {
    let a = filled(n, n, rng);
    let b = filled(n, n, rng);
    let mut out = Matrix::zeros(n, n);
    let flops = 2.0 * (n * n * n) as f64;
    let mut best = f64::INFINITY;
    let reps = (5e7 / flops).clamp(3.0, 200.0) as usize;
    for _ in 0..reps {
        out.as_mut_slice().fill(0.0);
        let t = Instant::now();
        backend.matmul(a.as_slice(), b.as_slice(), out.as_mut_slice(), n, n, n);
        best = best.min(t.elapsed().as_secs_f64());
    }
    flops / best / 1e9
}

/// Small full-batch training problem in the demo's size class.
fn fit_task() -> (CompanyGraph, Vec<QuarterBatch>) {
    let n = 24;
    let d = 12;
    let mut rng = StdRng::seed_from_u64(5);
    let graph = CompanyGraph::complete(n);
    let train = (0..4)
        .map(|_| QuarterBatch { x: filled(n, d, &mut rng), y: filled(n, 1, &mut rng) })
        .collect();
    (graph, train)
}

fn fit_sec_per_epoch(backend_spec: Option<&str>) -> f64 {
    let (graph, train) = fit_task();
    let mut model = AmsModel::new(AmsConfig {
        epochs: FIT_EPOCHS,
        seed: 5,
        backend: backend_spec.map(str::to_string),
        ..Default::default()
    });
    let t = Instant::now();
    model.fit(&graph, &train);
    t.elapsed().as_secs_f64() / FIT_EPOCHS as f64
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Warm batch-prediction latency distribution (µs) on one backend.
fn serve_latencies(engine: &Engine, x: &Matrix, backend: &dyn Backend) -> (f64, f64) {
    let mut ws = Workspace::new();
    let mut lat = Vec::with_capacity(SERVE_ITERS);
    for i in 0..SERVE_ITERS + 10 {
        let t = Instant::now();
        let pred = engine.predict_batch_with(x, backend, &mut ws).expect("predict");
        let dt = t.elapsed().as_secs_f64() * 1e6;
        ws.give(pred.into_vec());
        if i >= 10 {
            lat.push(dt);
        }
    }
    lat.sort_by(f64::total_cmp);
    (percentile(&lat, 0.5), percentile(&lat, 0.99))
}

/// Warm quantized-path latency (µs): the f32 plan on the vectorized
/// backend, with both precision arenas persistent as in a worker.
fn serve_latencies_f32(engine: &Engine, x: &Matrix) -> (f64, f64) {
    let backend = SimdSeq;
    let mut ws32: Workspace<f32> = Workspace::new();
    let mut ws = Workspace::new();
    let mut lat = Vec::with_capacity(SERVE_ITERS);
    for i in 0..SERVE_ITERS + 10 {
        let t = Instant::now();
        let pred = engine
            .predict_batch_f32_deadline(x, &backend, &mut ws32, &mut ws, None)
            .expect("predict f32");
        let dt = t.elapsed().as_secs_f64() * 1e6;
        ws.give(pred.into_vec());
        if i >= 10 {
            lat.push(dt);
        }
    }
    lat.sort_by(f64::total_cmp);
    (percentile(&lat, 0.5), percentile(&lat, 0.99))
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let par: Arc<dyn Backend> = Arc::new(Par::new(cpus.max(2)));
    let seq = seq();
    println!("runtime bench: {cpus} hardware thread(s), par backend = {}", par.name());

    let simd = SimdSeq;
    println!("  simd backend: accelerated = {}", ams_tensor::runtime::simd::accelerated());

    let mut rng = StdRng::seed_from_u64(9);
    let mut matmul_rows = Vec::new();
    for n in MATMUL_SIZES {
        let gs = matmul_gflops(seq.as_ref(), n, &mut rng);
        let gp = matmul_gflops(par.as_ref(), n, &mut rng);
        let gv = matmul_gflops(&simd, n, &mut rng);
        println!(
            "  matmul {n:>3}: seq {gs:>6.2} GFLOP/s   par {gp:>6.2} GFLOP/s   \
             simd {gv:>6.2} GFLOP/s   x{:.2}",
            gv / gs
        );
        matmul_rows.push(format!(
            "    {{\"n\": {n}, \"seq_gflops\": {gs:.3}, \"par_gflops\": {gp:.3}, \
             \"simd_gflops\": {gv:.3}, \"speedup\": {:.3}, \"simd_speedup\": {:.3}}}",
            gp / gs,
            gv / gs
        ));
    }

    let fit_seq = fit_sec_per_epoch(None);
    let fit_par = fit_sec_per_epoch(Some("par"));
    println!("  fit: seq {:.1} ms/epoch   par {:.1} ms/epoch", fit_seq * 1e3, fit_par * 1e3);

    let bundle = train_demo(7);
    let engine = Engine::new(bundle.artifact).expect("demo engine");
    let (s50, s99) = serve_latencies(&engine, &bundle.test_x, seq.as_ref());
    let (p50, p99) = serve_latencies(&engine, &bundle.test_x, par.as_ref());
    let (f50, f99) = serve_latencies_f32(&engine, &bundle.test_x);
    println!("  serve ({} rows): seq p50 {s50:.0}us p99 {s99:.0}us", bundle.test_x.rows());
    println!("  serve ({} rows): par p50 {p50:.0}us p99 {p99:.0}us", bundle.test_x.rows());
    println!("  serve ({} rows): f32 p50 {f50:.0}us p99 {f99:.0}us", bundle.test_x.rows());

    let json = format!(
        "{{\n  \"cpus\": {cpus},\n  \"par_backend\": \"{}\",\n  \"simd_accelerated\": {},\n  \
         \"matmul\": [\n{}\n  ],\n  \
         \"fit\": {{\"epochs\": {FIT_EPOCHS}, \"seq_sec_per_epoch\": {fit_seq:.6}, \
         \"par_sec_per_epoch\": {fit_par:.6}}},\n  \"serve\": {{\"batch_rows\": {}, \
         \"iters\": {SERVE_ITERS}, \"seq_p50_us\": {s50:.1}, \"seq_p99_us\": {s99:.1}, \
         \"par_p50_us\": {p50:.1}, \"par_p99_us\": {p99:.1}, \
         \"f32_p50_us\": {f50:.1}, \"f32_p99_us\": {f99:.1}}},\n  \"note\": \"seq and par are \
         bit-identical; simd f64 and the quantized f32 serve row are within the documented \
         epsilon-oracle bounds (DESIGN 14); par speedup is bounded by the hardware threads \
         recorded in cpus\"\n}}\n",
        par.name(),
        ams_tensor::runtime::simd::accelerated(),
        matmul_rows.join(",\n"),
        bundle.test_x.rows(),
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_runtime.json");
    std::fs::write(&path, json).expect("write BENCH_runtime.json");
    println!("wrote {}", path.display());
}
