//! Table V: backtest on the map-query dataset over its two CV test
//! quarters.

use ams_bench::exp::{print_backtest_table, run_backtests, Dataset};

fn main() {
    let results = run_backtests(Dataset::MapQuery);
    print_backtest_table("Table V", Dataset::MapQuery, &results);
}
