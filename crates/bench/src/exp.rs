//! Shared experiment plumbing for the table/figure binaries.
//!
//! Every binary reproduces one paper artifact from the same two panels
//! (fixed data seed) and the same model lineup (fixed model seed), so
//! results are bit-reproducible and Tables I/II/IV/V all describe the
//! same underlying CV runs. CV outputs are cached as JSON under
//! `results/` (override with `AMS_RESULTS_DIR`) because several tables
//! reuse them.

use std::fs;
use std::path::PathBuf;

use ams_backtest::{MarketConfig, MarketSim, Signals};
use ams_data::{generate, Panel, SynthConfig};
use ams_eval::{run_model, CvResult, EvalOptions, ModelKind};

/// Base data seed used by every experiment binary.
pub const DATA_SEED: u64 = 42;
/// Model seed used by every experiment binary.
pub const MODEL_SEED: u64 = 7;
/// Number of independent panel realizations averaged by the table
/// binaries. The paper repeats training 10 times; on synthetic data the
/// dominant variance is the panel realization itself, so we draw
/// several panels (seeds `DATA_SEED..DATA_SEED+N`) and aggregate
/// metrics across all seed × fold cells.
pub const N_SEEDS: u64 = 5;

/// The two datasets of §II-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// 71 companies × 16 quarters, one transaction-amount channel.
    Transaction,
    /// 62 companies × 9 quarters, store + parking map-query channels.
    MapQuery,
}

impl Dataset {
    /// Directory-safe name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Transaction => "transaction",
            Dataset::MapQuery => "map_query",
        }
    }

    /// Generate the panel for the base seed.
    pub fn panel(self) -> Panel {
        self.panel_for_seed(DATA_SEED)
    }

    /// Generate the panel for an explicit seed.
    pub fn panel_for_seed(self, seed: u64) -> Panel {
        match self {
            Dataset::Transaction => generate(&SynthConfig::transaction_paper(seed)).panel,
            Dataset::MapQuery => generate(&SynthConfig::map_query_paper(seed)).panel,
        }
    }

    /// Number of alternative channels.
    pub fn n_channels(self) -> usize {
        match self {
            Dataset::Transaction => 1,
            Dataset::MapQuery => 2,
        }
    }
}

/// Where cached CV results live.
pub fn results_dir() -> PathBuf {
    std::env::var_os("AMS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

fn cache_path(dataset: Dataset, model: &str, drop_alt: bool, seed: u64) -> PathBuf {
    let suffix = if drop_alt { "-na" } else { "" };
    results_dir().join(format!(
        "{}/seed{}/{}{}.json",
        dataset.name(),
        seed,
        model.replace(['[', ']'], "_"),
        suffix
    ))
}

/// Run one model on a dataset with JSON caching. Delete `results/` to
/// force recomputation.
pub fn run_cached(dataset: Dataset, panel: &Panel, kind: &ModelKind, drop_alt: bool) -> CvResult {
    run_cached_seed(dataset, panel, kind, drop_alt, DATA_SEED)
}

/// [`run_cached`] for an explicit panel seed (the panel must match).
pub fn run_cached_seed(
    dataset: Dataset,
    panel: &Panel,
    kind: &ModelKind,
    drop_alt: bool,
    seed: u64,
) -> CvResult {
    let path = cache_path(dataset, &kind.name(), drop_alt, seed);
    if let Ok(bytes) = fs::read(&path) {
        if let Ok(cv) = serde_json::from_slice::<CvResult>(&bytes) {
            return cv;
        }
    }
    let opts = EvalOptions { drop_alternative: drop_alt, ..EvalOptions::paper_for(panel) };
    let cv = run_model(panel, kind, &opts);
    if let Some(parent) = path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let _ = fs::write(&path, serde_json::to_vec_pretty(&cv).expect("serialize CvResult"));
    cv
}

/// The full Table I/II lineup for a dataset, cached, averaged over
/// [`N_SEEDS`] panel realizations: each returned `CvResult` contains
/// the concatenated per-quarter results of every seed (so BA/SR means
/// and t-tests aggregate over all seed × fold cells).
pub fn run_lineup(dataset: Dataset) -> (Panel, Vec<CvResult>) {
    let lineup = ModelKind::paper_lineup(dataset.n_channels(), MODEL_SEED);
    let mut merged: Vec<CvResult> =
        lineup.iter().map(|k| CvResult { model: k.name(), per_quarter: Vec::new() }).collect();
    for seed in DATA_SEED..DATA_SEED + N_SEEDS {
        let panel = dataset.panel_for_seed(seed);
        for (kind, acc) in lineup.iter().zip(&mut merged) {
            eprintln!("  running {} on {} (seed {seed}) ...", kind.name(), dataset.name());
            let cv = run_cached_seed(dataset, &panel, kind, false, seed);
            acc.per_quarter.extend(cv.per_quarter);
        }
    }
    (dataset.panel(), merged)
}

/// Average each model's per-quarter metric by calendar quarter across
/// seeds — the per-quarter columns of the map-query tables.
pub fn per_quarter_means(cv: &CvResult) -> Vec<(String, f64, f64)> {
    let mut labels: Vec<String> = Vec::new();
    for q in &cv.per_quarter {
        let l = q.quarter.to_string();
        if !labels.contains(&l) {
            labels.push(l);
        }
    }
    labels
        .into_iter()
        .map(|l| {
            let (mut ba, mut sr, mut n) = (0.0, 0.0, 0.0);
            for q in &cv.per_quarter {
                if q.quarter.to_string() == l {
                    ba += q.ba;
                    sr += q.sr;
                    n += 1.0;
                }
            }
            (l, ba / n, sr / n)
        })
        .collect()
}

/// The models entering the backtest (paper's Tables IV/V drop
/// ARIMA/QoQ/YoY and keep the eight learned models).
pub fn backtest_lineup(dataset: Dataset) -> Vec<ModelKind> {
    ModelKind::paper_lineup(dataset.n_channels(), MODEL_SEED)
        .into_iter()
        .filter(|k| !matches!(k, ModelKind::Arima(_) | ModelKind::Naive { .. }))
        .collect()
}

/// Convert a CV result into per-window trading signals aligned with the
/// panel's company ids. Quarters are the CV test quarters in order.
pub fn signals_from_cv(panel: &Panel, cv: &CvResult) -> (Vec<usize>, Signals) {
    let mut quarters = Vec::with_capacity(cv.per_quarter.len());
    let mut signals = Vec::with_capacity(cv.per_quarter.len());
    for q in &cv.per_quarter {
        let tq = panel.quarter_index(q.quarter).expect("test quarter in panel");
        quarters.push(tq);
        let mut sig = vec![0.0; panel.num_companies()];
        for rec in &q.preds {
            sig[rec.company] = rec.pred_ur;
        }
        signals.push(sig);
    }
    (quarters, signals)
}

/// The shared market simulation for a dataset's backtest window.
pub fn market_for(panel: &Panel, quarters: &[usize]) -> MarketSim {
    MarketSim::simulate(panel, quarters, MarketConfig { seed: DATA_SEED, ..Default::default() })
}

/// Labels of the per-quarter columns (map-query tables show them).
pub fn quarter_labels(cv: &CvResult) -> Vec<String> {
    cv.per_quarter.iter().map(|q| format!("{}", q.quarter)).collect()
}

/// Run the §IV-F backtest for every learned model on a dataset and
/// return `(results, ams_index)`; every strategy is evaluated on the
/// same simulated price paths.
pub fn run_backtests(dataset: Dataset) -> Vec<ams_backtest::BacktestResult> {
    let panel = dataset.panel();
    let kinds = backtest_lineup(dataset);
    let mut results = Vec::new();
    let mut market: Option<MarketSim> = None;
    for kind in &kinds {
        eprintln!("  backtesting {} on {} ...", kind.name(), dataset.name());
        let cv = run_cached(dataset, &panel, kind, false);
        let (quarters, signals) = signals_from_cv(&panel, &cv);
        let sim = market.get_or_insert_with(|| market_for(&panel, &quarters));
        results.push(ams_backtest::run_strategy(&panel, sim, &signals, &kind.name(), 100.0));
    }
    results
}

/// Write every model's daily asset curve to a CSV (day, model columns).
pub fn write_curves_csv(path: &std::path::Path, results: &[ams_backtest::BacktestResult]) {
    if let Some(parent) = path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let mut out = String::from("day");
    for r in results {
        out.push(',');
        out.push_str(&r.model);
    }
    out.push('\n');
    let days = results.iter().map(|r| r.asset_curve.len()).max().unwrap_or(0);
    for d in 0..days {
        out.push_str(&d.to_string());
        for r in results {
            out.push(',');
            if let Some(v) = r.asset_curve.get(d) {
                out.push_str(&format!("{v:.4}"));
            }
        }
        out.push('\n');
    }
    fs::write(path, out).expect("write curves csv");
}

/// Eight-level unicode sparkline of a series.
pub fn sparkline(xs: &[f64]) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    // Subsample to at most 60 columns.
    let step = (xs.len() / 60).max(1);
    xs.iter().step_by(step).map(|&x| BARS[(((x - lo) / range) * 7.0).round() as usize]).collect()
}

/// Print a Table IV/V style backtest report.
pub fn print_backtest_table(
    title: &str,
    dataset: Dataset,
    results: &[ams_backtest::BacktestResult],
) {
    let ams = results.iter().find(|r| r.model == "AMS").expect("AMS in lineup").clone();
    println!(
        "
{title} — backtest on {} dataset",
        dataset.name()
    );
    println!(
        "{:<12} {:>11} {:>9} {:>13} {:>9}",
        "Model", "Earning(%)", "MDD(%)", "Sharpe Ratio", "AER(%)"
    );
    for r in results {
        if r.model == "AMS" {
            println!(
                "{:<12} {:>11.4} {:>9.4} {:>13} {:>9}",
                r.model, r.earning_pct, r.mdd_pct, "-", "-"
            );
        } else {
            let sharpe = ams_backtest::sharpe_vs(r, &ams).map_or("-".into(), |s| format!("{s:.4}"));
            println!(
                "{:<12} {:>11.4} {:>9.4} {:>13} {:>9.4}",
                r.model,
                r.earning_pct,
                r.mdd_pct,
                sharpe,
                ams_backtest::aer_vs(r, &ams)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::Quarter;
    use ams_eval::{PredRecord, QuarterResult};

    fn fake_cv() -> CvResult {
        let mk = |q: Quarter, ba: f64| QuarterResult {
            quarter: q,
            ba,
            sr: 1.0,
            preds: vec![PredRecord {
                company: 0,
                pred_ur: 1.0,
                actual_ur: 2.0,
                consensus: 10.0,
                revenue: 12.0,
            }],
        };
        CvResult {
            model: "M".into(),
            per_quarter: vec![
                mk(Quarter::new(2018, 1), 40.0),
                mk(Quarter::new(2018, 2), 50.0),
                // Second seed's pass over the same quarters.
                mk(Quarter::new(2018, 1), 60.0),
                mk(Quarter::new(2018, 2), 70.0),
            ],
        }
    }

    #[test]
    fn per_quarter_means_group_by_label() {
        let cv = fake_cv();
        let means = per_quarter_means(&cv);
        assert_eq!(means.len(), 2);
        assert_eq!(means[0].0, "2018q1");
        assert!((means[0].1 - 50.0).abs() < 1e-12);
        assert!((means[1].1 - 60.0).abs() < 1e-12);
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        let chars: Vec<char> = s.chars().collect();
        assert!(chars[0] < chars[3], "rising series should rise: {s}");
    }

    #[test]
    fn sparkline_handles_flat_series() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn curves_csv_contains_all_models_and_days() {
        let dir = std::env::temp_dir().join("ams_exp_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("curves.csv");
        let results = vec![
            ams_backtest::BacktestResult {
                model: "A".into(),
                asset_curve: vec![100.0, 101.0, 102.0],
                quarter_ends: vec![2],
                earning_pct: 2.0,
                mdd_pct: 0.0,
            },
            ams_backtest::BacktestResult {
                model: "B".into(),
                asset_curve: vec![100.0, 99.0],
                quarter_ends: vec![1],
                earning_pct: -1.0,
                mdd_pct: 1.0,
            },
        ];
        write_curves_csv(&path, &results);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "day,A,B");
        assert_eq!(lines.len(), 1 + 3); // header + longest curve
        assert!(lines[1].starts_with("0,100.0000,100.0000"));
        // Shorter series leaves the trailing cell empty.
        assert!(lines[3].ends_with(','));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dataset_shapes() {
        assert_eq!(Dataset::Transaction.n_channels(), 1);
        assert_eq!(Dataset::MapQuery.n_channels(), 2);
        assert_eq!(Dataset::Transaction.name(), "transaction");
    }

    #[test]
    fn backtest_lineup_drops_naive_and_arima() {
        let lineup = backtest_lineup(Dataset::Transaction);
        assert_eq!(lineup.len(), 8);
        assert!(lineup
            .iter()
            .all(|k| { !matches!(k, ModelKind::Arima(_) | ModelKind::Naive { .. }) }));
    }
}
