//! Inference-engine hot-path benchmarks: the single-company fast path
//! (a slave-weight dot product), the tape-free batch path, and the
//! training-side tape predict it replaces.

use ams_serve::demo::train_demo;
use ams_serve::Engine;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_inference(c: &mut Criterion) {
    let bundle = train_demo(7);
    let engine = Engine::new(bundle.artifact.clone()).expect("artifact validates");
    let x = bundle.artifact.reference_features.clone();
    let row: Vec<f64> = x.row(0).to_vec();
    let model = bundle.model;

    let mut group = c.benchmark_group("inference");
    group.bench_function("engine_single_company", |b| {
        b.iter(|| engine.predict_company(black_box(0), black_box(&row)).unwrap())
    });
    group.bench_function("engine_batch", |b| {
        b.iter(|| engine.predict_batch(black_box(&x)).unwrap())
    });
    group.bench_function("tape_batch", |b| b.iter(|| model.predict(black_box(&x))));
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
