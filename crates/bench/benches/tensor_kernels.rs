//! Micro-benchmarks for the numerical substrate: dense kernels, the
//! direct solvers behind the anchored LR, and a full GAT-layer
//! forward+backward at the workloads' actual sizes (n = 71 companies).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ams_graph::{CompanyGraph, GraphConfig};
use ams_tensor::init::xavier_uniform;
use ams_tensor::{ridge_solve, Graph, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[16usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = xavier_uniform(n, n, &mut rng);
        let b = xavier_uniform(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_ridge_solve(c: &mut Criterion) {
    // The anchored LR of Eq. 5 at the transaction panel's size:
    // ~710 samples × 48 features.
    let mut rng = StdRng::seed_from_u64(2);
    let x = xavier_uniform(710, 48, &mut rng);
    let y = xavier_uniform(710, 1, &mut rng);
    c.bench_function("anchored_lr_ridge_solve_710x48", |b| {
        b.iter(|| black_box(ridge_solve(&x, &y, 1.0).unwrap()));
    });
}

fn bench_gat_layer(c: &mut Criterion) {
    use ams_core::GatLayer;
    let mut rng = StdRng::seed_from_u64(3);
    let n = 71;
    let layer = GatLayer::hidden(48, 8, 4, &mut rng);
    let x0 = xavier_uniform(n, 48, &mut rng);
    // A plausible correlation-graph mask.
    let series: Vec<Vec<f64>> =
        (0..n).map(|i| (0..12).map(|t| ((i * 7 + t * 13) % 29) as f64).collect()).collect();
    let graph = CompanyGraph::from_series(&series, GraphConfig::default());
    let mask = Matrix::from_vec(n, n, graph.dense_mask());

    c.bench_function("gat_layer_forward_71x48_4heads", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let pv: Vec<_> = layer.params().iter().map(|p| g.input((*p).clone())).collect();
            black_box(layer.forward(&mut g, x, &mask, &pv));
        });
    });

    c.bench_function("gat_layer_forward_backward_71x48_4heads", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let pv: Vec<_> = layer.params().iter().map(|p| g.input((*p).clone())).collect();
            let y = layer.forward(&mut g, x, &mask, &pv);
            let loss = g.sq_frobenius(y);
            black_box(g.backward(loss));
        });
    });
}

fn bench_cholesky(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let a = xavier_uniform(48, 48, &mut rng);
    let spd = a.matmul(&a.t()).add(&Matrix::eye(48).scale(48.0));
    c.bench_function("cholesky_48", |b| {
        b.iter(|| black_box(ams_tensor::cholesky(&spd).unwrap()));
    });
}

criterion_group!(benches, bench_matmul, bench_ridge_solve, bench_gat_layer, bench_cholesky);
criterion_main!(benches);
