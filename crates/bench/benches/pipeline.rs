//! End-to-end pipeline benchmarks: panel generation, feature assembly,
//! correlation-graph construction, one AMS training epoch, and a GBDT
//! fit — the pieces whose cost dominates the experiment binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ams_core::{AmsConfig, AmsModel, QuarterBatch};
use ams_data::{generate, FeatureSet, SynthConfig};
use ams_graph::{CompanyGraph, GraphConfig};
use ams_models::{Gbdt, GbdtConfig, Regressor};
use ams_tensor::Matrix;

fn bench_generate(c: &mut Criterion) {
    c.bench_function("generate_transaction_panel_71x16", |b| {
        b.iter(|| black_box(generate(&SynthConfig::transaction_paper(1))));
    });
}

fn bench_features(c: &mut Criterion) {
    let panel = generate(&SynthConfig::transaction_paper(1)).panel;
    c.bench_function("feature_set_build_71x16_k4", |b| {
        b.iter(|| black_box(FeatureSet::build(&panel, 4)));
    });
}

fn bench_graph_build(c: &mut Criterion) {
    let panel = generate(&SynthConfig::transaction_paper(1)).panel;
    let series = panel.all_revenue_series(0, 12);
    c.bench_function("correlation_graph_topk5_71", |b| {
        b.iter(|| {
            black_box(CompanyGraph::from_series(
                &series,
                GraphConfig { k: 5, ..Default::default() },
            ))
        });
    });
}

fn ams_task() -> (CompanyGraph, Vec<QuarterBatch>) {
    let panel = generate(&SynthConfig::transaction_paper(1)).panel;
    let fs = FeatureSet::build(&panel, 4);
    let series = panel.all_revenue_series(0, 12);
    let graph = CompanyGraph::from_series(&series, GraphConfig::default());
    let batches: Vec<QuarterBatch> = (4..12)
        .map(|t| {
            let ids = fs.samples_at_quarter(t);
            let (x, r, cdim, y) = fs.design(&ids);
            QuarterBatch { x: Matrix::from_vec(r, cdim, x), y: Matrix::col_vector(&y) }
        })
        .collect();
    (graph, batches)
}

fn bench_ams_short_fit(c: &mut Criterion) {
    let (graph, batches) = ams_task();
    let mut group = c.benchmark_group("ams_fit");
    group.sample_size(10);
    group.bench_function("ams_fit_10_epochs_71_companies", |b| {
        b.iter(|| {
            let mut model =
                AmsModel::new(AmsConfig { epochs: 10, dropout: 0.0, ..Default::default() });
            model.fit(&graph, &batches);
            black_box(model.predict(&batches[0].x))
        });
    });
    group.finish();
}

fn bench_gbdt_fit(c: &mut Criterion) {
    let panel = generate(&SynthConfig::transaction_paper(1)).panel;
    let fs = FeatureSet::build(&panel, 4);
    let ids: Vec<usize> = (0..fs.samples.len()).collect();
    let (x, r, cdim, y) = fs.design(&ids);
    let xm = Matrix::from_vec(r, cdim, x);
    let ym = Matrix::col_vector(&y);
    let mut group = c.benchmark_group("gbdt");
    group.sample_size(10);
    group.bench_function("gbdt_fit_50_trees_852x48", |b| {
        b.iter(|| {
            let mut m = Gbdt::new(GbdtConfig { n_estimators: 50, ..Default::default() });
            m.fit(&xm, &ym);
            black_box(m.predict(&xm))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generate,
    bench_features,
    bench_graph_build,
    bench_ams_short_fit,
    bench_gbdt_fit
);
criterion_main!(benches);
