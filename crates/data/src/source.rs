//! Pull-based panel sources.
//!
//! A [`PanelSource`] abstracts "where a panel comes from": an in-memory
//! [`Panel`], the streaming synthetic generator
//! ([`SynthStream`](crate::synth::SynthStream)), or the `ams-store`
//! columnar feature store. Consumers pull batches of complete
//! company histories, so a fit/eval pipeline — or a store writer —
//! never needs the whole universe resident at once.
//!
//! The contract every source upholds:
//!
//! * company ids are dense `0..num_companies()` and batches arrive in
//!   ascending id order without gaps or overlap;
//! * every company covers the same consecutive [`Quarter`] axis, with
//!   observations in quarter order;
//! * [`reset`](PanelSource::reset) rewinds to company 0, so a source
//!   can be consumed more than once (e.g. one pass to build the
//!   correlation graph, one to fit).

use crate::panel::{Observation, Panel};
use crate::quarters::Quarter;
use crate::universe::Company;

/// Errors a panel source can surface while pulling batches.
#[derive(Debug)]
pub enum SourceError {
    /// Underlying I/O failed (store files, CSV, ...).
    Io(std::io::Error),
    /// The source's data violates the panel contract (non-dense ids,
    /// wrong quarter count, checksum mismatch, ...).
    Invalid(String),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Io(e) => write!(f, "panel source I/O error: {e}"),
            SourceError::Invalid(msg) => write!(f, "panel source invalid: {msg}"),
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Io(e) => Some(e),
            SourceError::Invalid(_) => None,
        }
    }
}

impl From<std::io::Error> for SourceError {
    fn from(e: std::io::Error) -> Self {
        SourceError::Io(e)
    }
}

/// One company's complete history: its metadata plus one observation
/// per quarter of the source's quarter axis, in quarter order.
#[derive(Debug, Clone)]
pub struct CompanyHistory {
    /// The company.
    pub company: Company,
    /// `obs.len() == source.quarters().len()`.
    pub obs: Vec<Observation>,
}

/// A pull-based producer of company histories. See the module docs for
/// the ordering/density contract.
pub trait PanelSource {
    /// Total number of companies this source will emit.
    fn num_companies(&self) -> usize;

    /// The consecutive quarter axis shared by every company.
    fn quarters(&self) -> &[Quarter];

    /// Alternative-channel names, in `Observation::alt` order.
    fn alt_names(&self) -> &[String];

    /// Pull up to `max_companies` next histories. An empty vec means
    /// the source is exhausted (and only then).
    fn next_batch(&mut self, max_companies: usize) -> Result<Vec<CompanyHistory>, SourceError>;

    /// Rewind to company 0.
    fn reset(&mut self);
}

/// Drain a source into an in-memory [`Panel`], validating the density
/// contract. Intended for paper-scale universes; for 100k+ companies
/// consume batches directly instead.
pub fn materialize(source: &mut dyn PanelSource) -> Result<Panel, SourceError> {
    let quarters = source.quarters().to_vec();
    let alt_names = source.alt_names().to_vec();
    let n = source.num_companies();
    let nq = quarters.len();
    let mut companies = Vec::with_capacity(n);
    let mut obs = Vec::with_capacity(n * nq);
    loop {
        let batch = source.next_batch(1024)?;
        if batch.is_empty() {
            break;
        }
        for h in batch {
            if h.company.id != companies.len() {
                return Err(SourceError::Invalid(format!(
                    "expected company id {}, got {}",
                    companies.len(),
                    h.company.id
                )));
            }
            if h.obs.len() != nq {
                return Err(SourceError::Invalid(format!(
                    "company {} has {} observations, expected {nq}",
                    h.company.id,
                    h.obs.len()
                )));
            }
            companies.push(h.company);
            obs.extend(h.obs);
        }
    }
    if companies.len() != n {
        return Err(SourceError::Invalid(format!(
            "source announced {n} companies but emitted {}",
            companies.len()
        )));
    }
    Ok(Panel::new(companies, quarters, alt_names, obs))
}

/// A cursor over an in-memory [`Panel`] — the trivial [`PanelSource`],
/// and the adapter that lets panel-based tests drive source-based
/// pipelines.
#[derive(Debug)]
pub struct PanelCursor<'a> {
    panel: &'a Panel,
    next_id: usize,
}

impl<'a> PanelCursor<'a> {
    /// A cursor positioned at company 0.
    pub fn new(panel: &'a Panel) -> Self {
        Self { panel, next_id: 0 }
    }
}

impl PanelSource for PanelCursor<'_> {
    fn num_companies(&self) -> usize {
        self.panel.num_companies()
    }

    fn quarters(&self) -> &[Quarter] {
        &self.panel.quarters
    }

    fn alt_names(&self) -> &[String] {
        &self.panel.alt_names
    }

    fn next_batch(&mut self, max_companies: usize) -> Result<Vec<CompanyHistory>, SourceError> {
        let end = (self.next_id + max_companies).min(self.panel.num_companies());
        let nq = self.panel.num_quarters();
        let mut out = Vec::with_capacity(end.saturating_sub(self.next_id));
        for c in self.next_id..end {
            let obs = (0..nq).map(|t| self.panel.get(c, t).clone()).collect();
            out.push(CompanyHistory { company: self.panel.companies[c].clone(), obs });
        }
        self.next_id = end;
        Ok(out)
    }

    fn reset(&mut self) {
        self.next_id = 0;
    }
}

impl crate::synth::SynthStream {
    /// View the stream as a [`PanelSource`] batch puller.
    pub fn as_source(&mut self) -> SynthSource<'_> {
        SynthSource { stream: self }
    }
}

/// [`PanelSource`] adapter over [`SynthStream`](crate::synth::SynthStream).
#[derive(Debug)]
pub struct SynthSource<'a> {
    stream: &'a mut crate::synth::SynthStream,
}

impl PanelSource for SynthSource<'_> {
    fn num_companies(&self) -> usize {
        self.stream.num_companies()
    }

    fn quarters(&self) -> &[Quarter] {
        self.stream.quarters()
    }

    fn alt_names(&self) -> &[String] {
        self.stream.alt_names()
    }

    fn next_batch(&mut self, max_companies: usize) -> Result<Vec<CompanyHistory>, SourceError> {
        let nq = self.stream.quarters().len();
        match self.stream.next_block(max_companies) {
            None => Ok(Vec::new()),
            Some((companies, obs)) => {
                let mut out = Vec::with_capacity(companies.len());
                let mut obs = obs.into_iter();
                for company in companies {
                    out.push(CompanyHistory { company, obs: obs.by_ref().take(nq).collect() });
                }
                Ok(out)
            }
        }
    }

    fn reset(&mut self) {
        self.stream.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig, SynthStream};

    #[test]
    fn panel_cursor_round_trips() {
        let panel = generate(&SynthConfig::tiny(21)).panel;
        let mut cur = PanelCursor::new(&panel);
        let back = materialize(&mut cur).expect("materialize");
        assert_eq!(back.num_companies(), panel.num_companies());
        assert_eq!(back.quarters, panel.quarters);
        assert_eq!(back.alt_names, panel.alt_names);
        for c in 0..panel.num_companies() {
            for t in 0..panel.num_quarters() {
                assert_eq!(back.get(c, t).revenue.to_bits(), panel.get(c, t).revenue.to_bits());
            }
        }
    }

    #[test]
    fn panel_cursor_batches_in_id_order() {
        let panel = generate(&SynthConfig::tiny(22)).panel;
        let mut cur = PanelCursor::new(&panel);
        let mut seen = Vec::new();
        loop {
            let batch = cur.next_batch(5).expect("batch");
            if batch.is_empty() {
                break;
            }
            seen.extend(batch.into_iter().map(|h| h.company.id));
        }
        assert_eq!(seen, (0..panel.num_companies()).collect::<Vec<_>>());
        cur.reset();
        assert_eq!(cur.next_batch(1).expect("batch")[0].company.id, 0);
    }

    #[test]
    fn synth_stream_source_materializes() {
        let cfg = SynthConfig::tiny(23);
        let mut stream = SynthStream::new(&cfg);
        let panel = materialize(&mut stream.as_source()).expect("materialize");
        assert_eq!(panel.num_companies(), cfg.n_companies);
        assert_eq!(panel.num_quarters(), cfg.n_quarters);
        // Same stream, second pass after reset: identical bits.
        let mut stream2 = SynthStream::new(&cfg);
        let mut src = stream2.as_source();
        let first = materialize(&mut src).expect("materialize");
        src.reset();
        let second = materialize(&mut src).expect("materialize");
        assert_eq!(first.get(3, 2).revenue.to_bits(), second.get(3, 2).revenue.to_bits());
        assert_eq!(panel.get(3, 2).revenue.to_bits(), first.get(3, 2).revenue.to_bits());
    }
}
