//! Quarterly panel storage: one [`Observation`] per (company, quarter).

use crate::quarters::Quarter;
use crate::universe::Company;

/// Everything recorded for one company in one quarter.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Observation {
    /// Officially reported revenue `R_i^t` (millions).
    pub revenue: f64,
    /// Analyst consensus `E_i^t` — the mean of the analyst panel's
    /// estimates, frozen at fiscal quarter end (before announcement).
    pub consensus: f64,
    /// Lowest analyst estimate `LE_i^t`.
    pub low_est: f64,
    /// Highest analyst estimate `HE_i^t`.
    pub high_est: f64,
    /// Alternative-data aggregates `A_i^t` for this quarter, one value
    /// per channel (1 channel for transaction amount, 2 for map query
    /// to store / to parking lot).
    pub alt: Vec<f64>,
}

impl Observation {
    /// The actual unexpected revenue `UR = R − E(R)` (§II-A).
    pub fn unexpected_revenue(&self) -> f64 {
        self.revenue - self.consensus
    }
}

/// A complete quarterly panel: companies × consecutive quarters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Panel {
    /// The company universe; `companies[i].id == i`.
    pub companies: Vec<Company>,
    /// Consecutive quarters covered by the panel.
    pub quarters: Vec<Quarter>,
    /// Names of the alternative-data channels, e.g. `["txn_amount"]`.
    pub alt_names: Vec<String>,
    /// Row-major `[company][quarter]` observations.
    obs: Vec<Observation>,
}

impl Panel {
    /// Assemble a panel; `obs` must be row-major `[company][quarter]`.
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent, quarters are not
    /// consecutive, or any channel width disagrees with `alt_names`.
    pub fn new(
        companies: Vec<Company>,
        quarters: Vec<Quarter>,
        alt_names: Vec<String>,
        obs: Vec<Observation>,
    ) -> Self {
        assert_eq!(
            obs.len(),
            companies.len() * quarters.len(),
            "panel: observation count mismatch"
        );
        for w in quarters.windows(2) {
            assert_eq!(w[1], w[0].next(), "panel: quarters must be consecutive");
        }
        for (i, c) in companies.iter().enumerate() {
            assert_eq!(c.id, i, "panel: company ids must be dense and ordered");
        }
        for o in &obs {
            assert_eq!(o.alt.len(), alt_names.len(), "panel: alt channel width mismatch");
        }
        Self { companies, quarters, alt_names, obs }
    }

    /// Number of companies.
    pub fn num_companies(&self) -> usize {
        self.companies.len()
    }

    /// Number of quarters.
    pub fn num_quarters(&self) -> usize {
        self.quarters.len()
    }

    /// Observation for company `c` at quarter index `t`.
    pub fn get(&self, c: usize, t: usize) -> &Observation {
        &self.obs[c * self.quarters.len() + t]
    }

    /// Mutable observation for company `c` at quarter index `t`.
    pub fn get_mut(&mut self, c: usize, t: usize) -> &mut Observation {
        let nq = self.quarters.len();
        &mut self.obs[c * nq + t]
    }

    /// Index of a quarter within the panel, if covered.
    pub fn quarter_index(&self, q: Quarter) -> Option<usize> {
        let first = *self.quarters.first()?;
        let d = q.diff(first);
        if d >= 0 && (d as usize) < self.quarters.len() {
            Some(d as usize)
        } else {
            None
        }
    }

    /// Revenue series of company `c` over quarter indices `[start, end)`
    /// — the input to correlation-graph construction.
    pub fn revenue_series(&self, c: usize, start: usize, end: usize) -> Vec<f64> {
        (start..end).map(|t| self.get(c, t).revenue).collect()
    }

    /// Revenue series for every company over `[start, end)`.
    pub fn all_revenue_series(&self, start: usize, end: usize) -> Vec<Vec<f64>> {
        (0..self.num_companies()).map(|c| self.revenue_series(c, start, end)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Sector;

    fn tiny_panel() -> Panel {
        let companies = vec![
            Company {
                id: 0,
                name: "A".into(),
                sector: Sector::Retail,
                market_cap: 2.0,
                fiscal_offset: 0,
            },
            Company {
                id: 1,
                name: "B".into(),
                sector: Sector::Travel,
                market_cap: 0.5,
                fiscal_offset: 1,
            },
        ];
        let quarters = Quarter::range(Quarter::new(2016, 1), Quarter::new(2016, 3));
        let mut obs = Vec::new();
        for c in 0..2 {
            for t in 0..3 {
                let base = 100.0 * (c + 1) as f64 + t as f64;
                obs.push(Observation {
                    revenue: base,
                    consensus: base - 1.0,
                    low_est: base - 3.0,
                    high_est: base + 2.0,
                    alt: vec![base * 10.0],
                });
            }
        }
        Panel::new(companies, quarters, vec!["txn".into()], obs)
    }

    #[test]
    fn indexing_is_row_major() {
        let p = tiny_panel();
        assert_eq!(p.get(0, 0).revenue, 100.0);
        assert_eq!(p.get(0, 2).revenue, 102.0);
        assert_eq!(p.get(1, 0).revenue, 200.0);
    }

    #[test]
    fn unexpected_revenue_definition() {
        let p = tiny_panel();
        assert_eq!(p.get(1, 1).unexpected_revenue(), 1.0);
    }

    #[test]
    fn quarter_index_lookup() {
        let p = tiny_panel();
        assert_eq!(p.quarter_index(Quarter::new(2016, 1)), Some(0));
        assert_eq!(p.quarter_index(Quarter::new(2016, 3)), Some(2));
        assert_eq!(p.quarter_index(Quarter::new(2015, 4)), None);
        assert_eq!(p.quarter_index(Quarter::new(2016, 4)), None);
    }

    #[test]
    fn revenue_series_slice() {
        let p = tiny_panel();
        assert_eq!(p.revenue_series(0, 0, 2), vec![100.0, 101.0]);
        assert_eq!(p.all_revenue_series(1, 3)[1], vec![201.0, 202.0]);
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn rejects_gapped_quarters() {
        let mut p = tiny_panel();
        let companies = p.companies.clone();
        let alt_names = p.alt_names.clone();
        let obs: Vec<Observation> = (0..4).map(|_| p.get(0, 0).clone()).collect();
        p = Panel::new(
            companies,
            vec![Quarter::new(2016, 1), Quarter::new(2016, 3)],
            alt_names,
            obs,
        );
        let _ = p;
    }

    #[test]
    #[should_panic(expected = "observation count")]
    fn rejects_wrong_obs_count() {
        let p = tiny_panel();
        Panel::new(p.companies.clone(), p.quarters.clone(), p.alt_names.clone(), vec![]);
    }
}
