//! Structural simulator replacing the proprietary alternative datasets.
//!
//! The paper's data (China UnionPay transaction amounts; Baidu Maps
//! query counts) is unavailable, so this module generates a synthetic
//! panel whose *statistical structure* matches the properties the paper
//! relies on:
//!
//! 1. **Revenue** follows sector-seasonal, trending, factor-driven
//!    dynamics plus a *current-quarter demand shock* `ε_i(t)` that no
//!    purely historical model can see.
//! 2. **Analysts** know the predictable part and only partially
//!    incorporate `ε` (under-reaction fraction `phi`), so the consensus
//!    is good but beatable: its error — the unexpected revenue — is
//!    partially predictable from data that observes `ε`.
//! 3. **Alternative data** observes realized demand through a
//!    company-specific sensitivity `κ_i` (transaction coverage /
//!    store-visit conversion), clustered by sector. A global fixed-
//!    weight model mis-scales companies whose `κ` is far from average;
//!    an adaptive per-company model (the slave-LR) can calibrate — this
//!    is the mechanism that reproduces the paper's ordering in
//!    Tables I–III.
//! 4. The **map-query** channel is noisier and more indirect than the
//!    transaction channel (two series via a drifting visitation link),
//!    reproducing the paper's observation that QoQ/YoY-style ratio
//!    rules collapse on it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ams_stats::mean;

use crate::panel::{Observation, Panel};
use crate::quarters::Quarter;
use crate::universe::{random_universe, Company, Sector};

/// Which alternative-data product to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AltChannel {
    /// Online credit-card transaction amounts (one series/company).
    TransactionAmount,
    /// Map queries to store and to parking lot (two series/company).
    MapQuery,
}

impl AltChannel {
    /// Channel names in panel column order.
    pub fn names(self) -> Vec<String> {
        match self {
            AltChannel::TransactionAmount => vec!["txn_amount".into()],
            AltChannel::MapQuery => vec!["map_query_store".into(), "map_query_parking".into()],
        }
    }
}

/// Simulator parameters. Defaults are calibrated so the experiment
/// binaries reproduce the *shape* of the paper's tables (see
/// EXPERIMENTS.md for the calibration record).
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of companies (paper: 71 transaction, 62 map query).
    pub n_companies: usize,
    /// First quarter of the panel.
    pub start: Quarter,
    /// Number of consecutive quarters (paper: 16 transaction, 9 map query).
    pub n_quarters: usize,
    /// Alternative-data product to attach.
    pub channel: AltChannel,
    /// RNG seed (panels are bit-reproducible per seed).
    pub seed: u64,
    /// Std of the current-quarter demand shock `ε` in log space.
    pub demand_shock_std: f64,
    /// Fraction of `ε` analysts incorporate (under-reaction ⇒ < 1).
    pub analyst_reaction: f64,
    /// Std of consensus-level noise in log space.
    pub consensus_noise_std: f64,
    /// Stationary std of the persistent per-company analyst bias
    /// (systematic optimism/pessimism, AR(1) with ρ = 0.95). Keeps the
    /// unexpected revenue bounded away from zero most quarters — the
    /// empirically documented behaviour of real consensus errors — and
    /// gives models a learnable company-level component.
    pub analyst_bias_std: f64,
    /// Dispersion of individual analyst estimates around consensus.
    pub analyst_dispersion: f64,
    /// Analysts covering each company (min, max inclusive).
    pub analysts_per_company: (usize, usize),
    /// Observation noise of the transaction channel (log space).
    pub txn_noise_std: f64,
    /// Quarterly drift std of transaction coverage `c_i(t)`.
    pub coverage_drift_std: f64,
    /// Observation noise of map-query-to-store counts (log space).
    pub store_noise_std: f64,
    /// Observation noise of map-query-to-parking counts (log space).
    pub parking_noise_std: f64,
    /// AR(1) std of the visitation↔revenue conversion wedge (map query).
    pub conversion_drift_std: f64,
    /// Across-sector std of the sensitivity κ's sector mean.
    pub kappa_sector_std: f64,
    /// Within-sector std of company sensitivity κ.
    pub kappa_company_std: f64,
    /// Noise multiplier applied to the channel of a poor-coverage
    /// company (its alternative data barely tracks revenue).
    pub poor_noise_mult: f64,
    /// Sensitivity multiplier for a poor-coverage company's channel.
    pub poor_kappa_mult: f64,
    /// Base probability that a company's channel relation is
    /// *inverted* (κ < 0): volume proxies discounting/promotion rather
    /// than recognized revenue, as with GMV-heavy platforms. A global
    /// fixed-weight model necessarily gets these companies backwards;
    /// only a per-company slave model can flip the sign — the same
    /// phenomenon the paper's Figure 8 shows as opposite feature
    /// weights across companies.
    pub inverted_prob: f64,
}

impl SynthConfig {
    /// The transaction-amount dataset of §II-D: 71 companies,
    /// 2014q3–2018q2 (16 quarters).
    pub fn transaction_paper(seed: u64) -> Self {
        Self {
            n_companies: 71,
            start: Quarter::new(2014, 3),
            n_quarters: 16,
            channel: AltChannel::TransactionAmount,
            seed,
            demand_shock_std: 0.070,
            analyst_reaction: 0.30,
            consensus_noise_std: 0.012,
            analyst_bias_std: 0.008,
            analyst_dispersion: 0.022,
            analysts_per_company: (4, 12),
            txn_noise_std: 0.015,
            coverage_drift_std: 0.005,
            store_noise_std: 0.025,
            parking_noise_std: 0.040,
            conversion_drift_std: 0.015,
            kappa_sector_std: 0.30,
            kappa_company_std: 0.05,
            poor_noise_mult: 3.0,
            poor_kappa_mult: 0.35,
            inverted_prob: 0.25,
        }
    }

    /// The map-query dataset of §II-D: 62 companies, 2016q2–2018q2
    /// (9 quarters).
    pub fn map_query_paper(seed: u64) -> Self {
        Self {
            n_companies: 62,
            start: Quarter::new(2016, 2),
            n_quarters: 9,
            channel: AltChannel::MapQuery,
            ..Self::transaction_paper(seed)
        }
    }

    /// A small fast panel for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            n_companies: 12,
            start: Quarter::new(2015, 1),
            n_quarters: 10,
            channel: AltChannel::TransactionAmount,
            ..Self::transaction_paper(seed)
        }
    }
}

/// Latent per-company state the generator tracks (exposed for tests and
/// for the "oracle" diagnostics in the benches).
#[derive(Debug, Clone)]
pub struct LatentCompany {
    /// Base log revenue level.
    pub log_level: f64,
    /// Quarterly log growth rate.
    pub growth: f64,
    /// Sensitivity of the alternative channel to log revenue.
    pub kappa: f64,
    /// Loading on the sector demand factor.
    pub factor_loading: f64,
    /// Whether the company's alternative channel has poor coverage
    /// (mostly noise): the heterogeneity that only an adaptive
    /// per-company model can exploit.
    pub poor_coverage: bool,
    /// Whether the channel relation is inverted (negative κ).
    pub inverted: bool,
    /// Latent business-model subgroup within the sector (0 or 1).
    pub subgroup: usize,
}

/// A generated panel plus the latent ground truth behind it.
#[derive(Debug, Clone)]
pub struct SynthPanel {
    /// The observable panel handed to models.
    pub panel: Panel,
    /// Latent per-company parameters (never fed to models; used by
    /// tests to verify the generator and by benches for diagnostics).
    pub latents: Vec<LatentCompany>,
    /// The demand shocks `ε_i(t)` (company-major), the quantity the
    /// alternative data partially reveals.
    pub shocks: Vec<Vec<f64>>,
}

/// Sector-level latent state shared by every company of a panel: the
/// demand-factor paths, κ sector means, subgroup factors, and the
/// sector coverage/inversion traits. Drawn once per panel (or once per
/// stream) before any company is generated.
struct SectorState {
    sector_factor: Vec<Vec<f64>>,
    kappa_sector: Vec<f64>,
    subgroup_factor: Vec<Vec<Vec<f64>>>,
    poor_sector: Vec<bool>,
    sector_inverted: Vec<bool>,
}

/// Draw the sector-level state. The draw order here is frozen: it is
/// part of the per-seed byte-reproducibility contract of [`generate`].
fn draw_sector_state(config: &SynthConfig, rng: &mut impl Rng) -> SectorState {
    let nq = config.n_quarters;
    // Sector factor paths: AR(1) in log space.
    let n_sectors = Sector::ALL.len();
    let mut sector_factor = vec![vec![0.0; nq]; n_sectors];
    for path in &mut sector_factor {
        let mut f = 0.0;
        for v in path.iter_mut() {
            f = 0.6 * f + 0.035 * normal(rng);
            *v = f;
        }
    }

    // Sector-level mean sensitivity κ_s (what makes the correlation
    // graph informative about a company's calibration).
    let kappa_sector: Vec<f64> =
        (0..n_sectors).map(|_| 1.0 + config.kappa_sector_std * normal(rng)).collect();
    // Sector-level probability that a member company's alternative
    // channel has poor coverage — clustered so the correlation graph
    // carries information about channel quality.
    // Channel coverage quality is a *latent subgroup* trait: each
    // sector splits into two business-model subgroups (e.g.
    // online-heavy vs. offline-heavy chains). Subgroups share a demand
    // factor, so the revenue-correlation graph clusters by subgroup —
    // the graph, not any feature column, carries the gating signal.
    // Subgroups shape revenue co-movement (and hence the correlation
    // graph); channel coverage quality itself is a sector-level trait
    // observable through the sector one-hot.
    let mut subgroup_factor = vec![vec![vec![0.0; nq]; 2]; n_sectors];
    for sector_paths in &mut subgroup_factor {
        for path in sector_paths.iter_mut() {
            let mut f = 0.0;
            for v in path.iter_mut() {
                f = 0.5 * f + 0.045 * normal(rng);
                *v = f;
            }
        }
    }
    let poor_sector: Vec<bool> = (0..n_sectors).map(|_| rng.gen::<f64>() < 0.3).collect();
    // Channel inversion is a *sector-level* trait (GMV-heavy platform
    // sectors report volume that anticorrelates with recognized
    // revenue); individual companies follow their sector's sign with
    // high probability, so sector one-hots and graph neighbours carry
    // the information an adaptive model needs to flip the slope.
    let sector_inverted: Vec<bool> =
        (0..n_sectors).map(|_| rng.gen::<f64>() < config.inverted_prob).collect();
    SectorState { sector_factor, kappa_sector, subgroup_factor, poor_sector, sector_inverted }
}

/// Generate one company's latents, demand shocks, and observations.
/// Every random decision comes from `rng`, so the caller chooses the
/// determinism granularity: [`generate`] threads one shared RNG through
/// all companies (frozen draw order), the streaming generator hands
/// each company its own id-derived RNG.
fn company_series(
    config: &SynthConfig,
    st: &SectorState,
    company: &Company,
    quarters: &[Quarter],
    rng: &mut impl Rng,
) -> (LatentCompany, Vec<f64>, Vec<Observation>) {
    let nq = quarters.len();
    let sector = company.sector;
    // Base scale tied to market cap (revenue in millions/quarter).
    let log_level = (150.0 * company.market_cap.max(0.05)).ln() + 0.3 * normal(rng);
    let growth = 0.010 + 0.012 * normal(rng);
    let kappa = st.kappa_sector[sector.index()] + config.kappa_company_std * normal(rng);
    // Keep sensitivity bounded away from zero so ratios stay informative.
    let mut kappa = kappa.clamp(0.4, 1.8);
    let subgroup = rng.gen_range(0..2usize);
    let poor_coverage = st.poor_sector[sector.index()] == (rng.gen::<f64>() < 0.97);
    let noise_mult = if poor_coverage { config.poor_noise_mult } else { 1.0 };
    if poor_coverage {
        kappa *= config.poor_kappa_mult;
    }
    let follows_sector = rng.gen::<f64>() < 0.98;
    let inverted = st.sector_inverted[sector.index()] == follows_sector;
    if inverted {
        kappa *= -0.8;
    }
    let factor_loading = 0.8 + 0.3 * rng.gen::<f64>();
    let latent = LatentCompany {
        log_level,
        growth,
        kappa,
        factor_loading,
        poor_coverage,
        inverted,
        subgroup,
    };

    // Company AR(1) demand wedge and channel-specific drifts.
    let mut idio = 0.0;
    let mut analyst_bias = config.analyst_bias_std * normal(rng);
    let mut log_coverage = (0.05 + 0.25 * rng.gen::<f64>()).ln();
    let mut conv_wedge = 0.0;
    let store_scale = (2.0 + 8.0 * rng.gen::<f64>()).ln();
    let parking_scale = (0.5 + 3.0 * rng.gen::<f64>()).ln();
    let n_analysts = rng.gen_range(config.analysts_per_company.0..=config.analysts_per_company.1);

    let mut company_shocks = Vec::with_capacity(nq);
    let mut obs = Vec::with_capacity(nq);
    for (t, q) in quarters.iter().enumerate() {
        idio = 0.5 * idio + 0.03 * normal(rng);
        let season = sector.seasonal_shape(q.q()).ln();
        let predictable = log_level
            + growth * t as f64
            + season
            + factor_loading * st.sector_factor[sector.index()][t]
            + st.subgroup_factor[sector.index()][subgroup][t]
            + idio;
        let eps = config.demand_shock_std * normal(rng);
        company_shocks.push(eps);
        let log_revenue = predictable + eps;
        let revenue = log_revenue.exp();

        // Analyst panel: consensus target under-reacts to ε and
        // carries the slowly moving company-level bias.
        analyst_bias = 0.95 * analyst_bias
            + config.analyst_bias_std * (1.0f64 - 0.95 * 0.95).sqrt() * normal(rng);
        let log_consensus_target = predictable
            + config.analyst_reaction * eps
            + analyst_bias
            + config.consensus_noise_std * normal(rng);
        let estimates: Vec<f64> = (0..n_analysts)
            .map(|_| (log_consensus_target + config.analyst_dispersion * normal(rng)).exp())
            .collect();
        let consensus = mean(&estimates);
        let low = estimates.iter().copied().fold(f64::INFINITY, f64::min);
        let high = estimates.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        // Alternative channel(s).
        log_coverage += config.coverage_drift_std * normal(rng);
        let alt = match config.channel {
            AltChannel::TransactionAmount => {
                let log_a = log_coverage
                    + kappa * log_revenue
                    + noise_mult * config.txn_noise_std * normal(rng);
                // Scale down so magnitudes look like "sum of online
                // transactions" rather than total revenue.
                vec![(log_a * 0.999).exp()]
            }
            AltChannel::MapQuery => {
                conv_wedge =
                    0.55 * conv_wedge + noise_mult * config.conversion_drift_std * normal(rng);
                let log_visits = kappa * log_revenue + conv_wedge;
                let store =
                    (store_scale + log_visits + noise_mult * config.store_noise_std * normal(rng))
                        .exp();
                let parking = (parking_scale
                    + log_visits
                    + noise_mult * config.parking_noise_std * normal(rng))
                .exp();
                vec![store, parking]
            }
        };

        obs.push(Observation { revenue, consensus, low_est: low, high_est: high, alt });
    }
    (latent, company_shocks, obs)
}

/// Ceiling on `SynthConfig::n_companies` (16M — vendor scale with an
/// order of magnitude of slack). The generator sizes several arrays by
/// the config's dimensions, so it refuses absurd ones loudly instead
/// of attempting the allocation.
pub const MAX_SYNTH_COMPANIES: usize = 1 << 24;
/// Ceiling on `SynthConfig::n_quarters` (1024 quarters = 256 years).
pub const MAX_SYNTH_QUARTERS: usize = 1 << 10;

/// Generate a panel according to `config`.
///
/// # Panics
/// Panics if the config's dimensions exceed [`MAX_SYNTH_COMPANIES`] /
/// [`MAX_SYNTH_QUARTERS`].
pub fn generate(config: &SynthConfig) -> SynthPanel {
    assert!(
        config.n_companies <= MAX_SYNTH_COMPANIES && config.n_quarters <= MAX_SYNTH_QUARTERS,
        "synthetic panel dimensions {}x{} exceed {MAX_SYNTH_COMPANIES}x{MAX_SYNTH_QUARTERS}",
        config.n_companies,
        config.n_quarters
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let companies = random_universe(config.n_companies, &mut rng);
    let quarters: Vec<Quarter> =
        (0..config.n_quarters as i64).map(|i| config.start.add(i)).collect();
    let st = draw_sector_state(config, &mut rng);

    let mut latents = Vec::with_capacity(companies.len());
    let mut shocks: Vec<Vec<f64>> = Vec::with_capacity(companies.len());
    let mut obs: Vec<Observation> = Vec::with_capacity(companies.len() * config.n_quarters);
    for company in &companies {
        let (latent, company_shocks, company_obs) =
            company_series(config, &st, company, &quarters, &mut rng);
        latents.push(latent);
        shocks.push(company_shocks);
        obs.extend(company_obs);
    }

    let panel = Panel::new(companies, quarters, config.channel.names(), obs);
    SynthPanel { panel, latents, shocks }
}

/// SplitMix64 finalizer, used to derive independent per-company RNG
/// seeds for the streaming generator (kept local so `ams-data` stays
/// dependency-light; the same mixer lives in `ams-fault` for fault
/// plans).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A streaming synthetic-panel generator: emits companies block-by-
/// block in bounded memory, so 100k–1M-company universes can be written
/// straight into the `ams-store` columnar format without ever holding a
/// full [`Panel`].
///
/// Each company's metadata and series are drawn from an RNG seeded by
/// `(seed, company id)`, and the sector-level state from a dedicated
/// stream of the seed — so the output is a pure function of
/// `(config, company id)`, independent of how callers batch the pull.
/// The stream deliberately does *not* reproduce [`generate`]'s exact
/// values (that path threads one RNG through all companies and its
/// draw order is frozen by golden tests); it reproduces the same
/// statistical structure at scales `generate` cannot reach.
#[derive(Debug)]
pub struct SynthStream {
    config: SynthConfig,
    state: SectorState,
    quarters: Vec<Quarter>,
    alt_names: Vec<String>,
    next_id: usize,
}

// SectorState carries no Debug derive; keep the stream's Debug output
// to the part that identifies it.
impl std::fmt::Debug for SectorState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SectorState").finish_non_exhaustive()
    }
}

impl SynthStream {
    /// Start a stream over `config.n_companies` companies.
    pub fn new(config: &SynthConfig) -> Self {
        // A dedicated seed stream for the sector state, so it matches
        // across blocks and across differently-sized universes.
        let mut rng = StdRng::seed_from_u64(splitmix(config.seed ^ 0x5EC7_0257_A7E5_7A7E));
        let state = draw_sector_state(config, &mut rng);
        let quarters: Vec<Quarter> =
            (0..config.n_quarters as i64).map(|i| config.start.add(i)).collect();
        Self {
            config: config.clone(),
            state,
            quarters,
            alt_names: config.channel.names(),
            next_id: 0,
        }
    }

    /// Total number of companies the stream will emit.
    pub fn num_companies(&self) -> usize {
        self.config.n_companies
    }

    /// The (consecutive) quarters every company covers.
    pub fn quarters(&self) -> &[Quarter] {
        &self.quarters
    }

    /// Alternative-channel names, in panel column order.
    pub fn alt_names(&self) -> &[String] {
        &self.alt_names
    }

    /// Rewind to company 0 (streams are cheaply replayable: all state
    /// is derived from the seed).
    pub fn reset(&mut self) {
        self.next_id = 0;
    }

    /// Emit the next block of up to `max_companies` companies (ids are
    /// dense and ascending across calls). Observations are company-
    /// major: `obs[c * n_quarters + t]`. Returns `None` when exhausted.
    pub fn next_block(&mut self, max_companies: usize) -> Option<(Vec<Company>, Vec<Observation>)> {
        if self.next_id >= self.config.n_companies || max_companies == 0 {
            return None;
        }
        let end = (self.next_id + max_companies).min(self.config.n_companies);
        let n = end - self.next_id;
        let mut companies = Vec::with_capacity(n);
        let mut obs = Vec::with_capacity(n * self.quarters.len());
        for id in self.next_id..end {
            let mut rng =
                StdRng::seed_from_u64(splitmix(self.config.seed ^ splitmix(id as u64 ^ 0xC0)));
            let company = crate::universe::random_company(id, &mut rng);
            let (_latent, _shocks, company_obs) =
                company_series(&self.config, &self.state, &company, &self.quarters, &mut rng);
            companies.push(company);
            obs.extend(company_obs);
        }
        self.next_id = end;
        Some((companies, obs))
    }
}

fn normal(rng: &mut impl Rng) -> f64 {
    ams_tensor_free_normal(rng)
}

// Box–Muller without depending on ams-tensor (keeps the crate graph
// acyclic: data ← models ← core all share ams-stats only).
fn ams_tensor_free_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_stats::pearson;

    #[test]
    fn paper_shapes() {
        let tx = generate(&SynthConfig::transaction_paper(1));
        assert_eq!(tx.panel.num_companies(), 71);
        assert_eq!(tx.panel.num_quarters(), 16);
        assert_eq!(tx.panel.alt_names, vec!["txn_amount"]);
        let mq = generate(&SynthConfig::map_query_paper(1));
        assert_eq!(mq.panel.num_companies(), 62);
        assert_eq!(mq.panel.num_quarters(), 9);
        assert_eq!(mq.panel.alt_names.len(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&SynthConfig::tiny(7));
        let b = generate(&SynthConfig::tiny(7));
        let c = generate(&SynthConfig::tiny(8));
        assert_eq!(a.panel.get(3, 4).revenue, b.panel.get(3, 4).revenue);
        assert_ne!(a.panel.get(3, 4).revenue, c.panel.get(3, 4).revenue);
    }

    #[test]
    fn revenues_positive_and_finite() {
        let s = generate(&SynthConfig::transaction_paper(2));
        for c in 0..71 {
            for t in 0..16 {
                let o = s.panel.get(c, t);
                assert!(o.revenue > 0.0 && o.revenue.is_finite());
                assert!(o.consensus > 0.0);
                assert!(o.low_est <= o.consensus && o.consensus <= o.high_est);
                assert!(o.alt.iter().all(|&a| a > 0.0 && a.is_finite()));
            }
        }
    }

    #[test]
    fn consensus_is_good_but_imperfect() {
        // Mean absolute relative consensus error should be a few percent
        // — analysts are strong but beatable.
        let s = generate(&SynthConfig::transaction_paper(3));
        let mut errs = Vec::new();
        for c in 0..71 {
            for t in 0..16 {
                let o = s.panel.get(c, t);
                errs.push(((o.revenue - o.consensus) / o.revenue).abs());
            }
        }
        let m = mean(&errs);
        assert!(m > 0.01 && m < 0.12, "mean consensus error {m}");
    }

    #[test]
    fn unexpected_revenue_correlates_with_alt_innovation() {
        // The core premise: UR relates to the part of the alt ratio not
        // explained by the revenue the analysts already predicted.
        let s = generate(&SynthConfig::transaction_paper(4));
        let collect = |poor: bool, inverted: bool| {
            let mut ur_norm = Vec::new();
            let mut alt_ratio = Vec::new();
            for c in 0..71 {
                if s.latents[c].poor_coverage != poor || s.latents[c].inverted != inverted {
                    continue;
                }
                for t in 4..16 {
                    let o = s.panel.get(c, t);
                    let prev = s.panel.get(c, t - 4);
                    ur_norm.push((o.revenue - o.consensus) / prev.revenue);
                    // Alt YoY ratio minus consensus YoY ratio: a crude
                    // proxy for the demand surprise the channel sees.
                    alt_ratio.push(o.alt[0] / prev.alt[0] - o.consensus / prev.revenue);
                }
            }
            pearson(&ur_norm, &alt_ratio)
        };
        let r_good = collect(false, false);
        let r_poor = collect(true, false);
        let r_inv = collect(false, true);
        assert!(r_good > 0.2, "good-coverage alt data should carry UR signal, got r={r_good}");
        assert!(
            r_good > r_poor,
            "good-coverage correlation {r_good} should exceed poor-coverage {r_poor}"
        );
        assert!(r_inv < 0.05, "inverted companies should anticorrelate, got {r_inv}");
    }

    #[test]
    fn same_sector_revenues_more_correlated() {
        let s = generate(&SynthConfig::transaction_paper(5));
        let p = &s.panel;
        let series = p.all_revenue_series(0, 16);
        // Average pairwise correlation within sector vs across sector.
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in 0..p.num_companies() {
            for j in (i + 1)..p.num_companies() {
                let r = pearson(&series[i], &series[j]);
                if p.companies[i].sector == p.companies[j].sector {
                    within.push(r);
                } else {
                    across.push(r);
                }
            }
        }
        assert!(
            mean(&within) > mean(&across),
            "within-sector correlation {} should exceed across {}",
            mean(&within),
            mean(&across)
        );
    }

    #[test]
    fn kappa_clusters_by_sector() {
        let s = generate(&SynthConfig::transaction_paper(6));
        // Variance of κ within sectors should be below total variance.
        let mut by_sector: std::collections::HashMap<usize, Vec<f64>> = Default::default();
        for (c, lat) in s.panel.companies.iter().zip(&s.latents) {
            by_sector.entry(c.sector.index()).or_default().push(lat.kappa);
        }
        let all: Vec<f64> = s.latents.iter().map(|l| l.kappa).collect();
        let total_var = ams_stats::variance(&all);
        let within_var: f64 = {
            let mut acc = 0.0;
            let mut n = 0.0;
            for xs in by_sector.values() {
                if xs.len() >= 2 {
                    acc += ams_stats::variance(xs) * (xs.len() - 1) as f64;
                    n += (xs.len() - 1) as f64;
                }
            }
            acc / n
        };
        assert!(within_var < total_var, "within {within_var} vs total {total_var}");
    }

    #[test]
    fn stream_is_block_size_independent() {
        let cfg = SynthConfig::tiny(11);
        let drain = |block: usize| {
            let mut s = SynthStream::new(&cfg);
            let mut companies = Vec::new();
            let mut obs = Vec::new();
            while let Some((c, o)) = s.next_block(block) {
                companies.extend(c);
                obs.extend(o);
            }
            (companies, obs)
        };
        let (c1, o1) = drain(1);
        let (c7, o7) = drain(7);
        let (call, oall) = drain(usize::MAX);
        assert_eq!(c1.len(), cfg.n_companies);
        assert_eq!(o1.len(), cfg.n_companies * cfg.n_quarters);
        for (a, b) in c1.iter().zip(&c7).chain(c1.iter().zip(&call)) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.sector, b.sector);
            assert_eq!(a.market_cap.to_bits(), b.market_cap.to_bits());
        }
        for (a, b) in o1.iter().zip(&o7).chain(o1.iter().zip(&oall)) {
            assert_eq!(a.revenue.to_bits(), b.revenue.to_bits());
            assert_eq!(a.consensus.to_bits(), b.consensus.to_bits());
        }
    }

    #[test]
    fn stream_prefix_is_universe_size_independent() {
        // Growing the universe must not disturb already-emitted
        // companies: company k is a pure function of (seed, k).
        let small = SynthConfig { n_companies: 5, ..SynthConfig::tiny(3) };
        let large = SynthConfig { n_companies: 40, ..SynthConfig::tiny(3) };
        let (cs, os) = SynthStream::new(&small).next_block(usize::MAX).expect("block");
        let (cl, ol) = SynthStream::new(&large).next_block(usize::MAX).expect("block");
        for (a, b) in cs.iter().zip(&cl) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.market_cap.to_bits(), b.market_cap.to_bits());
        }
        for (a, b) in os.iter().zip(&ol) {
            assert_eq!(a.revenue.to_bits(), b.revenue.to_bits());
        }
    }

    #[test]
    fn stream_resets_and_respects_seed() {
        let mut s = SynthStream::new(&SynthConfig::tiny(5));
        let (a, _) = s.next_block(3).expect("block");
        s.reset();
        let (b, _) = s.next_block(3).expect("block");
        assert_eq!(a[0].name, b[0].name);
        assert_eq!(a[2].market_cap.to_bits(), b[2].market_cap.to_bits());
        let (c, _) = SynthStream::new(&SynthConfig::tiny(6)).next_block(3).expect("block");
        assert_ne!(a[0].market_cap.to_bits(), c[0].market_cap.to_bits());
    }

    #[test]
    fn stream_has_paper_like_structure() {
        // The stream need not reproduce `generate`'s bits, but it must
        // reproduce its *structure*: positive finite revenues, ordered
        // analyst bands, and the alt-channel UR signal.
        let cfg = SynthConfig::transaction_paper(9);
        let mut s = SynthStream::new(&cfg);
        assert_eq!(s.num_companies(), 71);
        assert_eq!(s.quarters().len(), 16);
        assert_eq!(s.alt_names(), cfg.channel.names().as_slice());
        let (companies, obs) = s.next_block(usize::MAX).expect("block");
        assert!(s.next_block(1).is_none());
        let nq = cfg.n_quarters;
        for o in &obs {
            assert!(o.revenue > 0.0 && o.revenue.is_finite());
            assert!(o.low_est <= o.consensus && o.consensus <= o.high_est);
        }
        let mut ur = Vec::new();
        let mut alt = Vec::new();
        for (c, _) in companies.iter().enumerate() {
            for t in 4..nq {
                let o = &obs[c * nq + t];
                let prev = &obs[c * nq + t - 4];
                ur.push((o.revenue - o.consensus) / prev.revenue);
                alt.push(o.alt[0] / prev.alt[0] - o.consensus / prev.revenue);
            }
        }
        assert!(pearson(&ur, &alt) > 0.1, "streamed alt data should carry UR signal");
    }

    #[test]
    fn map_query_noisier_than_transactions() {
        // Relative quarter-over-quarter volatility of the alt series
        // should be visibly higher for map query.
        let tx = generate(&SynthConfig::transaction_paper(7));
        let mq = generate(&SynthConfig::map_query_paper(7));
        let vol = |s: &SynthPanel, ch: usize| {
            let mut diffs = Vec::new();
            for c in 0..s.panel.num_companies() {
                for t in 1..s.panel.num_quarters() {
                    let a = s.panel.get(c, t).alt[ch];
                    let b = s.panel.get(c, t - 1).alt[ch];
                    // Remove the revenue-driven part by comparing to the
                    // company's revenue move.
                    let ra = s.panel.get(c, t).revenue;
                    let rb = s.panel.get(c, t - 1).revenue;
                    diffs.push(((a / b).ln() - (ra / rb).ln()).abs());
                }
            }
            mean(&diffs)
        };
        assert!(vol(&mq, 0) > vol(&tx, 0), "store channel should be noisier");
        assert!(vol(&mq, 1) > vol(&mq, 0), "parking noisier than store");
    }
}
