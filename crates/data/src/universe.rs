//! The simulated company universe.
//!
//! The paper's two datasets cover consumer-facing listed companies (the
//! kind with credit-card transactions, offline stores and parking
//! lots). We model a universe of such companies with a sector label, a
//! market capitalization (the backtest of §IV-F allocates capital 1:2:3
//! across caps below 1 B, 1–10 B and above 10 B), and a fiscal-month
//! offset so the "month" one-hot feature of §II-D is not degenerate.

use rand::Rng;

use crate::quarters::Quarter;

/// Business sector of a company. Sectors shape the seasonal profile and
/// the latent demand factor every member loads on, which is what makes
/// revenue-correlated companies genuinely informative about each other
/// — the premise of the company correlation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Sector {
    Retail,
    Restaurants,
    Apparel,
    Electronics,
    Travel,
    Grocery,
    HomeGoods,
    Entertainment,
}

impl Sector {
    /// All sectors, in one-hot order.
    pub const ALL: [Sector; 8] = [
        Sector::Retail,
        Sector::Restaurants,
        Sector::Apparel,
        Sector::Electronics,
        Sector::Travel,
        Sector::Grocery,
        Sector::HomeGoods,
        Sector::Entertainment,
    ];

    /// Position in [`Sector::ALL`].
    pub fn index(self) -> usize {
        Sector::ALL.iter().position(|&s| s == self).expect("sector in ALL")
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Sector::Retail => "retail",
            Sector::Restaurants => "restaurants",
            Sector::Apparel => "apparel",
            Sector::Electronics => "electronics",
            Sector::Travel => "travel",
            Sector::Grocery => "grocery",
            Sector::HomeGoods => "home-goods",
            Sector::Entertainment => "entertainment",
        }
    }

    /// Seasonal revenue multiplier for calendar quarter `q` (1..=4).
    /// Shapes are stylized: retail/electronics peak in Q4, travel in Q3,
    /// grocery is flat, etc.
    pub fn seasonal_shape(self, q: u8) -> f64 {
        debug_assert!((1..=4).contains(&q));
        let shape: [f64; 4] = match self {
            Sector::Retail => [0.92, 0.96, 0.98, 1.14],
            Sector::Restaurants => [0.95, 1.03, 1.05, 0.97],
            Sector::Apparel => [0.90, 1.00, 0.98, 1.12],
            Sector::Electronics => [0.93, 0.94, 1.00, 1.13],
            Sector::Travel => [0.88, 1.02, 1.18, 0.92],
            Sector::Grocery => [0.99, 1.00, 1.00, 1.01],
            Sector::HomeGoods => [0.95, 1.05, 1.02, 0.98],
            Sector::Entertainment => [0.96, 1.00, 1.08, 0.96],
        };
        shape[(q - 1) as usize]
    }
}

/// Market-capitalization tier used by the backtest's 1:2:3 capital
/// allocation (boundaries 1 B and 10 B, §IV-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CapTier {
    /// Below 1 billion.
    Small,
    /// 1–10 billion.
    Mid,
    /// Above 10 billion.
    Large,
}

impl CapTier {
    /// Tier from a market cap expressed in billions.
    pub fn from_cap_billions(cap: f64) -> Self {
        if cap < 1.0 {
            CapTier::Small
        } else if cap <= 10.0 {
            CapTier::Mid
        } else {
            CapTier::Large
        }
    }

    /// Relative capital weight (1:2:3, §IV-F).
    pub fn capital_weight(self) -> f64 {
        match self {
            CapTier::Small => 1.0,
            CapTier::Mid => 2.0,
            CapTier::Large => 3.0,
        }
    }
}

/// A listed company in the simulated universe.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Company {
    /// Dense id, the node id in the correlation graph.
    pub id: usize,
    /// Ticker-like display name.
    pub name: String,
    /// Business sector.
    pub sector: Sector,
    /// Market capitalization in billions.
    pub market_cap: f64,
    /// Fiscal quarter end offset in months (0, 1 or 2), so that e.g. an
    /// offset-1 company's Q1 ends in April.
    pub fiscal_offset: u8,
}

impl Company {
    /// Market-cap tier for capital allocation.
    pub fn cap_tier(&self) -> CapTier {
        CapTier::from_cap_billions(self.market_cap)
    }

    /// Calendar month (1..=12) in which this company's fiscal quarter
    /// `q` ends.
    pub fn fiscal_end_month(&self, q: Quarter) -> u8 {
        let m = q.end_month() + self.fiscal_offset;
        if m > 12 {
            m - 12
        } else {
            m
        }
    }
}

/// Draw one company with the universe's sector/cap/fiscal distributions.
/// [`random_universe`] is this applied over a shared RNG; the streaming
/// synthetic generator applies it with one RNG per company id so a
/// company's identity is independent of how the stream is batched.
pub fn random_company(id: usize, rng: &mut impl Rng) -> Company {
    let sector = Sector::ALL[rng.gen_range(0..Sector::ALL.len())];
    // Log-normal-ish caps: most small/mid, a few mega-caps.
    let cap = (0.2 + rng.gen::<f64>() * 2.0).powf(3.0);
    let initial = sector.name().chars().next().unwrap_or('X').to_ascii_uppercase();
    Company {
        id,
        name: format!("{initial}{id:03}"),
        sector,
        market_cap: cap,
        fiscal_offset: rng.gen_range(0..3),
    }
}

/// Draw a universe of `n` companies with sector clustering and a heavy-
/// tailed cap distribution resembling a consumer-stock cross-section.
pub fn random_universe(n: usize, rng: &mut impl Rng) -> Vec<Company> {
    (0..n).map(|id| random_company(id, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sector_index_roundtrip() {
        for (i, &s) in Sector::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn seasonal_shapes_average_near_one() {
        for &s in &Sector::ALL {
            let avg: f64 = (1..=4).map(|q| s.seasonal_shape(q)).sum::<f64>() / 4.0;
            assert!((avg - 1.0).abs() < 0.02, "{:?} seasonal average {avg}", s);
        }
    }

    #[test]
    fn cap_tier_boundaries() {
        assert_eq!(CapTier::from_cap_billions(0.5), CapTier::Small);
        assert_eq!(CapTier::from_cap_billions(1.0), CapTier::Mid);
        assert_eq!(CapTier::from_cap_billions(10.0), CapTier::Mid);
        assert_eq!(CapTier::from_cap_billions(10.1), CapTier::Large);
    }

    #[test]
    fn capital_weights_are_1_2_3() {
        assert_eq!(CapTier::Small.capital_weight(), 1.0);
        assert_eq!(CapTier::Mid.capital_weight(), 2.0);
        assert_eq!(CapTier::Large.capital_weight(), 3.0);
    }

    #[test]
    fn fiscal_end_month_wraps() {
        let mut c = Company {
            id: 0,
            name: "T000".into(),
            sector: Sector::Retail,
            market_cap: 2.0,
            fiscal_offset: 2,
        };
        assert_eq!(c.fiscal_end_month(Quarter::new(2016, 4)), 2); // 12 + 2 → Feb
        c.fiscal_offset = 0;
        assert_eq!(c.fiscal_end_month(Quarter::new(2016, 4)), 12);
    }

    #[test]
    fn random_universe_is_deterministic_and_diverse() {
        let a = random_universe(71, &mut StdRng::seed_from_u64(9));
        let b = random_universe(71, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.len(), 71);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.market_cap, y.market_cap);
        }
        // More than one sector and more than one cap tier present.
        let sectors: std::collections::HashSet<_> = a.iter().map(|c| c.sector).collect();
        assert!(sectors.len() >= 4);
        let tiers: std::collections::HashSet<_> = a.iter().map(|c| c.cap_tier()).collect();
        assert!(tiers.len() >= 2);
    }
}
