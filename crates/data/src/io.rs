//! Panel import/export as CSV.
//!
//! The repository ships a simulator because the paper's datasets are
//! proprietary, but a user with access to *real* consensus and
//! alternative data should not have to touch the simulator: this module
//! round-trips a [`Panel`] through a plain CSV with one row per
//! (company, quarter) observation, so real panels can be dropped in and
//! every downstream component — features, CV, AMS, the backtest — works
//! unchanged.
//!
//! Schema (header required, alternative channels are every column after
//! the fixed prefix):
//!
//! ```csv
//! company,name,sector,market_cap,fiscal_offset,quarter,revenue,consensus,low_est,high_est,<alt...>
//! 0,R000,retail,2.5,0,2014q3,1021.5,1003.2,970.0,1050.8,553.1
//! ```
//!
//! Text fields (company names, alternative-channel headers) follow
//! RFC-4180 quoting: a field containing commas, double quotes, or
//! leading/trailing whitespace is wrapped in `"` with embedded quotes
//! doubled. Embedded newlines are not supported. Numeric fields use
//! Rust's shortest round-trip `Display`, so finite values (including
//! `-0.0` and subnormals) survive export→import bit-exactly; `NaN`
//! and `±inf` are written as `NaN`/`inf`/`-inf` and parse back
//! (any NaN collapses to the canonical quiet NaN).

use std::fmt;
use std::path::Path;
use std::str::FromStr;

use crate::panel::{Observation, Panel};
use crate::quarters::Quarter;
use crate::universe::{Company, Sector};

/// Error importing a panel CSV.
#[derive(Debug)]
pub enum PanelIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or value-level problem, with a line number (1-based,
    /// header = 1) and description.
    Parse { line: usize, message: String },
}

impl fmt::Display for PanelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PanelIoError::Io(e) => write!(f, "panel csv io error: {e}"),
            PanelIoError::Parse { line, message } => {
                write!(f, "panel csv parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for PanelIoError {}

impl From<std::io::Error> for PanelIoError {
    fn from(e: std::io::Error) -> Self {
        PanelIoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> PanelIoError {
    PanelIoError::Parse { line, message: message.into() }
}

const FIXED_COLS: [&str; 10] = [
    "company",
    "name",
    "sector",
    "market_cap",
    "fiscal_offset",
    "quarter",
    "revenue",
    "consensus",
    "low_est",
    "high_est",
];

fn sector_from_name(name: &str) -> Option<Sector> {
    Sector::ALL.iter().copied().find(|s| s.name() == name)
}

/// Quote a text field per RFC 4180 when it would otherwise be
/// ambiguous: contains a comma or quote, or carries leading/trailing
/// whitespace (which the reader strips from unquoted fields).
fn csv_field(s: &str) -> String {
    assert!(!s.contains(['\n', '\r']), "csv fields may not contain newlines: {s:?}");
    if s.contains([',', '"']) || s != s.trim() {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split one CSV record into fields, honouring `"`-quoted fields with
/// doubled-quote escapes. Unquoted fields are whitespace-trimmed;
/// quoted fields are returned verbatim.
fn split_record(raw: &str, line: usize) -> Result<Vec<String>, PanelIoError> {
    let mut fields = Vec::new();
    let mut rest = raw;
    loop {
        let trimmed = rest.trim_start_matches([' ', '\t']);
        if let Some(body) = trimmed.strip_prefix('"') {
            let mut field = String::new();
            let mut end = None;
            let mut chars = body.char_indices();
            while let Some((i, c)) = chars.next() {
                if c == '"' {
                    if body[i + 1..].starts_with('"') {
                        chars.next();
                        field.push('"');
                    } else {
                        end = Some(i + 1);
                        break;
                    }
                } else {
                    field.push(c);
                }
            }
            let end = end.ok_or_else(|| parse_err(line, "unterminated quoted field"))?;
            fields.push(field);
            let after = body[end..].trim_start_matches([' ', '\t']);
            match after.strip_prefix(',') {
                Some(tail) => rest = tail,
                None if after.is_empty() => return Ok(fields),
                None => return Err(parse_err(line, "unexpected text after closing quote")),
            }
        } else {
            match trimmed.find(',') {
                Some(i) => {
                    fields.push(trimmed[..i].trim_end().to_string());
                    rest = &trimmed[i + 1..];
                }
                None => {
                    fields.push(trimmed.trim_end().to_string());
                    return Ok(fields);
                }
            }
        }
    }
}

/// Serialize a panel to CSV text.
pub fn to_csv(panel: &Panel) -> String {
    let mut out = FIXED_COLS.join(",");
    for a in &panel.alt_names {
        out.push(',');
        out.push_str(&csv_field(a));
    }
    out.push('\n');
    for c in 0..panel.num_companies() {
        let company = &panel.companies[c];
        for (t, q) in panel.quarters.iter().enumerate() {
            let o = panel.get(c, t);
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}",
                company.id,
                csv_field(&company.name),
                company.sector.name(),
                company.market_cap,
                company.fiscal_offset,
                q,
                o.revenue,
                o.consensus,
                o.low_est,
                o.high_est,
            ));
            for a in &o.alt {
                out.push_str(&format!(",{a}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Write a panel to a CSV file.
pub fn write_csv(panel: &Panel, path: &Path) -> Result<(), PanelIoError> {
    std::fs::write(path, to_csv(panel))?;
    Ok(())
}

/// Stream a [`PanelSource`] to a CSV file without materializing the
/// panel: each batch of company histories is formatted and flushed
/// through a `BufWriter`, so memory stays bounded by the batch size
/// even for universes of hundreds of thousands of companies. The row
/// format is identical to [`to_csv`], so `read_csv` round-trips the
/// output.
pub fn write_csv_source(
    source: &mut dyn crate::source::PanelSource,
    path: &Path,
) -> Result<(), PanelIoError> {
    use std::io::Write;

    let quarters = source.quarters().to_vec();
    let alt_names = source.alt_names().to_vec();
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);

    let mut header = FIXED_COLS.join(",");
    for a in &alt_names {
        header.push(',');
        header.push_str(&csv_field(a));
    }
    writeln!(w, "{header}")?;

    loop {
        let batch = source
            .next_batch(256)
            .map_err(|e| parse_err(0, format!("panel source failed: {e}")))?;
        if batch.is_empty() {
            break;
        }
        for h in &batch {
            let company = &h.company;
            for (q, o) in quarters.iter().zip(&h.obs) {
                write!(
                    w,
                    "{},{},{},{},{},{},{},{},{},{}",
                    company.id,
                    csv_field(&company.name),
                    company.sector.name(),
                    company.market_cap,
                    company.fiscal_offset,
                    q,
                    o.revenue,
                    o.consensus,
                    o.low_est,
                    o.high_est,
                )?;
                for a in &o.alt {
                    write!(w, ",{a}")?;
                }
                writeln!(w)?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// One parsed observation row, before panel assembly.
struct Row {
    company: usize,
    quarter: Quarter,
    obs: Observation,
    meta: Company,
}

/// Validate the header record and return the alternative-channel names
/// (every column after the fixed prefix).
fn parse_header_record(header: &str) -> Result<Vec<String>, PanelIoError> {
    let cols: Vec<String> = split_record(header, 1)?;
    if cols.len() < FIXED_COLS.len() {
        return Err(parse_err(1, format!("expected at least {} columns", FIXED_COLS.len())));
    }
    for (i, expected) in FIXED_COLS.iter().enumerate() {
        if cols[i] != *expected {
            return Err(parse_err(
                1,
                format!("column {i} must be {expected:?}, got {:?}", cols[i]),
            ));
        }
    }
    Ok(cols[FIXED_COLS.len()..].to_vec())
}

/// Parse one data record (`None` for a blank line). The row parser is
/// shared by the in-memory [`from_csv`] and the streaming [`read_csv`].
fn parse_row(raw: &str, line_no: usize, alt_names: &[String]) -> Result<Option<Row>, PanelIoError> {
    if raw.trim().is_empty() {
        return Ok(None);
    }
    let n_alt = alt_names.len();
    let f: Vec<String> = split_record(raw, line_no)?;
    if f.len() != FIXED_COLS.len() + n_alt {
        return Err(parse_err(
            line_no,
            format!("expected {} fields, got {}", FIXED_COLS.len() + n_alt, f.len()),
        ));
    }
    let num = |i: usize, what: &str| -> Result<f64, PanelIoError> {
        f[i].parse::<f64>().map_err(|_| parse_err(line_no, format!("bad {what}: {:?}", f[i])))
    };
    let company: usize =
        f[0].parse().map_err(|_| parse_err(line_no, format!("bad company id {:?}", f[0])))?;
    let sector = sector_from_name(&f[2])
        .ok_or_else(|| parse_err(line_no, format!("unknown sector {:?}", f[2])))?;
    let quarter = Quarter::from_str(&f[5]).map_err(|e| parse_err(line_no, e.to_string()))?;
    let mut alt = Vec::with_capacity(n_alt);
    for (k, name) in alt_names.iter().enumerate() {
        alt.push(num(FIXED_COLS.len() + k, name)?);
    }
    Ok(Some(Row {
        company,
        quarter,
        obs: Observation {
            revenue: num(6, "revenue")?,
            consensus: num(7, "consensus")?,
            low_est: num(8, "low_est")?,
            high_est: num(9, "high_est")?,
            alt,
        },
        meta: Company {
            id: company,
            name: f[1].to_string(),
            sector,
            market_cap: num(3, "market_cap")?,
            fiscal_offset: f[4]
                .parse()
                .map_err(|_| parse_err(line_no, format!("bad fiscal_offset {:?}", f[4])))?,
        },
    }))
}

/// Parse a panel from a stream of lines. The full file text is never
/// held in memory — only the parsed rows (which any assembly needs) —
/// so ingestion memory is bounded by the panel, not by the CSV's text
/// encoding of it.
fn from_lines<L, I>(mut lines: I) -> Result<Panel, PanelIoError>
where
    L: AsRef<str>,
    I: Iterator<Item = Result<L, std::io::Error>>,
{
    let header = lines.next().ok_or_else(|| parse_err(1, "empty file"))??;
    let alt_names = parse_header_record(header.as_ref())?;

    let mut rows: Vec<Row> = Vec::new();
    for (idx, raw) in lines.enumerate() {
        let line_no = idx + 2;
        if let Some(row) = parse_row(raw?.as_ref(), line_no, &alt_names)? {
            rows.push(row);
        }
    }
    if rows.is_empty() {
        return Err(parse_err(2, "no observation rows"));
    }
    assemble(alt_names, rows)
}

/// Assemble parsed rows (any order) into a dense panel. Every company
/// must cover the same consecutive quarter range.
fn assemble(alt_names: Vec<String>, rows: Vec<Row>) -> Result<Panel, PanelIoError> {
    // Determine shape.
    let n_companies = rows.iter().map(|r| r.company).max().expect("nonempty") + 1;
    let first = rows.iter().map(|r| r.quarter).min().expect("nonempty");
    let last = rows.iter().map(|r| r.quarter).max().expect("nonempty");
    let quarters = Quarter::range(first, last);
    let nq = quarters.len();

    let mut companies: Vec<Option<Company>> = vec![None; n_companies];
    let mut obs: Vec<Option<Observation>> = vec![None; n_companies * nq];
    for r in rows {
        if r.company >= n_companies {
            unreachable!();
        }
        let t = r.quarter.diff(first) as usize;
        let slot = r.company * nq + t;
        if obs[slot].is_some() {
            return Err(parse_err(
                0,
                format!("duplicate row for company {} at {}", r.company, r.quarter),
            ));
        }
        obs[slot] = Some(r.obs);
        match &companies[r.company] {
            None => companies[r.company] = Some(r.meta),
            Some(existing) => {
                if existing.name != r.meta.name || existing.sector != r.meta.sector {
                    return Err(parse_err(
                        0,
                        format!("inconsistent metadata for company {}", r.company),
                    ));
                }
            }
        }
    }
    let companies: Vec<Company> = companies
        .into_iter()
        .enumerate()
        .map(|(i, c)| c.ok_or_else(|| parse_err(0, format!("company {i} has no rows"))))
        .collect::<Result<_, _>>()?;
    let obs: Vec<Observation> = obs
        .into_iter()
        .enumerate()
        .map(|(slot, o)| {
            o.ok_or_else(|| {
                let (c, t) = (slot / nq, slot % nq);
                parse_err(0, format!("missing observation for company {c} at {}", quarters[t]))
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(Panel::new(companies, quarters, alt_names, obs))
}

/// Parse a panel from CSV text already in memory. Rows may appear in
/// any order but every company must cover the same consecutive quarter
/// range.
pub fn from_csv(text: &str) -> Result<Panel, PanelIoError> {
    from_lines(text.lines().map(Ok::<&str, std::io::Error>))
}

/// Read a panel from a CSV file, streaming line-by-line over a
/// [`BufRead`](std::io::BufRead) — the file text is never materialized
/// as one `String`, so a 100k-company CSV parses in memory bounded by
/// the panel itself.
pub fn read_csv(path: &Path) -> Result<Panel, PanelIoError> {
    use std::io::BufRead;
    let file = std::fs::File::open(path)?;
    from_lines(std::io::BufReader::new(file).lines())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use proptest::prelude::*;

    /// Characters names are drawn from in the property test — half of
    /// them are CSV hazards (comma, quote, spaces, unicode).
    const NAME_CHARS: [char; 12] = [',', '"', ' ', '\t', 'a', 'Z', '7', '-', '_', '.', 'é', '京'];

    /// Map two uniforms in [0,1) to an f64 biased toward edge cases:
    /// NaN, ±inf, ±0, huge/tiny magnitudes, and ordinary values.
    fn edge_value(u: f64, v: f64) -> f64 {
        match (u * 10.0) as u32 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => 0.0,
            5 => (v - 0.5) * 1e-300,
            6 => (v - 0.5) * 1e300,
            _ => (v - 0.5) * 2.0e9,
        }
    }

    /// Bit-exact equality, with any-NaN == any-NaN (the writer
    /// collapses NaN payloads to the canonical quiet NaN).
    fn same_bits(a: f64, b: f64) -> bool {
        a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
    }

    fn name_from(sel: &[usize]) -> String {
        sel.iter().map(|&i| NAME_CHARS[i % NAME_CHARS.len()]).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn csv_roundtrip_is_exact(
            name_sel in prop::collection::vec(
                prop::collection::vec(0usize..NAME_CHARS.len(), 0..10), 1..5),
            alt_sel in prop::collection::vec(
                prop::collection::vec(0usize..NAME_CHARS.len(), 1..8), 0..3),
            nq in 1usize..5,
            pool in prop::collection::vec(0.0f64..1.0, 400),
        ) {
            let n_companies = name_sel.len();
            let n_alt = alt_sel.len();
            let mut cursor = 0usize;
            let mut draw = || {
                let (u, v) = (pool[cursor % pool.len()], pool[(cursor + 1) % pool.len()]);
                cursor += 2;
                edge_value(u, v)
            };

            let companies: Vec<Company> = name_sel
                .iter()
                .enumerate()
                .map(|(i, sel)| Company {
                    id: i,
                    name: name_from(sel),
                    sector: Sector::ALL[i % Sector::ALL.len()],
                    market_cap: draw(),
                    fiscal_offset: (i % 3) as u8,
                })
                .collect();
            let alt_names: Vec<String> = alt_sel.iter().map(|sel| name_from(sel)).collect();
            let mut quarters = vec![Quarter::new(2014, 1)];
            while quarters.len() < nq {
                quarters.push(quarters.last().unwrap().next());
            }
            let obs: Vec<Observation> = (0..n_companies * nq)
                .map(|_| Observation {
                    revenue: draw(),
                    consensus: draw(),
                    low_est: draw(),
                    high_est: draw(),
                    alt: (0..n_alt).map(|_| draw()).collect(),
                })
                .collect();
            let panel = Panel::new(companies, quarters, alt_names, obs);

            let back = match from_csv(&to_csv(&panel)) {
                Ok(p) => p,
                Err(e) => return Err(format!("reimport failed: {e}")),
            };
            prop_assert_eq!(back.num_companies(), panel.num_companies());
            prop_assert_eq!(back.num_quarters(), panel.num_quarters());
            prop_assert_eq!(&back.alt_names, &panel.alt_names);
            prop_assert_eq!(&back.quarters, &panel.quarters);
            for c in 0..panel.num_companies() {
                let (a, b) = (&panel.companies[c], &back.companies[c]);
                prop_assert_eq!(&a.name, &b.name);
                prop_assert_eq!(a.sector, b.sector);
                prop_assert_eq!(a.fiscal_offset, b.fiscal_offset);
                prop_assert!(same_bits(a.market_cap, b.market_cap),
                    "market_cap {} vs {}", a.market_cap, b.market_cap);
                for t in 0..panel.num_quarters() {
                    let (x, y) = (panel.get(c, t), back.get(c, t));
                    prop_assert!(same_bits(x.revenue, y.revenue),
                        "revenue {} vs {}", x.revenue, y.revenue);
                    prop_assert!(same_bits(x.consensus, y.consensus),
                        "consensus {} vs {}", x.consensus, y.consensus);
                    prop_assert!(same_bits(x.low_est, y.low_est),
                        "low_est {} vs {}", x.low_est, y.low_est);
                    prop_assert!(same_bits(x.high_est, y.high_est),
                        "high_est {} vs {}", x.high_est, y.high_est);
                    prop_assert_eq!(x.alt.len(), y.alt.len());
                    for k in 0..x.alt.len() {
                        prop_assert!(same_bits(x.alt[k], y.alt[k]),
                            "alt[{}] {} vs {}", k, x.alt[k], y.alt[k]);
                    }
                }
            }
        }
    }

    #[test]
    fn quoted_names_round_trip() {
        let mut p = generate(&SynthConfig::tiny(810)).panel;
        p.companies[0].name = "Acme, \"Intl\" Retail".to_string();
        p.companies[1].name = "  padded  ".to_string();
        p.alt_names = vec!["txn, gross".to_string()];
        let back = from_csv(&to_csv(&p)).expect("quoted roundtrip");
        assert_eq!(back.companies[0].name, "Acme, \"Intl\" Retail");
        assert_eq!(back.companies[1].name, "  padded  ");
        assert_eq!(back.alt_names, vec!["txn, gross".to_string()]);
    }

    #[test]
    fn nan_and_inf_round_trip() {
        let mut p =
            generate(&SynthConfig { n_companies: 2, n_quarters: 6, ..SynthConfig::tiny(811) })
                .panel;
        p.get_mut(0, 0).revenue = f64::NAN;
        p.get_mut(0, 1).consensus = f64::INFINITY;
        p.get_mut(1, 2).low_est = f64::NEG_INFINITY;
        p.get_mut(1, 3).high_est = -0.0;
        let back = from_csv(&to_csv(&p)).expect("nan roundtrip");
        assert!(back.get(0, 0).revenue.is_nan());
        assert_eq!(back.get(0, 1).consensus, f64::INFINITY);
        assert_eq!(back.get(1, 2).low_est, f64::NEG_INFINITY);
        assert_eq!(back.get(1, 3).high_est.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn rejects_unterminated_quote() {
        let p = generate(&SynthConfig { n_companies: 2, n_quarters: 6, ..SynthConfig::tiny(812) })
            .panel;
        let csv = to_csv(&p).replacen(&p.companies[0].name, "\"broken", 1);
        let err = from_csv(&csv).unwrap_err();
        assert!(err.to_string().contains("unterminated"), "{err}");
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = generate(&SynthConfig::tiny(800)).panel;
        let csv = to_csv(&p);
        let back = from_csv(&csv).expect("roundtrip parse");
        assert_eq!(back.num_companies(), p.num_companies());
        assert_eq!(back.num_quarters(), p.num_quarters());
        assert_eq!(back.alt_names, p.alt_names);
        for c in 0..p.num_companies() {
            assert_eq!(back.companies[c].name, p.companies[c].name);
            assert_eq!(back.companies[c].sector, p.companies[c].sector);
            for t in 0..p.num_quarters() {
                let (a, b) = (p.get(c, t), back.get(c, t));
                assert!((a.revenue - b.revenue).abs() < 1e-9);
                assert!((a.consensus - b.consensus).abs() < 1e-9);
                assert_eq!(a.alt.len(), b.alt.len());
            }
        }
    }

    #[test]
    fn roundtrip_two_channel_panel() {
        let p =
            generate(&SynthConfig { n_companies: 5, ..SynthConfig::map_query_paper(801) }).panel;
        let back = from_csv(&to_csv(&p)).unwrap();
        assert_eq!(back.alt_names.len(), 2);
        assert_eq!(back.get(3, 5).alt.len(), 2);
    }

    #[test]
    fn rejects_empty_and_garbage() {
        assert!(from_csv("").is_err());
        assert!(from_csv("not,a,panel\n1,2,3").is_err());
    }

    #[test]
    fn rejects_bad_header_order() {
        let p = generate(&SynthConfig::tiny(802)).panel;
        let csv = to_csv(&p).replacen("company,name", "name,company", 1);
        let err = from_csv(&csv).unwrap_err();
        assert!(err.to_string().contains("column 0"));
    }

    #[test]
    fn rejects_missing_observation() {
        let p = generate(&SynthConfig { n_companies: 2, n_quarters: 6, ..SynthConfig::tiny(803) })
            .panel;
        let csv = to_csv(&p);
        // Drop the last data line.
        let trimmed: Vec<&str> = csv.trim_end().lines().collect();
        let cut = trimmed[..trimmed.len() - 1].join("\n");
        let err = from_csv(&cut).unwrap_err();
        assert!(err.to_string().contains("missing observation"), "{err}");
    }

    #[test]
    fn rejects_unknown_sector() {
        let p = generate(&SynthConfig { n_companies: 2, n_quarters: 6, ..SynthConfig::tiny(804) })
            .panel;
        let csv = to_csv(&p)
            .replace("retail", "crypto")
            .replace("travel", "crypto")
            .replace("apparel", "crypto")
            .replace("electronics", "crypto")
            .replace("grocery", "crypto")
            .replace("home-goods", "crypto")
            .replace("restaurants", "crypto")
            .replace("entertainment", "crypto");
        assert!(from_csv(&csv).is_err());
    }

    #[test]
    fn rejects_bad_quarter_literal() {
        let p = generate(&SynthConfig { n_companies: 2, n_quarters: 6, ..SynthConfig::tiny(805) })
            .panel;
        let csv = to_csv(&p).replace("2015q1", "2015x1");
        let err = from_csv(&csv).unwrap_err();
        assert!(err.to_string().contains("quarter"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let p = generate(&SynthConfig { n_companies: 3, n_quarters: 6, ..SynthConfig::tiny(806) })
            .panel;
        let dir = std::env::temp_dir().join("ams_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panel.csv");
        write_csv(&p, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.num_companies(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
