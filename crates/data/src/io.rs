//! Panel import/export as CSV.
//!
//! The repository ships a simulator because the paper's datasets are
//! proprietary, but a user with access to *real* consensus and
//! alternative data should not have to touch the simulator: this module
//! round-trips a [`Panel`] through a plain CSV with one row per
//! (company, quarter) observation, so real panels can be dropped in and
//! every downstream component — features, CV, AMS, the backtest — works
//! unchanged.
//!
//! Schema (header required, alternative channels are every column after
//! the fixed prefix):
//!
//! ```csv
//! company,name,sector,market_cap,fiscal_offset,quarter,revenue,consensus,low_est,high_est,<alt...>
//! 0,R000,retail,2.5,0,2014q3,1021.5,1003.2,970.0,1050.8,553.1
//! ```

use std::fmt;
use std::path::Path;
use std::str::FromStr;

use crate::panel::{Observation, Panel};
use crate::quarters::Quarter;
use crate::universe::{Company, Sector};

/// Error importing a panel CSV.
#[derive(Debug)]
pub enum PanelIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or value-level problem, with a line number (1-based,
    /// header = 1) and description.
    Parse { line: usize, message: String },
}

impl fmt::Display for PanelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PanelIoError::Io(e) => write!(f, "panel csv io error: {e}"),
            PanelIoError::Parse { line, message } => {
                write!(f, "panel csv parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for PanelIoError {}

impl From<std::io::Error> for PanelIoError {
    fn from(e: std::io::Error) -> Self {
        PanelIoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> PanelIoError {
    PanelIoError::Parse { line, message: message.into() }
}

const FIXED_COLS: [&str; 10] = [
    "company",
    "name",
    "sector",
    "market_cap",
    "fiscal_offset",
    "quarter",
    "revenue",
    "consensus",
    "low_est",
    "high_est",
];

fn sector_from_name(name: &str) -> Option<Sector> {
    Sector::ALL.iter().copied().find(|s| s.name() == name)
}

/// Serialize a panel to CSV text.
pub fn to_csv(panel: &Panel) -> String {
    let mut out = FIXED_COLS.join(",");
    for a in &panel.alt_names {
        out.push(',');
        out.push_str(a);
    }
    out.push('\n');
    for c in 0..panel.num_companies() {
        let company = &panel.companies[c];
        for (t, q) in panel.quarters.iter().enumerate() {
            let o = panel.get(c, t);
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}",
                company.id,
                company.name,
                company.sector.name(),
                company.market_cap,
                company.fiscal_offset,
                q,
                o.revenue,
                o.consensus,
                o.low_est,
                o.high_est,
            ));
            for a in &o.alt {
                out.push_str(&format!(",{a}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Write a panel to a CSV file.
pub fn write_csv(panel: &Panel, path: &Path) -> Result<(), PanelIoError> {
    std::fs::write(path, to_csv(panel))?;
    Ok(())
}

/// Parse a panel from CSV text. Rows may appear in any order but every
/// company must cover the same consecutive quarter range.
pub fn from_csv(text: &str) -> Result<Panel, PanelIoError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty file"))?;
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    if cols.len() < FIXED_COLS.len() {
        return Err(parse_err(1, format!("expected at least {} columns", FIXED_COLS.len())));
    }
    for (i, expected) in FIXED_COLS.iter().enumerate() {
        if cols[i] != *expected {
            return Err(parse_err(1, format!("column {i} must be {expected:?}, got {:?}", cols[i])));
        }
    }
    let alt_names: Vec<String> = cols[FIXED_COLS.len()..].iter().map(|s| s.to_string()).collect();
    let n_alt = alt_names.len();

    struct Row {
        company: usize,
        quarter: Quarter,
        obs: Observation,
        meta: Company,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (idx, raw) in lines {
        let line_no = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = raw.split(',').map(str::trim).collect();
        if f.len() != FIXED_COLS.len() + n_alt {
            return Err(parse_err(line_no, format!("expected {} fields, got {}", FIXED_COLS.len() + n_alt, f.len())));
        }
        let num = |i: usize, what: &str| -> Result<f64, PanelIoError> {
            f[i].parse::<f64>().map_err(|_| parse_err(line_no, format!("bad {what}: {:?}", f[i])))
        };
        let company: usize =
            f[0].parse().map_err(|_| parse_err(line_no, format!("bad company id {:?}", f[0])))?;
        let sector = sector_from_name(f[2])
            .ok_or_else(|| parse_err(line_no, format!("unknown sector {:?}", f[2])))?;
        let quarter = Quarter::from_str(f[5])
            .map_err(|e| parse_err(line_no, e.to_string()))?;
        let mut alt = Vec::with_capacity(n_alt);
        for (k, name) in alt_names.iter().enumerate() {
            alt.push(num(FIXED_COLS.len() + k, name)?);
        }
        rows.push(Row {
            company,
            quarter,
            obs: Observation {
                revenue: num(6, "revenue")?,
                consensus: num(7, "consensus")?,
                low_est: num(8, "low_est")?,
                high_est: num(9, "high_est")?,
                alt,
            },
            meta: Company {
                id: company,
                name: f[1].to_string(),
                sector,
                market_cap: num(3, "market_cap")?,
                fiscal_offset: f[4]
                    .parse()
                    .map_err(|_| parse_err(line_no, format!("bad fiscal_offset {:?}", f[4])))?,
            },
        });
    }
    if rows.is_empty() {
        return Err(parse_err(2, "no observation rows"));
    }

    // Determine shape.
    let n_companies = rows.iter().map(|r| r.company).max().expect("nonempty") + 1;
    let first = rows.iter().map(|r| r.quarter).min().expect("nonempty");
    let last = rows.iter().map(|r| r.quarter).max().expect("nonempty");
    let quarters = Quarter::range(first, last);
    let nq = quarters.len();

    let mut companies: Vec<Option<Company>> = vec![None; n_companies];
    let mut obs: Vec<Option<Observation>> = vec![None; n_companies * nq];
    for r in rows {
        if r.company >= n_companies {
            unreachable!();
        }
        let t = r.quarter.diff(first) as usize;
        let slot = r.company * nq + t;
        if obs[slot].is_some() {
            return Err(parse_err(0, format!("duplicate row for company {} at {}", r.company, r.quarter)));
        }
        obs[slot] = Some(r.obs);
        match &companies[r.company] {
            None => companies[r.company] = Some(r.meta),
            Some(existing) => {
                if existing.name != r.meta.name || existing.sector != r.meta.sector {
                    return Err(parse_err(0, format!("inconsistent metadata for company {}", r.company)));
                }
            }
        }
    }
    let companies: Vec<Company> = companies
        .into_iter()
        .enumerate()
        .map(|(i, c)| c.ok_or_else(|| parse_err(0, format!("company {i} has no rows"))))
        .collect::<Result<_, _>>()?;
    let obs: Vec<Observation> = obs
        .into_iter()
        .enumerate()
        .map(|(slot, o)| {
            o.ok_or_else(|| {
                let (c, t) = (slot / nq, slot % nq);
                parse_err(0, format!("missing observation for company {c} at {}", quarters[t]))
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(Panel::new(companies, quarters, alt_names, obs))
}

/// Read a panel from a CSV file.
pub fn read_csv(path: &Path) -> Result<Panel, PanelIoError> {
    from_csv(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn roundtrip_preserves_everything() {
        let p = generate(&SynthConfig::tiny(800)).panel;
        let csv = to_csv(&p);
        let back = from_csv(&csv).expect("roundtrip parse");
        assert_eq!(back.num_companies(), p.num_companies());
        assert_eq!(back.num_quarters(), p.num_quarters());
        assert_eq!(back.alt_names, p.alt_names);
        for c in 0..p.num_companies() {
            assert_eq!(back.companies[c].name, p.companies[c].name);
            assert_eq!(back.companies[c].sector, p.companies[c].sector);
            for t in 0..p.num_quarters() {
                let (a, b) = (p.get(c, t), back.get(c, t));
                assert!((a.revenue - b.revenue).abs() < 1e-9);
                assert!((a.consensus - b.consensus).abs() < 1e-9);
                assert_eq!(a.alt.len(), b.alt.len());
            }
        }
    }

    #[test]
    fn roundtrip_two_channel_panel() {
        let p = generate(&SynthConfig { n_companies: 5, ..SynthConfig::map_query_paper(801) }).panel;
        let back = from_csv(&to_csv(&p)).unwrap();
        assert_eq!(back.alt_names.len(), 2);
        assert_eq!(back.get(3, 5).alt.len(), 2);
    }

    #[test]
    fn rejects_empty_and_garbage() {
        assert!(from_csv("").is_err());
        assert!(from_csv("not,a,panel\n1,2,3").is_err());
    }

    #[test]
    fn rejects_bad_header_order() {
        let p = generate(&SynthConfig::tiny(802)).panel;
        let csv = to_csv(&p).replacen("company,name", "name,company", 1);
        let err = from_csv(&csv).unwrap_err();
        assert!(err.to_string().contains("column 0"));
    }

    #[test]
    fn rejects_missing_observation() {
        let p = generate(&SynthConfig { n_companies: 2, n_quarters: 6, ..SynthConfig::tiny(803) }).panel;
        let csv = to_csv(&p);
        // Drop the last data line.
        let trimmed: Vec<&str> = csv.trim_end().lines().collect();
        let cut = trimmed[..trimmed.len() - 1].join("\n");
        let err = from_csv(&cut).unwrap_err();
        assert!(err.to_string().contains("missing observation"), "{err}");
    }

    #[test]
    fn rejects_unknown_sector() {
        let p = generate(&SynthConfig { n_companies: 2, n_quarters: 6, ..SynthConfig::tiny(804) }).panel;
        let csv = to_csv(&p).replace("retail", "crypto").replace("travel", "crypto")
            .replace("apparel", "crypto").replace("electronics", "crypto")
            .replace("grocery", "crypto").replace("home-goods", "crypto")
            .replace("restaurants", "crypto").replace("entertainment", "crypto");
        assert!(from_csv(&csv).is_err());
    }

    #[test]
    fn rejects_bad_quarter_literal() {
        let p = generate(&SynthConfig { n_companies: 2, n_quarters: 6, ..SynthConfig::tiny(805) }).panel;
        let csv = to_csv(&p).replace("2015q1", "2015x1");
        let err = from_csv(&csv).unwrap_err();
        assert!(err.to_string().contains("quarter"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let p = generate(&SynthConfig { n_companies: 3, n_quarters: 6, ..SynthConfig::tiny(806) }).panel;
        let dir = std::env::temp_dir().join("ams_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panel.csv");
        write_csv(&p, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.num_companies(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
