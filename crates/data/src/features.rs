//! Feature assembly per Definition II.3 and §II-D.
//!
//! For a company `i` and target quarter `t` the financial features are
//! `X_i^t = {C_i^{t−k..t−1}, VE_i^t, A_i^t}` with `k = 4` so every
//! sample carries at least one year of history. Following the paper's
//! normalization protocol, revenue-scale quantities (historical
//! revenues and all analyst estimates) are divided by the oldest
//! in-window revenue `R_i^{t−k}`, and each alternative channel by its
//! own oldest value `A_i^{t−k}`, so features capture *relative changes*.
//! Ratio features enter in natural-log form (`ln(R_i^{t−1}/R_i^{t−k})`
//! etc.): growth processes are multiplicative, and the log keeps a
//! *linear* slave model faithful to the underlying structure — raw
//! ratios would bury the few-percent surprise signal under
//! second-order linearization error. One-hot encodings of the target
//! quarter, the company's fiscal end month and its sector are
//! appended. The label is the unexpected revenue in the paper's
//! normalized units: `(R_i^t − E_i^t) / R_i^{t−k}`.

use crate::panel::Panel;
use crate::universe::Sector;

/// One supervised example: a (company, target-quarter) pair.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Company id (node id in the correlation graph).
    pub company: usize,
    /// Target quarter index within the panel.
    pub quarter_idx: usize,
    /// Feature vector, aligned with [`FeatureSet::names`].
    pub features: Vec<f64>,
    /// Normalized label `UR_i^t / R_i^{t−k}`.
    pub label: f64,
    /// Normalizer `R_i^{t−k}` (multiply by it to return to millions).
    pub denom: f64,
    /// Actual reported revenue `R_i^t` (millions).
    pub revenue: f64,
    /// Analyst consensus `E_i^t` (millions).
    pub consensus: f64,
}

impl Sample {
    /// Actual unexpected revenue in millions.
    pub fn unexpected_revenue(&self) -> f64 {
        self.revenue - self.consensus
    }
}

/// A featurized panel: all samples plus column metadata.
#[derive(Debug, Clone)]
pub struct FeatureSet {
    /// Column names (e.g. `R_dq3`, `E_dq0`, `alt0_dq1`, `sector_travel`).
    pub names: Vec<String>,
    /// All samples, ordered company-major then quarter.
    pub samples: Vec<Sample>,
    /// Column indices of alternative-data features (dropped by the
    /// `-na` ablation of §IV-E).
    pub alt_cols: Vec<usize>,
    /// History length `k`.
    pub k: usize,
}

impl FeatureSet {
    /// Build features for every (company, quarter ≥ k) pair.
    ///
    /// # Panics
    /// Panics if the panel has fewer than `k + 1` quarters or `k == 0`.
    pub fn build(panel: &Panel, k: usize) -> Self {
        assert!(k > 0, "history length k must be positive");
        assert!(panel.num_quarters() > k, "panel too short for k={k}");
        let n_ch = panel.alt_names.len();

        let mut names: Vec<String> = vec!["bias".into()];
        let mut alt_cols = Vec::new();
        // Historical block, oldest lag first. `dq{j}` = j quarters ago,
        // matching Figure 8's labeling. The oldest revenue R_{t-k} is
        // identically 1 after normalization, so it is skipped.
        for lag in (1..=k).rev() {
            if lag != k {
                names.push(format!("R_dq{lag}"));
            }
            names.push(format!("E_dq{lag}"));
            names.push(format!("LE_dq{lag}"));
            names.push(format!("HE_dq{lag}"));
            for ch in 0..n_ch {
                alt_cols.push(names.len());
                names.push(format!("{}_dq{lag}", panel.alt_names[ch]));
            }
        }
        // Current-quarter block: estimates and alternative data.
        names.push("E_dq0".into());
        names.push("LE_dq0".into());
        names.push("HE_dq0".into());
        for ch in 0..n_ch {
            alt_cols.push(names.len());
            names.push(format!("{}_dq0", panel.alt_names[ch]));
        }
        // One-hot calendar and sector features.
        for q in 1..=4 {
            names.push(format!("quarter_q{q}"));
        }
        for m in 1..=12 {
            names.push(format!("month_{m}"));
        }
        for s in Sector::ALL {
            names.push(format!("sector_{}", s.name()));
        }

        let width = names.len();
        let n_companies = panel.companies.len();
        let n_quarters = panel.quarters.len();
        let mut samples = Vec::new();
        for c in 0..n_companies {
            for t in k..n_quarters {
                let denom = panel.get(c, t - k).revenue;
                let alt_denoms: Vec<f64> =
                    (0..n_ch).map(|ch| panel.get(c, t - k).alt[ch]).collect();
                let mut f = Vec::with_capacity(width);
                f.push(1.0);
                for lag in (1..=k).rev() {
                    let o = panel.get(c, t - lag);
                    if lag != k {
                        f.push((o.revenue / denom).ln());
                    }
                    f.push((o.consensus / denom).ln());
                    f.push((o.low_est / denom).ln());
                    f.push((o.high_est / denom).ln());
                    for (a, d) in o.alt.iter().zip(&alt_denoms) {
                        f.push((a / d).ln());
                    }
                }
                let cur = panel.get(c, t);
                f.push((cur.consensus / denom).ln());
                f.push((cur.low_est / denom).ln());
                f.push((cur.high_est / denom).ln());
                for (a, d) in cur.alt.iter().zip(&alt_denoms) {
                    f.push((a / d).ln());
                }
                let q = panel.quarters[t];
                for qi in 1..=4 {
                    f.push(if q.q() == qi { 1.0 } else { 0.0 });
                }
                let month = panel.companies[c].fiscal_end_month(q);
                for m in 1..=12 {
                    f.push(if month == m { 1.0 } else { 0.0 });
                }
                for s in Sector::ALL {
                    f.push(if panel.companies[c].sector == s { 1.0 } else { 0.0 });
                }
                debug_assert_eq!(f.len(), width);
                samples.push(Sample {
                    company: c,
                    quarter_idx: t,
                    features: f,
                    label: (cur.revenue - cur.consensus) / denom,
                    denom,
                    revenue: cur.revenue,
                    consensus: cur.consensus,
                });
            }
        }
        Self { names, samples, alt_cols, k }
    }

    /// Number of feature columns.
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// The `-na` variant: drop every alternative-data column (§IV-E).
    pub fn without_alternative(&self) -> FeatureSet {
        let keep: Vec<usize> = (0..self.width()).filter(|i| !self.alt_cols.contains(i)).collect();
        let names = keep.iter().map(|&i| self.names[i].clone()).collect();
        let samples = self
            .samples
            .iter()
            .map(|s| Sample {
                features: keep.iter().map(|&i| s.features[i]).collect(),
                ..s.clone()
            })
            .collect();
        FeatureSet { names, samples, alt_cols: Vec::new(), k: self.k }
    }

    /// Indices of samples whose target quarter is `t`.
    pub fn samples_at_quarter(&self, t: usize) -> Vec<usize> {
        (0..self.samples.len()).filter(|&i| self.samples[i].quarter_idx == t).collect()
    }

    /// Indices of samples whose target quarter is in `ts`.
    pub fn samples_at_quarters(&self, ts: &[usize]) -> Vec<usize> {
        (0..self.samples.len()).filter(|&i| ts.contains(&self.samples[i].quarter_idx)).collect()
    }

    /// Dense design matrix and label vector for the given sample ids,
    /// as flat row-major storage `(x, rows, cols, y)`.
    pub fn design(&self, ids: &[usize]) -> (Vec<f64>, usize, usize, Vec<f64>) {
        let cols = self.width();
        let mut x = Vec::with_capacity(ids.len() * cols);
        let mut y = Vec::with_capacity(ids.len());
        for &i in ids {
            x.extend_from_slice(&self.samples[i].features);
            y.push(self.samples[i].label);
        }
        (x, ids.len(), cols, y)
    }
}

/// Train-split standardization (§II-D: "we normalize dataset with the
/// mean and variance from the training set in each cross-validation
/// step"). Columns with zero variance (the bias, unused one-hots) and
/// binary 0/1 columns (the one-hot encodings — z-scoring a rare
/// indicator would inflate it into a high-leverage memorization
/// direction) are left untouched.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
    skip: Vec<bool>,
    /// Label moments (labels are standardized too; predictions must be
    /// mapped back with [`Standardizer::destandardize_label`]).
    label_mean: f64,
    label_std: f64,
}

impl Standardizer {
    /// Fit column means/stds on the training samples.
    pub fn fit(fs: &FeatureSet, train_ids: &[usize]) -> Self {
        assert!(!train_ids.is_empty(), "Standardizer::fit: empty training set");
        let w = fs.width();
        let n = train_ids.len() as f64;
        let mut means = vec![0.0; w];
        for &i in train_ids {
            for (m, &v) in means.iter_mut().zip(&fs.samples[i].features) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; w];
        for &i in train_ids {
            for ((s, &m), &v) in stds.iter_mut().zip(&means).zip(&fs.samples[i].features) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
        }
        // Binary 0/1 columns (one-hots) are exempt from scaling.
        let skip: Vec<bool> = (0..w)
            .map(|j| {
                train_ids
                    .iter()
                    .all(|&i| matches!(fs.samples[i].features[j], v if v == 0.0 || v == 1.0))
            })
            .collect();
        let labels: Vec<f64> = train_ids.iter().map(|&i| fs.samples[i].label).collect();
        let label_mean = ams_stats::mean(&labels);
        let label_std = {
            let v = labels.iter().map(|l| (l - label_mean) * (l - label_mean)).sum::<f64>()
                / labels.len() as f64;
            v.sqrt()
        };
        Self { means, stds, skip, label_mean, label_std }
    }

    /// Apply to a whole feature set, producing standardized copies of
    /// every sample (labels standardized too).
    pub fn transform(&self, fs: &FeatureSet) -> FeatureSet {
        let mut out = fs.clone();
        for s in &mut out.samples {
            for (j, v) in s.features.iter_mut().enumerate() {
                if !self.skip[j] && self.stds[j] > 1e-12 {
                    *v = (*v - self.means[j]) / self.stds[j];
                }
            }
            s.label = self.standardize_label(s.label);
        }
        out
    }

    /// Standardize a single raw feature row in place, exactly as
    /// [`Standardizer::transform`] would. This is the serving-time entry
    /// point: inference receives one company's raw features, not a
    /// whole [`FeatureSet`].
    ///
    /// # Panics
    /// Panics if the row width disagrees with the fitted width.
    pub fn transform_row(&self, features: &mut [f64]) {
        assert_eq!(features.len(), self.width(), "transform_row: feature width mismatch");
        for (j, v) in features.iter_mut().enumerate() {
            if !self.skip[j] && self.stds[j] > 1e-12 {
                *v = (*v - self.means[j]) / self.stds[j];
            }
        }
    }

    /// The feature width this standardizer was fitted on.
    pub fn width(&self) -> usize {
        self.means.len()
    }

    /// Standardize one label value.
    pub fn standardize_label(&self, label: f64) -> f64 {
        if self.label_std > 1e-12 {
            (label - self.label_mean) / self.label_std
        } else {
            label - self.label_mean
        }
    }

    /// Invert [`Standardizer::standardize_label`].
    pub fn destandardize_label(&self, z: f64) -> f64 {
        if self.label_std > 1e-12 {
            z * self.label_std + self.label_mean
        } else {
            z + self.label_mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    fn tiny_fs() -> FeatureSet {
        let s = generate(&SynthConfig::tiny(11));
        FeatureSet::build(&s.panel, 4)
    }

    #[test]
    fn sample_count_and_width() {
        let fs = tiny_fs();
        // 12 companies × (10 − 4) target quarters.
        assert_eq!(fs.samples.len(), 12 * 6);
        // 1 bias + hist 4×(1R+3VE+1A)−1 + cur(3VE+1A) + 4 + 12 + 8.
        assert_eq!(fs.width(), 1 + (4 * 5 - 1) + 4 + 4 + 12 + 8);
        assert_eq!(fs.names.len(), fs.width());
    }

    #[test]
    fn oldest_revenue_normalizes_to_one_and_is_dropped() {
        let fs = tiny_fs();
        assert!(!fs.names.contains(&"R_dq4".to_string()));
        assert!(fs.names.contains(&"R_dq1".to_string()));
        assert!(fs.names.contains(&"E_dq4".to_string()));
    }

    #[test]
    fn alt_cols_point_at_alt_features() {
        let fs = tiny_fs();
        // k=4 historical + 1 current = 5 alt columns for one channel.
        assert_eq!(fs.alt_cols.len(), 5);
        for &c in &fs.alt_cols {
            assert!(fs.names[c].starts_with("txn_amount"), "col {c} = {}", fs.names[c]);
        }
    }

    #[test]
    fn normalization_is_relative_to_oldest() {
        let s = generate(&SynthConfig::tiny(12));
        let fs = FeatureSet::build(&s.panel, 4);
        let sample = &fs.samples[0];
        let (c, t) = (sample.company, sample.quarter_idx);
        let denom = s.panel.get(c, t - 4).revenue;
        assert_eq!(sample.denom, denom);
        // R_dq1 is the log of revenue one quarter before target over denom.
        let col = fs.names.iter().position(|n| n == "R_dq1").unwrap();
        let expected = (s.panel.get(c, t - 1).revenue / denom).ln();
        assert!((sample.features[col] - expected).abs() < 1e-12);
        // Label = (R - E)/denom.
        let o = s.panel.get(c, t);
        assert!((sample.label - (o.revenue - o.consensus) / denom).abs() < 1e-12);
    }

    #[test]
    fn one_hots_are_exclusive() {
        let fs = tiny_fs();
        let qcols: Vec<usize> =
            (0..fs.width()).filter(|&i| fs.names[i].starts_with("quarter_")).collect();
        let mcols: Vec<usize> =
            (0..fs.width()).filter(|&i| fs.names[i].starts_with("month_")).collect();
        let scols: Vec<usize> =
            (0..fs.width()).filter(|&i| fs.names[i].starts_with("sector_")).collect();
        for s in &fs.samples {
            assert_eq!(qcols.iter().map(|&i| s.features[i]).sum::<f64>(), 1.0);
            assert_eq!(mcols.iter().map(|&i| s.features[i]).sum::<f64>(), 1.0);
            assert_eq!(scols.iter().map(|&i| s.features[i]).sum::<f64>(), 1.0);
        }
    }

    #[test]
    fn without_alternative_removes_only_alt() {
        let fs = tiny_fs();
        let na = fs.without_alternative();
        assert_eq!(na.width(), fs.width() - fs.alt_cols.len());
        assert!(na.alt_cols.is_empty());
        assert!(!na.names.iter().any(|n| n.starts_with("txn_amount")));
        // Labels and metadata unchanged.
        assert_eq!(na.samples[5].label, fs.samples[5].label);
        assert_eq!(na.samples[5].company, fs.samples[5].company);
    }

    #[test]
    fn samples_at_quarter_filters() {
        let fs = tiny_fs();
        let ids = fs.samples_at_quarter(5);
        assert_eq!(ids.len(), 12);
        assert!(ids.iter().all(|&i| fs.samples[i].quarter_idx == 5));
        let ids2 = fs.samples_at_quarters(&[4, 5]);
        assert_eq!(ids2.len(), 24);
    }

    #[test]
    fn standardizer_zero_mean_unit_var_on_train() {
        let fs = tiny_fs();
        let train: Vec<usize> = fs.samples_at_quarters(&[4, 5, 6]);
        let st = Standardizer::fit(&fs, &train);
        let z = st.transform(&fs);
        // Check one continuous column over the training rows.
        let col = fs.names.iter().position(|n| n == "E_dq0").unwrap();
        let vals: Vec<f64> = train.iter().map(|&i| z.samples[i].features[col]).collect();
        assert!(ams_stats::mean(&vals).abs() < 1e-9);
        let var = vals.iter().map(|v| v * v).sum::<f64>() / vals.len() as f64;
        assert!((var - 1.0).abs() < 1e-9);
        // Bias column untouched.
        assert_eq!(z.samples[0].features[0], 1.0);
    }

    #[test]
    fn standardizer_label_roundtrip() {
        let fs = tiny_fs();
        let train: Vec<usize> = fs.samples_at_quarters(&[4, 5]);
        let st = Standardizer::fit(&fs, &train);
        for &i in &[0usize, 10, 20] {
            let l = fs.samples[i].label;
            let back = st.destandardize_label(st.standardize_label(l));
            assert!((back - l).abs() < 1e-12);
        }
    }

    #[test]
    fn standardizer_serde_round_trip_matches_transform() {
        let fs = tiny_fs();
        let train: Vec<usize> = fs.samples_at_quarters(&[4, 5, 6]);
        let st = Standardizer::fit(&fs, &train);
        let back: Standardizer =
            serde_json::from_str(&serde_json::to_string(&st).unwrap()).unwrap();
        assert_eq!(back.width(), st.width());
        // Row-wise transform through the round-tripped standardizer is
        // bit-identical to the batch transform through the original.
        let z = st.transform(&fs);
        for i in [0usize, 7, 33] {
            let mut row = fs.samples[i].features.clone();
            back.transform_row(&mut row);
            for (a, b) in row.iter().zip(&z.samples[i].features) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(
                back.standardize_label(fs.samples[i].label).to_bits(),
                st.standardize_label(fs.samples[i].label).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn transform_row_rejects_wrong_width() {
        let fs = tiny_fs();
        let st = Standardizer::fit(&fs, &fs.samples_at_quarter(4));
        st.transform_row(&mut [1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn build_rejects_short_panel() {
        let s = generate(&SynthConfig { n_quarters: 4, ..SynthConfig::tiny(1) });
        FeatureSet::build(&s.panel, 4);
    }

    #[test]
    fn design_matrix_shapes() {
        let fs = tiny_fs();
        let ids = fs.samples_at_quarter(4);
        let (x, rows, cols, y) = fs.design(&ids);
        assert_eq!(rows, 12);
        assert_eq!(cols, fs.width());
        assert_eq!(x.len(), rows * cols);
        assert_eq!(y.len(), rows);
    }
}
