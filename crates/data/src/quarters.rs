//! Fiscal-quarter calendar arithmetic.
//!
//! The paper's datasets are quarterly panels ("2014q3 to 2018q2, namely
//! 16 quarters"). [`Quarter`] is a year/quarter pair with total
//! ordering, arithmetic, and parsing of the paper's `2016q4` notation.

use std::fmt;
use std::str::FromStr;

/// A calendar quarter such as `2016q4`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Quarter {
    year: i32,
    /// 1..=4
    q: u8,
}

impl Quarter {
    /// Construct; `q` must be 1..=4.
    pub fn new(year: i32, q: u8) -> Self {
        assert!((1..=4).contains(&q), "quarter must be 1..=4, got {q}");
        Self { year, q }
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        self.year
    }

    /// Quarter within the year, 1..=4.
    pub fn q(self) -> u8 {
        self.q
    }

    /// Monotone integer index (quarters since year 0).
    pub fn index(self) -> i64 {
        self.year as i64 * 4 + (self.q as i64 - 1)
    }

    /// Quarter from a monotone index.
    pub fn from_index(idx: i64) -> Self {
        let year = idx.div_euclid(4);
        let q = idx.rem_euclid(4) + 1;
        Self::new(year as i32, q as u8)
    }

    /// `self + n` quarters (n may be negative).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: i64) -> Self {
        Self::from_index(self.index() + n)
    }

    /// Signed distance `self − other` in quarters.
    pub fn diff(self, other: Quarter) -> i64 {
        self.index() - other.index()
    }

    /// The next quarter.
    pub fn next(self) -> Self {
        self.add(1)
    }

    /// The month in which the quarter ends (3, 6, 9, 12), the paper's
    /// "month" one-hot feature anchor for a calendar-year fiscal company.
    pub fn end_month(self) -> u8 {
        self.q * 3
    }

    /// Inclusive range of quarters `[start, end]`.
    pub fn range(start: Quarter, end: Quarter) -> Vec<Quarter> {
        assert!(start <= end, "range: start after end");
        (start.index()..=end.index()).map(Quarter::from_index).collect()
    }
}

impl fmt::Display for Quarter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}q{}", self.year, self.q)
    }
}

/// Error parsing a quarter string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQuarterError(String);

impl fmt::Display for ParseQuarterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid quarter literal: {:?} (expected e.g. 2016q4)", self.0)
    }
}

impl std::error::Error for ParseQuarterError {}

impl FromStr for Quarter {
    type Err = ParseQuarterError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let (y, q) = lower.split_once('q').ok_or_else(|| ParseQuarterError(s.into()))?;
        let year: i32 = y.parse().map_err(|_| ParseQuarterError(s.into()))?;
        let qn: u8 = q.parse().map_err(|_| ParseQuarterError(s.into()))?;
        if !(1..=4).contains(&qn) {
            return Err(ParseQuarterError(s.into()));
        }
        Ok(Quarter::new(year, qn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let q = Quarter::new(2016, 4);
        assert_eq!(q.year(), 2016);
        assert_eq!(q.q(), 4);
        assert_eq!(q.end_month(), 12);
    }

    #[test]
    #[should_panic(expected = "quarter must be")]
    fn rejects_quarter_five() {
        Quarter::new(2016, 5);
    }

    #[test]
    fn arithmetic_wraps_years() {
        let q = Quarter::new(2014, 3);
        assert_eq!(q.add(2), Quarter::new(2015, 1));
        assert_eq!(q.add(-3), Quarter::new(2013, 4));
        assert_eq!(q.add(15), Quarter::new(2018, 2));
    }

    #[test]
    fn diff_is_inverse_of_add() {
        let a = Quarter::new(2014, 3);
        let b = a.add(15);
        assert_eq!(b.diff(a), 15);
        assert_eq!(a.diff(b), -15);
    }

    #[test]
    fn index_roundtrip() {
        for year in [1999, 2016, 2026] {
            for q in 1..=4 {
                let qu = Quarter::new(year, q);
                assert_eq!(Quarter::from_index(qu.index()), qu);
            }
        }
    }

    #[test]
    fn ordering() {
        assert!(Quarter::new(2016, 4) < Quarter::new(2017, 1));
        assert!(Quarter::new(2016, 2) > Quarter::new(2016, 1));
    }

    #[test]
    fn paper_transaction_span_is_16_quarters() {
        let qs = Quarter::range(Quarter::new(2014, 3), Quarter::new(2018, 2));
        assert_eq!(qs.len(), 16);
        assert_eq!(qs[0].to_string(), "2014q3");
        assert_eq!(qs[15].to_string(), "2018q2");
    }

    #[test]
    fn paper_map_query_span_is_9_quarters() {
        let qs = Quarter::range(Quarter::new(2016, 2), Quarter::new(2018, 2));
        assert_eq!(qs.len(), 9);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let q: Quarter = "2016q4".parse().unwrap();
        assert_eq!(q, Quarter::new(2016, 4));
        assert_eq!(q.to_string(), "2016q4");
        assert_eq!("2016Q4".parse::<Quarter>().unwrap(), q);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("2016".parse::<Quarter>().is_err());
        assert!("2016q5".parse::<Quarter>().is_err());
        assert!("q4".parse::<Quarter>().is_err());
        assert!("abcq1".parse::<Quarter>().is_err());
    }
}
