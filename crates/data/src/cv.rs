//! Time-series cross-validation (Figure 5, §IV-C).
//!
//! The paper evaluates with an expanding-window schedule: the first
//! year of the panel is dropped (no full history), the next block of
//! quarters seeds the training set, then each fold uses one quarter for
//! validation and the following quarter for testing, growing the
//! training window by one quarter per fold.
//!
//! For the transaction panel (16 quarters, k = 4) this yields the
//! paper's seven test quarters 2016q4–2018q2; for the map-query panel
//! (9 quarters) the two test quarters 2018q1–2018q2.

use crate::quarters::Quarter;

/// One cross-validation fold, all values are *quarter indices* into the
/// panel (not sample ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training target quarters (each contributes one sample per company).
    pub train: Vec<usize>,
    /// Validation target quarter (hyperparameter selection).
    pub val: usize,
    /// Test target quarter (reported).
    pub test: usize,
}

/// The full expanding-window schedule.
#[derive(Debug, Clone)]
pub struct CvSchedule {
    folds: Vec<Fold>,
    /// History length k: quarter indices below this can never be targets.
    pub k: usize,
}

impl CvSchedule {
    /// Build the paper's schedule: `n_quarters` total panel quarters,
    /// history length `k`, and `n_folds` test quarters at the end.
    ///
    /// The initial training window gets every target quarter not used
    /// for validation/testing: `n_quarters − k − n_folds − 1` quarters.
    ///
    /// # Panics
    /// Panics when the panel is too short for the requested schedule.
    pub fn paper(n_quarters: usize, k: usize, n_folds: usize) -> Self {
        assert!(n_folds >= 1, "need at least one fold");
        let n_targets = n_quarters.checked_sub(k).expect("panel shorter than history");
        assert!(
            n_targets >= n_folds + 2,
            "panel too short: {n_targets} target quarters cannot support {n_folds} folds \
             (need at least {} for 1 train + 1 val + tests)",
            n_folds + 2
        );
        let initial_train = n_targets - n_folds - 1;
        let folds = (0..n_folds)
            .map(|f| {
                let val = k + initial_train + f;
                Fold { train: (k..val).collect(), val, test: val + 1 }
            })
            .collect();
        Self { folds, k }
    }

    /// The folds in chronological order.
    pub fn folds(&self) -> &[Fold] {
        &self.folds
    }

    /// Number of folds.
    pub fn len(&self) -> usize {
        self.folds.len()
    }

    /// True when the schedule has no folds (never produced by `paper`).
    pub fn is_empty(&self) -> bool {
        self.folds.is_empty()
    }

    /// Render the schedule as the paper's Figure 5 does, given the
    /// panel's quarters.
    pub fn describe(&self, quarters: &[Quarter]) -> String {
        let mut out = String::new();
        out.push_str("fold | train                         | validate | test\n");
        out.push_str("-----+-------------------------------+----------+--------\n");
        for (i, f) in self.folds.iter().enumerate() {
            let first = quarters[*f.train.first().expect("nonempty train")];
            let last = quarters[*f.train.last().expect("nonempty train")];
            out.push_str(&format!(
                "{:>4} | {} .. {} ({:>2} quarters)   | {}   | {}\n",
                i + 1,
                first,
                last,
                f.train.len(),
                quarters[f.val],
                quarters[f.test],
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_schedule_matches_paper() {
        // 16 quarters from 2014q3; k=4; 7 folds → tests 2016q4..2018q2.
        let s = CvSchedule::paper(16, 4, 7);
        assert_eq!(s.len(), 7);
        let quarters = Quarter::range(Quarter::new(2014, 3), Quarter::new(2018, 2));
        let f0 = &s.folds()[0];
        // Initial training 2015q3..2016q2 (indices 4..=7), val 2016q3, test 2016q4.
        assert_eq!(f0.train, vec![4, 5, 6, 7]);
        assert_eq!(quarters[f0.train[0]].to_string(), "2015q3");
        assert_eq!(quarters[f0.val].to_string(), "2016q3");
        assert_eq!(quarters[f0.test].to_string(), "2016q4");
        let f6 = &s.folds()[6];
        assert_eq!(quarters[f6.test].to_string(), "2018q2");
        assert_eq!(f6.train, (4..14).collect::<Vec<_>>());
    }

    #[test]
    fn map_query_schedule_matches_paper() {
        // 9 quarters from 2016q2; k=4; 2 folds → tests 2018q1, 2018q2.
        let s = CvSchedule::paper(9, 4, 2);
        assert_eq!(s.len(), 2);
        let quarters = Quarter::range(Quarter::new(2016, 2), Quarter::new(2018, 2));
        let f0 = &s.folds()[0];
        // Train {2017q2, 2017q3}, val 2017q4, test 2018q1.
        assert_eq!(f0.train, vec![4, 5]);
        assert_eq!(quarters[f0.val].to_string(), "2017q4");
        assert_eq!(quarters[f0.test].to_string(), "2018q1");
        let f1 = &s.folds()[1];
        assert_eq!(f1.train, vec![4, 5, 6]);
        assert_eq!(quarters[f1.test].to_string(), "2018q2");
    }

    #[test]
    fn windows_expand_by_one() {
        let s = CvSchedule::paper(16, 4, 7);
        for w in s.folds().windows(2) {
            assert_eq!(w[1].train.len(), w[0].train.len() + 1);
            assert_eq!(w[1].val, w[0].val + 1);
            assert_eq!(w[1].test, w[0].test + 1);
        }
    }

    #[test]
    fn no_leakage_ordering() {
        for s in [CvSchedule::paper(16, 4, 7), CvSchedule::paper(9, 4, 2)] {
            for f in s.folds() {
                assert!(f.train.iter().all(|&t| t < f.val));
                assert!(f.val < f.test);
            }
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_impossible_schedule() {
        CvSchedule::paper(8, 4, 4);
    }

    #[test]
    fn describe_renders_every_fold() {
        let s = CvSchedule::paper(16, 4, 7);
        let quarters = Quarter::range(Quarter::new(2014, 3), Quarter::new(2018, 2));
        let d = s.describe(&quarters);
        assert_eq!(d.lines().count(), 2 + 7);
        assert!(d.contains("2016q4"));
        assert!(d.contains("2018q2"));
    }
}
