//! # ams-data — panels, synthetic alternative data, features, CV
//!
//! The data substrate of the AMS reproduction. The paper evaluates on
//! two proprietary panels (China UnionPay online transaction amounts;
//! Baidu Maps query counts); this crate simulates their statistical
//! structure (see `DESIGN.md` §1 for the substitution argument) and
//! implements the paper's feature protocol end-to-end:
//!
//! * [`quarters`] — fiscal-quarter calendar ([`Quarter`]);
//! * [`universe`] — companies, sectors, market-cap tiers;
//! * [`panel`] — quarterly observations ([`Panel`], [`Observation`]);
//! * [`synth`] — the structural generator ([`synth::generate`]) and
//!   the bounded-memory streaming variant ([`synth::SynthStream`]);
//! * [`source`] — pull-based [`source::PanelSource`] abstraction over
//!   panels, streams and the `ams-store` feature store;
//! * [`features`] — Definition II.3 feature assembly ([`FeatureSet`])
//!   and train-split standardization ([`Standardizer`]);
//! * [`cv`] — the Figure 5 expanding-window schedule ([`CvSchedule`]);
//! * [`io`] — CSV import/export so real (non-simulated) panels can be
//!   dropped into the same pipeline.

pub mod cv;
pub mod features;
pub mod io;
pub mod panel;
pub mod quarters;
pub mod source;
pub mod synth;
pub mod universe;

pub use cv::{CvSchedule, Fold};
pub use features::{FeatureSet, Sample, Standardizer};
pub use panel::{Observation, Panel};
pub use quarters::Quarter;
pub use source::{materialize, CompanyHistory, PanelCursor, PanelSource, SourceError};
pub use synth::{generate, AltChannel, SynthConfig, SynthPanel, SynthStream};
pub use universe::{CapTier, Company, Sector};
