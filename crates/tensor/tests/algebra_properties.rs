//! Property-based tests of the matrix algebra and autodiff invariants.

use ams_tensor::{Graph, Matrix};
use proptest::prelude::*;

/// Strategy: a rows×cols matrix with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    /// (A B) C = A (B C) within floating tolerance.
    #[test]
    fn matmul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    /// (A B)ᵀ = Bᵀ Aᵀ.
    #[test]
    fn transpose_reverses_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).t();
        let right = b.t().matmul(&a.t());
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }

    /// A (B + C) = A B + A C.
    #[test]
    fn matmul_distributes(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    /// Addition commutes, subtraction anticommutes.
    #[test]
    fn add_sub_symmetry(a in matrix(4, 4), b in matrix(4, 4)) {
        prop_assert!(a.add(&b).max_abs_diff(&b.add(&a)) < 1e-12);
        prop_assert!(a.sub(&b).max_abs_diff(&b.sub(&a).scale(-1.0)) < 1e-12);
    }

    /// ‖A‖²_F = tr(Aᵀ A) via the diagonal sum.
    #[test]
    fn frobenius_is_trace_of_gram(a in matrix(3, 5)) {
        let gram = a.t().matmul(&a);
        let trace: f64 = (0..gram.rows()).map(|i| gram[(i, i)]).sum();
        prop_assert!((a.sq_frobenius() - trace).abs() < 1e-9 * (1.0 + trace.abs()));
    }

    /// Row selection preserves exact row contents for any index list.
    #[test]
    fn select_rows_exact(a in matrix(5, 3), ids in prop::collection::vec(0usize..5, 1..8)) {
        let s = a.select_rows(&ids);
        for (r, &id) in ids.iter().enumerate() {
            prop_assert_eq!(s.row(r), a.row(id));
        }
    }

    /// Autodiff linearity: grad of sum(αX) w.r.t. X is α everywhere.
    #[test]
    fn grad_of_scaled_sum_is_constant(a in matrix(3, 3), alpha in -5.0f64..5.0) {
        let mut g = Graph::new();
        let x = g.input(a);
        let y = g.scale(x, alpha);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        for &v in grads.get(x).as_slice() {
            prop_assert!((v - alpha).abs() < 1e-12);
        }
    }

    /// Gradient of a quadratic form matches the closed form:
    /// d/dX ‖X W‖² = 2 X W Wᵀ.
    #[test]
    fn quadratic_gradient_closed_form(x0 in matrix(3, 4), w0 in matrix(4, 2)) {
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let w = g.input(w0.clone());
        let y = g.matmul(x, w);
        let loss = g.sq_frobenius(y);
        let grads = g.backward(loss);
        let expected = x0.matmul(&w0).matmul(&w0.t()).scale(2.0);
        prop_assert!(grads.get(x).max_abs_diff(&expected) < 1e-8);
    }

    /// Backward through add/sub chains keeps gradient magnitudes exact:
    /// loss = sum(a + b − b) has grad 1 w.r.t. a and 0 w.r.t. b.
    #[test]
    fn cancellation_gradients(a in matrix(2, 3), b in matrix(2, 3)) {
        let mut g = Graph::new();
        let av = g.input(a);
        let bv = g.input(b);
        let s = g.add(av, bv);
        let d = g.sub(s, bv);
        let loss = g.sum_all(d);
        let grads = g.backward(loss);
        for &v in grads.get(av).as_slice() {
            prop_assert!((v - 1.0).abs() < 1e-12);
        }
        for &v in grads.get(bv).as_slice() {
            prop_assert!(v.abs() < 1e-12);
        }
    }

    /// Cholesky solve residual stays tiny on generated SPD systems.
    #[test]
    fn spd_solve_residual(a in matrix(4, 4), b in matrix(4, 2)) {
        // Make SPD: A Aᵀ + 4 I.
        let spd = a.matmul(&a.t()).add(&Matrix::eye(4).scale(4.0));
        let x = ams_tensor::solve_spd(&spd, &b).expect("SPD solve");
        let resid = spd.matmul(&x).sub(&b);
        prop_assert!(resid.max_abs_diff(&Matrix::zeros(4, 2)) < 1e-8);
    }

    /// Softmax rows (via masked softmax with a full mask) stay on the
    /// simplex.
    #[test]
    fn softmax_simplex(a in matrix(4, 6)) {
        let mut g = Graph::new();
        let x = g.input(a);
        let mask = Matrix::ones(4, 6);
        let y = g.masked_softmax_rows(x, &mask);
        let yv = g.value(y);
        for r in 0..4 {
            let row_sum: f64 = yv.row(r).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-10);
            prop_assert!(yv.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
