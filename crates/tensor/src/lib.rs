//! # ams-tensor — dense linear algebra and reverse-mode autodiff
//!
//! The numerical substrate of the AMS reproduction. The paper implements
//! its models in PaddlePaddle; this crate provides the equivalent
//! primitives from scratch:
//!
//! * [`Matrix`] — dense row-major `f64` matrices with the usual algebra,
//!   executing on the shared `ams-runtime` kernels (re-exported here as
//!   [`runtime`]) with a pluggable sequential/parallel [`Backend`];
//! * [`linalg`] — Cholesky/LU direct solvers (closed-form ridge for the
//!   anchored LR of Eq. 5);
//! * [`Graph`]/[`Var`] — a define-by-run autodiff tape with the ops
//!   needed by node transforms, GAT attention, LSTM/GRU cells and the
//!   master objective Γ_master (Eq. 11);
//! * [`optim`] — Adam and SGD;
//! * [`init`] — Xavier/He initialization, Box–Muller normals, and
//!   inverted-dropout masks;
//! * [`gradcheck`] — finite-difference verification used across the
//!   workspace's test suites;
//! * [`plan`] — a read-only, data-free snapshot of a recorded tape
//!   ([`Graph::plan`]), the IR the `ams-analyze` static checker
//!   replays shape inference and gradient reachability over.

pub mod gradcheck;
pub mod graph;
pub mod init;
pub mod linalg;
pub mod matrix;
pub mod optim;
pub mod plan;

pub use ams_runtime as runtime;
pub use ams_runtime::{Backend, BackendChoice, Element, RuntimeError, SimdSeq, Workspace};
pub use graph::{Gradients, Graph, Var};
pub use linalg::{cholesky, ridge_solve, solve_lu, solve_spd, LinalgError};
pub use matrix::Matrix;
pub use optim::{Adam, AdamState, Sgd};
pub use plan::{Plan, PlanNode, PlanOp};
