//! Read-only tape IR for static analysis.
//!
//! [`crate::Graph`] is an eager define-by-run tape: by the time an op
//! is recorded its value has already been computed, so a shape bug
//! surfaces as a runtime panic deep inside the op that tripped over
//! it. A [`Plan`] is the same op list *without the data*: every node
//! carries its op kind, its input node ids, the constants that matter
//! for shape/structure reasoning (mask shapes, selected row ids,
//! concat arity) and the shape the tape recorded for it.
//!
//! Plans serve two audiences:
//!
//! * [`Graph::plan`](crate::Graph::plan) exports the tape of a real
//!   training/eval graph so `ams-analyze` can replay shape inference,
//!   gradient reachability and numerical-risk checks over it;
//! * a plan can also be built symbolically ([`Plan::leaf`] /
//!   [`Plan::push`]) with *claimed* shapes that never touched data —
//!   which is how defect fixtures (a shape-mismatched graph, a
//!   detached parameter) are constructed without having to defeat the
//!   tape's own eager asserts.

use crate::graph::Graph;

/// Structural description of one tape op. Input operands are node ids
/// into the owning [`Plan`]; constants are reduced to what static
/// analysis needs (shapes and index ranges, never element data).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Leaf: an input, parameter snapshot, or constant.
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    /// Element-wise (Hadamard) product.
    Mul(usize, usize),
    /// Element-wise division `a / b`.
    Div(usize, usize),
    MatMul(usize, usize),
    /// `alpha * x + beta` element-wise (only the multiplier is kept).
    Affine(usize, f64),
    Relu(usize),
    LeakyRelu(usize, f64),
    Sigmoid(usize),
    Tanh(usize),
    /// Natural logarithm, element-wise.
    Log(usize),
    /// `max(x, lo)` element-wise.
    ClampMin(usize, f64),
    Transpose(usize),
    /// `(n×d) + (1×d)` bias-style broadcast over rows.
    AddRowBroadcast(usize, usize),
    /// `out[i][j] = u[i] + v[j]` from column vectors.
    OuterSum(usize, usize),
    /// Row-wise masked softmax; carries the mask shape and how many
    /// mask rows are fully zero (isolated nodes).
    MaskedSoftmaxRows {
        x: usize,
        mask_shape: (usize, usize),
        fully_masked_rows: usize,
    },
    /// Horizontal concatenation.
    ConcatCols(Vec<usize>),
    SumAll(usize),
    MeanAll(usize),
    /// Mean squared error → 1×1.
    Mse(usize, usize),
    /// Row-wise dot product → n×1.
    RowwiseDot(usize, usize),
    /// Row gather; carries the selected ids' count and max.
    SelectRows {
        x: usize,
        n_ids: usize,
        max_id: Option<usize>,
    },
    /// Element-wise multiply by a fixed dropout mask of the given shape.
    Dropout(usize, (usize, usize)),
    /// Squared Frobenius norm → 1×1.
    SqFrobenius(usize),
}

impl PlanOp {
    /// Short stable name used in diagnostics and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            PlanOp::Leaf => "leaf",
            PlanOp::Add(..) => "add",
            PlanOp::Sub(..) => "sub",
            PlanOp::Mul(..) => "mul",
            PlanOp::Div(..) => "div",
            PlanOp::MatMul(..) => "matmul",
            PlanOp::Affine(..) => "affine",
            PlanOp::Relu(..) => "relu",
            PlanOp::LeakyRelu(..) => "leaky_relu",
            PlanOp::Sigmoid(..) => "sigmoid",
            PlanOp::Tanh(..) => "tanh",
            PlanOp::Log(..) => "log",
            PlanOp::ClampMin(..) => "clamp_min",
            PlanOp::Transpose(..) => "transpose",
            PlanOp::AddRowBroadcast(..) => "add_row_broadcast",
            PlanOp::OuterSum(..) => "outer_sum",
            PlanOp::MaskedSoftmaxRows { .. } => "masked_softmax_rows",
            PlanOp::ConcatCols(..) => "concat_cols",
            PlanOp::SumAll(..) => "sum_all",
            PlanOp::MeanAll(..) => "mean_all",
            PlanOp::Mse(..) => "mse",
            PlanOp::RowwiseDot(..) => "rowwise_dot",
            PlanOp::SelectRows { .. } => "select_rows",
            PlanOp::Dropout(..) => "dropout",
            PlanOp::SqFrobenius(..) => "sq_frobenius",
        }
    }

    /// Input node ids in operand order.
    pub fn inputs(&self) -> Vec<usize> {
        match self {
            PlanOp::Leaf => vec![],
            PlanOp::Add(a, b)
            | PlanOp::Sub(a, b)
            | PlanOp::Mul(a, b)
            | PlanOp::Div(a, b)
            | PlanOp::MatMul(a, b)
            | PlanOp::AddRowBroadcast(a, b)
            | PlanOp::OuterSum(a, b)
            | PlanOp::Mse(a, b)
            | PlanOp::RowwiseDot(a, b) => vec![*a, *b],
            PlanOp::Affine(a, _)
            | PlanOp::Relu(a)
            | PlanOp::LeakyRelu(a, _)
            | PlanOp::Sigmoid(a)
            | PlanOp::Tanh(a)
            | PlanOp::Log(a)
            | PlanOp::ClampMin(a, _)
            | PlanOp::Transpose(a)
            | PlanOp::SumAll(a)
            | PlanOp::MeanAll(a)
            | PlanOp::SqFrobenius(a)
            | PlanOp::Dropout(a, _)
            | PlanOp::MaskedSoftmaxRows { x: a, .. }
            | PlanOp::SelectRows { x: a, .. } => vec![*a],
            PlanOp::ConcatCols(parts) => parts.clone(),
        }
    }
}

/// One node of a [`Plan`].
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// The op and its structural constants.
    pub op: PlanOp,
    /// The shape the tape recorded — or, for symbolically built plans,
    /// the shape the author *claims*. `None` for symbolic non-leaf
    /// nodes whose shape is left to inference.
    pub shape: Option<(usize, usize)>,
    /// Whether every element of the recorded value was finite. Always
    /// `true` for symbolic plans (there is no data to inspect).
    pub finite: bool,
}

/// A data-free snapshot of a computation tape.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Nodes in tape order; an op's inputs always precede it.
    pub nodes: Vec<PlanNode>,
}

impl Plan {
    /// Empty plan (for symbolic construction).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Append a leaf with a declared shape; returns its node id.
    pub fn leaf(&mut self, rows: usize, cols: usize) -> usize {
        self.push(PlanOp::Leaf, Some((rows, cols)))
    }

    /// Append an op; returns its node id. Inputs must refer to earlier
    /// nodes (tape order), which is asserted here so analysis passes
    /// can rely on it.
    pub fn push(&mut self, op: PlanOp, shape: Option<(usize, usize)>) -> usize {
        let id = self.nodes.len();
        for input in op.inputs() {
            assert!(input < id, "plan op inputs must precede the op (input {input} >= {id})");
        }
        self.nodes.push(PlanNode { op, shape, finite: true });
        id
    }

    /// The op chain that produced `node`: the node itself followed by
    /// its ancestors in reverse-discovery order, capped at `limit`
    /// entries. This is what diagnostics print so a shape violation
    /// deep in a 5k-node training tape is traceable to its leaves.
    pub fn provenance(&self, node: usize, limit: usize) -> Vec<usize> {
        let mut chain = Vec::new();
        let mut stack = vec![node];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(id) = stack.pop() {
            if id >= self.nodes.len() || seen[id] {
                continue;
            }
            seen[id] = true;
            chain.push(id);
            if chain.len() >= limit {
                break;
            }
            let mut inputs = self.nodes[id].op.inputs();
            inputs.reverse();
            stack.extend(inputs);
        }
        chain
    }
}

impl Graph {
    /// Export the recorded tape as a data-free [`Plan`]. Shapes are
    /// the actual recorded shapes; `finite` reflects whether each
    /// node's value contained only finite elements at record time
    /// (the release-mode counterpart of the tape's debug-only
    /// `all_finite` assert, and the input to the analyzer's NaN
    /// provenance pass).
    pub fn plan(&self) -> Plan {
        Plan { nodes: (0..self.len()).map(|i| self.plan_node(i)).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn graph_plan_mirrors_tape_structure() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let w = g.input(Matrix::from_rows(&[&[0.5], &[-1.0]]));
        let y = g.matmul(x, w);
        let loss = g.sq_frobenius(y);
        let plan = g.plan();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.nodes[x.index()].op, PlanOp::Leaf);
        assert_eq!(plan.nodes[y.index()].op, PlanOp::MatMul(x.index(), w.index()));
        assert_eq!(plan.nodes[y.index()].shape, Some((1, 1)));
        assert_eq!(plan.nodes[loss.index()].op, PlanOp::SqFrobenius(y.index()));
        assert!(plan.nodes.iter().all(|n| n.finite));
    }

    #[test]
    fn plan_records_mask_structure() {
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(2, 3));
        let mask = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 0.0, 0.0]]);
        let s = g.masked_softmax_rows(x, &mask);
        let plan = g.plan();
        match &plan.nodes[s.index()].op {
            PlanOp::MaskedSoftmaxRows { x: xi, mask_shape, fully_masked_rows } => {
                assert_eq!(*xi, x.index());
                assert_eq!(*mask_shape, (2, 3));
                assert_eq!(*fully_masked_rows, 1);
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn provenance_walks_ancestors_first() {
        let mut g = Graph::new();
        let a = g.input(Matrix::scalar(1.0));
        let b = g.input(Matrix::scalar(2.0));
        let s = g.add(a, b);
        let t = g.tanh(s);
        let plan = g.plan();
        let chain = plan.provenance(t.index(), 10);
        assert_eq!(chain, vec![t.index(), s.index(), a.index(), b.index()]);
        assert_eq!(plan.provenance(t.index(), 2).len(), 2);
    }

    #[test]
    #[should_panic(expected = "inputs must precede")]
    fn symbolic_plan_rejects_forward_references() {
        let mut p = Plan::new();
        p.push(PlanOp::Relu(3), None);
    }
}
