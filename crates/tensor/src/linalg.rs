//! Direct linear solvers.
//!
//! The anchored LR of §III-D (Eq. 5) and the ridge/OLS baselines have
//! closed-form solutions `(XᵀX + λI) β = Xᵀy`; the left-hand side is
//! symmetric positive definite for λ > 0, so a Cholesky factorization is
//! the right tool. A partial-pivoting LU solver is provided for the few
//! places (ARIMA's AR initialization) that need a general square solve.

use crate::matrix::Matrix;

/// Error from a direct solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix was not (numerically) positive definite.
    NotPositiveDefinite,
    /// Matrix was singular to working precision.
    Singular,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix. Returns the lower-triangular factor.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "cholesky: matrix must be square");
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solve `A x = b` for symmetric positive-definite `A` via Cholesky.
/// `b` may have multiple right-hand-side columns.
pub fn solve_spd(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let l = cholesky(a)?;
    // Forward substitution L y = b, then back substitution Lᵀ x = y.
    let n = a.rows();
    let m = b.cols();
    assert_eq!(b.rows(), n, "solve_spd: rhs row mismatch");
    let mut x = b.clone();
    for col in 0..m {
        for i in 0..n {
            let mut v = x[(i, col)];
            for k in 0..i {
                v -= l[(i, k)] * x[(k, col)];
            }
            x[(i, col)] = v / l[(i, i)];
        }
        for i in (0..n).rev() {
            let mut v = x[(i, col)];
            for k in (i + 1)..n {
                v -= l[(k, i)] * x[(k, col)];
            }
            x[(i, col)] = v / l[(i, i)];
        }
    }
    Ok(x)
}

/// Solve the ridge normal equations `(XᵀX + λI) β = Xᵀ y`.
///
/// `lambda = 0` is allowed but may fail with
/// [`LinalgError::NotPositiveDefinite`] on rank-deficient designs; the
/// callers that need plain OLS on well-conditioned data pass 0, all
/// model-fitting paths pass λ > 0.
pub fn ridge_solve(x: &Matrix, y: &Matrix, lambda: f64) -> Result<Matrix, LinalgError> {
    assert!(lambda >= 0.0, "ridge_solve: negative lambda");
    let xt = x.t();
    let mut gram = xt.matmul(x);
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    let rhs = xt.matmul(y);
    solve_spd(&gram, &rhs)
}

/// Solve `A x = b` for general square `A` by Gaussian elimination with
/// partial pivoting.
pub fn solve_lu(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "solve_lu: matrix must be square");
    assert_eq!(b.rows(), n, "solve_lu: rhs row mismatch");
    let mut aug = a.clone();
    let mut x = b.clone();
    let m = b.cols();
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = aug[(col, col)].abs();
        for r in (col + 1)..n {
            if aug[(r, col)].abs() > best {
                best = aug[(r, col)].abs();
                piv = r;
            }
        }
        if best < 1e-12 {
            return Err(LinalgError::Singular);
        }
        if piv != col {
            for c in 0..n {
                let tmp = aug[(col, c)];
                aug[(col, c)] = aug[(piv, c)];
                aug[(piv, c)] = tmp;
            }
            for c in 0..m {
                let tmp = x[(col, c)];
                x[(col, c)] = x[(piv, c)];
                x[(piv, c)] = tmp;
            }
        }
        for r in (col + 1)..n {
            let f = aug[(r, col)] / aug[(col, col)];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                aug[(r, c)] -= f * aug[(col, c)];
            }
            for c in 0..m {
                x[(r, c)] -= f * x[(col, c)];
            }
        }
    }
    // Back substitution.
    for col in 0..m {
        for i in (0..n).rev() {
            let mut v = x[(i, col)];
            for k in (i + 1)..n {
                v -= aug[(i, k)] * x[(k, col)];
            }
            x[(i, col)] = v / aug[(i, i)];
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.5], &[0.6, 1.5, 3.0]])
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd_example();
        let l = cholesky(&a).unwrap();
        let back = l.matmul(&l.t());
        assert!(back.max_abs_diff(&a) < 1e-12);
        // L is lower triangular.
        assert_eq!(l[(0, 1)], 0.0);
        assert_eq!(l[(0, 2)], 0.0);
        assert_eq!(l[(1, 2)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky(&a).unwrap_err(), LinalgError::NotPositiveDefinite);
    }

    #[test]
    fn solve_spd_roundtrip() {
        let a = spd_example();
        let x_true = Matrix::from_rows(&[&[1.0], &[-2.0], &[0.5]]);
        let b = a.matmul(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    fn solve_spd_multi_rhs() {
        let a = spd_example();
        let x_true = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[3.0, -1.0]]);
        let b = a.matmul(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    fn ridge_shrinks_toward_zero() {
        // y = 2x exactly; ridge with large lambda shrinks the slope.
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = Matrix::from_rows(&[&[2.0], &[4.0], &[6.0]]);
        let b0 = ridge_solve(&x, &y, 0.0).unwrap();
        let b_big = ridge_solve(&x, &y, 100.0).unwrap();
        assert!((b0[(0, 0)] - 2.0).abs() < 1e-10);
        assert!(b_big[(0, 0)].abs() < b0[(0, 0)].abs());
        assert!(b_big[(0, 0)] > 0.0);
    }

    #[test]
    fn ridge_known_shrinkage() {
        // With X = [1;1;1...] (n ones) and y = c, beta = n*c / (n + lambda).
        let n = 5;
        let x = Matrix::ones(n, 1);
        let y = Matrix::full(n, 1, 3.0);
        let b = ridge_solve(&x, &y, 5.0).unwrap();
        assert!((b[(0, 0)] - (5.0 * 3.0) / (5.0 + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn lu_solves_general_system() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -2.0, -3.0], &[-1.0, 1.0, 2.0]]);
        let x_true = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let b = a.matmul(&x_true);
        let x = solve_lu(&a, &b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0]]);
        assert_eq!(solve_lu(&a, &b).unwrap_err(), LinalgError::Singular);
    }
}
