//! First-order optimizers over flat parameter lists.
//!
//! The paper optimizes both the master objective Γ_master (Eq. 11) and
//! every neural baseline with Adam (Kingma & Ba, cited as [18]);
//! plain SGD is kept for tests and ablations. Parameters are a
//! `&mut [Matrix]` owned by the model; the optimizer holds per-parameter
//! moment state aligned by position, so a model must always pass its
//! parameters in the same order.

use crate::matrix::Matrix;

/// A serializable snapshot of an [`Adam`] optimizer's internal state,
/// used by training checkpoints to resume a run bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Steps taken so far.
    pub t: u64,
    /// First-moment estimates, positionally aligned with the params.
    pub m: Vec<Matrix>,
    /// Second-moment estimates, positionally aligned with the params.
    pub v: Vec<Matrix>,
}

/// Adam optimizer with bias-corrected first and second moments.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate α.
    pub lr: f64,
    /// Exponential decay for the first moment (default 0.9).
    pub beta1: f64,
    /// Exponential decay for the second moment (default 0.999).
    pub beta2: f64,
    /// Numerical fuzz (default 1e-8).
    pub eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the standard (0.9, 0.999, 1e-8) hyperparameters.
    pub fn new(lr: f64) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the moment buffers and step counter for checkpointing.
    pub fn export_state(&self) -> AdamState {
        AdamState { t: self.t, m: self.m.clone(), v: self.v.clone() }
    }

    /// Restore a snapshot taken with [`Self::export_state`]. Subsequent
    /// [`Self::step`] calls continue the original trajectory exactly.
    pub fn restore_state(&mut self, state: AdamState) {
        assert_eq!(state.m.len(), state.v.len(), "Adam::restore_state: m/v length mismatch");
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }

    /// Apply one update. `params` and `grads` must be positionally
    /// aligned and keep the same shapes across calls.
    ///
    /// # Panics
    /// Panics on length or shape mismatch with the first call.
    pub fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "Adam::step: params/grads length mismatch");
        if self.m.is_empty() {
            self.m = params.iter().map(|p| Matrix::zeros(p.rows(), p.cols())).collect();
            self.v = self.m.clone();
        }
        assert_eq!(self.m.len(), params.len(), "Adam::step: parameter count changed between steps");
        self.t += 1;
        let t = self.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for ((p, g), (m, v)) in params.iter_mut().zip(grads).zip(self.m.iter_mut().zip(&mut self.v))
        {
            assert_eq!(p.shape(), g.shape(), "Adam::step: gradient shape mismatch");
            for ((pi, &gi), (mi, vi)) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *pi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent, optionally with momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Momentum-free SGD.
    pub fn new(lr: f64) -> Self {
        Self { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }

    /// Apply one update (see [`Adam::step`] for the alignment contract).
    pub fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "Sgd::step: params/grads length mismatch");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                p.add_scaled_assign(g, -self.lr);
            }
            return;
        }
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| Matrix::zeros(p.rows(), p.cols())).collect();
        }
        for ((p, g), vel) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *vel = vel.scale(self.momentum).add(g);
            p.add_scaled_assign(vel, -self.lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimize f(w) = ||w - target||^2 and check convergence.
    fn quadratic_descent(optimizer: &mut dyn FnMut(&mut [Matrix], &[Matrix]), steps: usize) -> f64 {
        let target = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]);
        let mut params = vec![Matrix::zeros(2, 2)];
        for _ in 0..steps {
            let mut g = Graph::new();
            let w = g.input(params[0].clone());
            let t = g.input(target.clone());
            let d = g.sub(w, t);
            let loss = g.sq_frobenius(d);
            let grads = g.backward(loss);
            let gw = grads.get(w);
            optimizer(&mut params, &[gw]);
        }
        params[0].max_abs_diff(&target)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.1);
        let err = quadratic_descent(&mut |p, g| adam.step(p, g), 500);
        assert!(err < 1e-3, "Adam residual {err}");
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let err = quadratic_descent(&mut |p, g| sgd.step(p, g), 200);
        assert!(err < 1e-6, "SGD residual {err}");
    }

    #[test]
    fn momentum_sgd_converges() {
        let mut sgd = Sgd::with_momentum(0.05, 0.9);
        let err = quadratic_descent(&mut |p, g| sgd.step(p, g), 300);
        assert!(err < 1e-6, "momentum SGD residual {err}");
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // On the first step Adam moves by ~lr regardless of gradient
        // magnitude (bias correction makes m_hat/sqrt(v_hat) = sign(g)).
        let mut adam = Adam::new(0.01);
        let mut params = vec![Matrix::scalar(0.0)];
        let grads = vec![Matrix::scalar(1e6)];
        adam.step(&mut params, &grads);
        assert!((params[0].item() + 0.01).abs() < 1e-9);
    }

    #[test]
    fn adam_state_round_trip_resumes_trajectory() {
        // Run 300 steps straight through, and 150 + snapshot/restore +
        // 150; the final parameters must match bit for bit.
        let run = |split: Option<usize>| {
            let target = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]);
            let mut adam = Adam::new(0.1);
            let mut params = vec![Matrix::zeros(2, 2)];
            for step in 0..300 {
                if split == Some(step) {
                    let snap = adam.export_state();
                    adam = Adam::new(0.1);
                    adam.restore_state(snap);
                }
                let mut g = Graph::new();
                let w = g.input(params[0].clone());
                let t = g.input(target.clone());
                let d = g.sub(w, t);
                let loss = g.sq_frobenius(d);
                let grads = g.backward(loss);
                let gw = grads.get(w);
                adam.step(&mut params, &[gw]);
            }
            params.remove(0)
        };
        let straight = run(None);
        let resumed = run(Some(150));
        assert_eq!(straight.as_slice(), resumed.as_slice());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn adam_rejects_misaligned_grads() {
        let mut adam = Adam::new(0.01);
        let mut params = vec![Matrix::scalar(0.0)];
        adam.step(&mut params, &[]);
    }
}
