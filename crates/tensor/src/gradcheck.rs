//! Finite-difference gradient checking.
//!
//! Every op in [`crate::graph`] is verified against central differences
//! in this module's test suite, and downstream crates (GAT layers, LSTM
//! cells, the AMS master objective) reuse [`check_gradients`] in their
//! own tests. This is the correctness anchor for the whole autodiff
//! substrate: a VJP bug anywhere shows up as a large relative error
//! here.

use std::sync::Arc;

use ams_runtime::Backend;

use crate::graph::{Graph, Var};
use crate::matrix::Matrix;

/// A differentiable scalar function of a list of parameter matrices:
/// given the parameter values, build a graph and return it together with
/// the leaf [`Var`]s corresponding to each parameter and the 1×1 loss.
pub type ScalarFn<'a> = &'a dyn Fn(&mut Graph, &[Var]) -> Var;

/// Evaluate `f` at `params` on `backend`, returning the scalar loss.
fn eval(f: ScalarFn, params: &[Matrix], backend: &Arc<dyn Backend>) -> f64 {
    let mut g = Graph::with_backend(Arc::clone(backend));
    let vars: Vec<Var> = params.iter().map(|p| g.input(p.clone())).collect();
    let loss = f(&mut g, &vars);
    g.value(loss).item()
}

/// Numerical gradient of `f` by central differences with step `eps`.
pub fn numeric_gradients(f: ScalarFn, params: &[Matrix], eps: f64) -> Vec<Matrix> {
    numeric_gradients_with(f, params, eps, &ams_runtime::seq())
}

/// [`numeric_gradients`] evaluated on an explicit backend.
pub fn numeric_gradients_with(
    f: ScalarFn,
    params: &[Matrix],
    eps: f64,
    backend: &Arc<dyn Backend>,
) -> Vec<Matrix> {
    let mut grads = Vec::with_capacity(params.len());
    for pi in 0..params.len() {
        let mut grad = Matrix::zeros(params[pi].rows(), params[pi].cols());
        for idx in 0..params[pi].len() {
            let mut plus = params.to_vec();
            plus[pi].as_mut_slice()[idx] += eps;
            let mut minus = params.to_vec();
            minus[pi].as_mut_slice()[idx] -= eps;
            grad.as_mut_slice()[idx] =
                (eval(f, &plus, backend) - eval(f, &minus, backend)) / (2.0 * eps);
        }
        grads.push(grad);
    }
    grads
}

/// Analytic (reverse-mode) gradient of `f` at `params`.
pub fn analytic_gradients(f: ScalarFn, params: &[Matrix]) -> Vec<Matrix> {
    analytic_gradients_with(f, params, &ams_runtime::seq())
}

/// [`analytic_gradients`] evaluated on an explicit backend.
pub fn analytic_gradients_with(
    f: ScalarFn,
    params: &[Matrix],
    backend: &Arc<dyn Backend>,
) -> Vec<Matrix> {
    let mut g = Graph::with_backend(Arc::clone(backend));
    let vars: Vec<Var> = params.iter().map(|p| g.input(p.clone())).collect();
    let loss = f(&mut g, &vars);
    let grads = g.backward(loss);
    vars.iter().map(|&v| grads.get(v)).collect()
}

/// Compare analytic and numeric gradients; returns the worst relative
/// error `|a − n| / max(1, |a|, |n|)` over all parameter entries.
pub fn max_relative_error(f: ScalarFn, params: &[Matrix], eps: f64) -> f64 {
    max_relative_error_with(f, params, eps, &ams_runtime::seq())
}

/// [`max_relative_error`] with both sweeps running on `backend`.
pub fn max_relative_error_with(
    f: ScalarFn,
    params: &[Matrix],
    eps: f64,
    backend: &Arc<dyn Backend>,
) -> f64 {
    let analytic = analytic_gradients_with(f, params, backend);
    let numeric = numeric_gradients_with(f, params, eps, backend);
    let mut worst: f64 = 0.0;
    for (a, n) in analytic.iter().zip(&numeric) {
        for (&av, &nv) in a.as_slice().iter().zip(n.as_slice()) {
            let denom = 1.0f64.max(av.abs()).max(nv.abs());
            worst = worst.max((av - nv).abs() / denom);
        }
    }
    worst
}

/// Assert that the analytic gradient of `f` matches finite differences
/// to within `tol` relative error.
///
/// # Panics
/// Panics (test-style) when the tolerance is exceeded.
pub fn check_gradients(f: ScalarFn, params: &[Matrix], tol: f64) {
    let err = max_relative_error(f, params, 1e-5);
    assert!(err < tol, "gradient check failed: max relative error {err:.3e} >= tol {tol:.1e}");
}

/// [`check_gradients`] with every graph evaluation on `backend` — used
/// to pin that the parallel backend differentiates identically to the
/// sequential reference.
pub fn check_gradients_with(f: ScalarFn, params: &[Matrix], tol: f64, backend: &Arc<dyn Backend>) {
    let err = max_relative_error_with(f, params, 1e-5, backend);
    assert!(
        err < tol,
        "gradient check failed on {}: max relative error {err:.3e} >= tol {tol:.1e}",
        backend.name()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{dropout_mask, he_uniform, xavier_uniform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-6;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn check_matmul_chain() {
        let mut r = rng();
        let params = vec![xavier_uniform(3, 4, &mut r), xavier_uniform(4, 2, &mut r)];
        check_gradients(
            &|g, vars| {
                let y = g.matmul(vars[0], vars[1]);
                g.sq_frobenius(y)
            },
            &params,
            TOL,
        );
    }

    #[test]
    fn check_elementwise_ops() {
        let mut r = rng();
        let params = vec![xavier_uniform(3, 3, &mut r), xavier_uniform(3, 3, &mut r)];
        check_gradients(
            &|g, vars| {
                let s = g.add(vars[0], vars[1]);
                let d = g.sub(vars[0], vars[1]);
                let p = g.mul(s, d);
                let a = g.affine(p, 1.5, -0.25);
                g.sq_frobenius(a)
            },
            &params,
            TOL,
        );
    }

    #[test]
    fn check_activations() {
        let mut r = rng();
        // Offset away from 0 so ReLU's kink doesn't poison the FD check.
        let base = xavier_uniform(4, 4, &mut r).map(|x| if x.abs() < 0.05 { x + 0.1 } else { x });
        for act in 0..4 {
            let params = vec![base.clone()];
            check_gradients(
                &move |g, vars| {
                    let y = match act {
                        0 => g.relu(vars[0]),
                        1 => g.leaky_relu(vars[0], 0.2),
                        2 => g.sigmoid(vars[0]),
                        _ => g.tanh(vars[0]),
                    };
                    g.sq_frobenius(y)
                },
                &params,
                TOL,
            );
        }
    }

    #[test]
    fn check_bias_broadcast_and_mean() {
        let mut r = rng();
        let params = vec![xavier_uniform(5, 3, &mut r), xavier_uniform(1, 3, &mut r)];
        check_gradients(
            &|g, vars| {
                let y = g.add_row_broadcast(vars[0], vars[1]);
                let t = g.tanh(y);
                g.mean_all(t)
            },
            &params,
            TOL,
        );
    }

    #[test]
    fn check_masked_softmax() {
        let mut r = rng();
        let params = vec![xavier_uniform(4, 4, &mut r)];
        let mask = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0, 1.0],
        ]);
        let weights = xavier_uniform(4, 4, &mut r);
        check_gradients(
            &move |g, vars| {
                let sm = g.masked_softmax_rows(vars[0], &mask);
                let w = g.input(weights.clone());
                let y = g.mul(sm, w);
                g.sum_all(y)
            },
            &params,
            TOL,
        );
    }

    #[test]
    fn check_outer_sum_attention_pattern() {
        // The exact computation pattern GAT uses for logits.
        let mut r = rng();
        let params = vec![
            xavier_uniform(4, 3, &mut r), // node features
            xavier_uniform(3, 1, &mut r), // a_left
            xavier_uniform(3, 1, &mut r), // a_right
        ];
        let mask = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0, 0.0],
            &[0.0, 1.0, 1.0, 1.0],
            &[0.0, 0.0, 1.0, 1.0],
        ]);
        check_gradients(
            &move |g, vars| {
                let sl = g.matmul(vars[0], vars[1]);
                let sr = g.matmul(vars[0], vars[2]);
                let e = g.outer_sum(sl, sr);
                let e = g.leaky_relu(e, 0.2);
                let a = g.masked_softmax_rows(e, &mask);
                let h = g.matmul(a, vars[0]);
                g.sq_frobenius(h)
            },
            &params,
            TOL,
        );
    }

    #[test]
    fn check_rowwise_dot_and_select() {
        let mut r = rng();
        let params = vec![xavier_uniform(5, 4, &mut r), xavier_uniform(5, 4, &mut r)];
        check_gradients(
            &|g, vars| {
                let d = g.rowwise_dot(vars[0], vars[1]);
                let s = g.select_rows(d, &[0, 2, 2, 4]);
                g.sq_frobenius(s)
            },
            &params,
            TOL,
        );
    }

    #[test]
    fn check_concat_and_mse() {
        let mut r = rng();
        let params = vec![xavier_uniform(3, 2, &mut r), xavier_uniform(3, 3, &mut r)];
        let target = xavier_uniform(3, 5, &mut r);
        check_gradients(
            &move |g, vars| {
                let c = g.concat_cols(&[vars[0], vars[1]]);
                let t = g.input(target.clone());
                g.mse(c, t)
            },
            &params,
            TOL,
        );
    }

    #[test]
    fn check_dropout_is_linear() {
        let mut r = rng();
        let params = vec![he_uniform(4, 4, &mut r)];
        let mask = dropout_mask(4, 4, 0.5, &mut r);
        check_gradients(
            &move |g, vars| {
                let d = g.dropout(vars[0], &mask);
                g.sq_frobenius(d)
            },
            &params,
            TOL,
        );
    }

    #[test]
    fn check_transpose_chain() {
        let mut r = rng();
        let params = vec![xavier_uniform(3, 5, &mut r)];
        check_gradients(
            &|g, vars| {
                let t = g.transpose(vars[0]);
                let y = g.matmul(t, vars[0]);
                g.sum_all(y)
            },
            &params,
            TOL,
        );
    }

    #[test]
    fn check_log_div_clamp() {
        let mut r = rng();
        // Positive, bounded away from the clamp threshold so the FD
        // probe never crosses the kink.
        let a = xavier_uniform(3, 3, &mut r).map(|x| x.abs() + 0.5);
        let b = xavier_uniform(3, 3, &mut r).map(|x| x.abs() + 0.5);
        check_gradients(
            &|g, vars| {
                let c = g.clamp_min(vars[1], 1e-3);
                let q = g.div(vars[0], c);
                let l = g.log(q);
                g.sq_frobenius(l)
            },
            &[a, b],
            TOL,
        );
    }

    #[test]
    fn check_gat_composite_end_to_end() {
        // The full attention-layer op mix in one scalar objective:
        // outer_sum → leaky_relu → masked softmax → aggregation,
        // concatenated across two heads with eval-mode (identity)
        // dropout in between. Each op has a unit check above; this
        // verifies the *composition* — the configuration the AMS
        // master actually differentiates through.
        let mut r = rng();
        let params = vec![
            xavier_uniform(4, 3, &mut r), // node features
            xavier_uniform(3, 2, &mut r), // head-1 W
            xavier_uniform(2, 1, &mut r), // head-1 a_left
            xavier_uniform(2, 1, &mut r), // head-1 a_right
            xavier_uniform(3, 2, &mut r), // head-2 W
            xavier_uniform(2, 1, &mut r), // head-2 a_left
            xavier_uniform(2, 1, &mut r), // head-2 a_right
        ];
        let mask = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0, 0.0],
            &[0.0, 1.0, 1.0, 1.0],
            &[0.0, 0.0, 1.0, 1.0],
        ]);
        // Eval-mode dropout: rate 0 ⇒ an all-ones mask, so the op is
        // recorded on the tape but must behave as the identity.
        let eval_mask = dropout_mask(4, 2, 0.0, &mut r);
        assert!(eval_mask.as_slice().iter().all(|&m| m == 1.0));
        check_gradients(
            &move |g, vars| {
                let mut heads = Vec::new();
                for h in 0..2 {
                    let wx = g.matmul(vars[0], vars[1 + 3 * h]);
                    let sl = g.matmul(wx, vars[2 + 3 * h]);
                    let sr = g.matmul(wx, vars[3 + 3 * h]);
                    let e = g.outer_sum(sl, sr);
                    let e = g.leaky_relu(e, 0.2);
                    let attn = g.masked_softmax_rows(e, &mask);
                    let agg = g.matmul(attn, wx);
                    let agg = g.dropout(agg, &eval_mask);
                    heads.push(g.relu(agg));
                }
                let cat = g.concat_cols(&heads);
                g.sq_frobenius(cat)
            },
            &params,
            1e-5,
        );
    }

    #[test]
    fn eval_mode_dropout_is_identity() {
        let mut r = rng();
        let mut g = Graph::new();
        let x0 = xavier_uniform(3, 4, &mut r);
        let x = g.input(x0.clone());
        let m = dropout_mask(3, 4, 0.0, &mut r);
        let y = g.dropout(x, &m);
        assert_eq!(g.value(y).as_slice(), x0.as_slice());
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert!(grads.get(x).max_abs_diff(&Matrix::ones(3, 4)) < 1e-15);
    }

    #[test]
    fn check_matmul_chain_on_par_backend() {
        // Same composite as `check_matmul_chain`, with every forward
        // and backward sweep on the row-parallel backend: gradients
        // must agree with finite differences (and, being bit-identical
        // to Seq by construction, with the sequential check).
        let par: Arc<dyn Backend> = Arc::new(ams_runtime::Par::new(4));
        let mut r = rng();
        let params = vec![xavier_uniform(3, 4, &mut r), xavier_uniform(4, 2, &mut r)];
        check_gradients_with(
            &|g, vars| {
                let y = g.matmul(vars[0], vars[1]);
                g.sq_frobenius(y)
            },
            &params,
            TOL,
            &par,
        );
        // Analytic gradients on Par are bit-identical to Seq.
        let f: ScalarFn = &|g, vars| {
            let y = g.matmul(vars[0], vars[1]);
            g.sq_frobenius(y)
        };
        let seq_grads = analytic_gradients(f, &params);
        let par_grads = analytic_gradients_with(f, &params, &par);
        for (s, p) in seq_grads.iter().zip(&par_grads) {
            for (sv, pv) in s.as_slice().iter().zip(p.as_slice()) {
                assert_eq!(sv.to_bits(), pv.to_bits());
            }
        }
    }

    #[test]
    fn numeric_gradient_of_known_function() {
        // f(w) = sum(w^2) → df/dw = 2w exactly; FD should agree closely.
        let params = vec![Matrix::from_rows(&[&[1.0, -2.0, 0.5]])];
        let numeric = numeric_gradients(&|g, vars| g.sq_frobenius(vars[0]), &params, 1e-5);
        let expected = params[0].scale(2.0);
        assert!(numeric[0].max_abs_diff(&expected) < 1e-8);
    }
}
