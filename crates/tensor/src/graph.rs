//! Tape-based reverse-mode automatic differentiation.
//!
//! This is the substrate that replaces the paper's PaddlePaddle: a
//! dynamically built computation graph over [`Matrix`] values with
//! explicit vector–Jacobian products for every operation. The graph is
//! rebuilt on every forward pass (define-by-run), which keeps recurrent
//! models (LSTM/GRU over k=4 quarters) and the per-fold AMS training
//! loop straightforward.
//!
//! Typical usage:
//! ```
//! use ams_tensor::{Graph, Matrix};
//! let mut g = Graph::new();
//! let x = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let w = g.input(Matrix::from_rows(&[&[0.5], &[-1.0]]));
//! let y = g.matmul(x, w);
//! let loss = g.sq_frobenius(y);
//! let grads = g.backward(loss);
//! assert_eq!(grads.get(w).rows(), 2);
//! ```

use std::rc::Rc;
use std::sync::Arc;

use ams_runtime::{kernels, Backend, Workspace};

use crate::matrix::Matrix;
use crate::plan::{PlanNode, PlanOp};

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// Raw node index (stable for the life of the graph).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Operations recorded on the tape. Each variant stores the input
/// handles plus whatever constant data its VJP needs.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf: an input or parameter.
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    /// Element-wise (Hadamard) product.
    Mul(Var, Var),
    /// Element-wise division `a / b`.
    Div(Var, Var),
    MatMul(Var, Var),
    /// `a * x + b` applied element-wise; only the multiplier matters
    /// for the VJP, so it alone is stored.
    Affine(Var, f64),
    Relu(Var),
    LeakyRelu(Var, f64),
    Sigmoid(Var),
    Tanh(Var),
    /// Natural logarithm, element-wise.
    Log(Var),
    /// `max(x, lo)` element-wise — the numerical guard the analyzer
    /// expects in front of `log`/`div` (see `ams-analyze`).
    ClampMin(Var, f64),
    Transpose(Var),
    /// `(n×d) + (1×d)` bias-style broadcast over rows.
    AddRowBroadcast(Var, Var),
    /// `out[i][j] = u[i] + v[j]` from column vectors `u (n×1)`, `v (m×1)`.
    /// This is the pairwise attention-logit construction of GAT.
    OuterSum(Var, Var),
    /// Row-wise softmax restricted to positions where `mask != 0`;
    /// masked positions output exactly 0.
    MaskedSoftmaxRows(Var, Rc<Matrix>),
    /// Horizontal concatenation of equal-row-count inputs.
    ConcatCols(Vec<Var>),
    SumAll(Var),
    MeanAll(Var),
    /// Mean squared error between two same-shape matrices → 1×1.
    Mse(Var, Var),
    /// `out[i] = dot(a.row(i), b.row(i))` → n×1. This evaluates every
    /// slave-LR at once: `ÛR_i = X_iᵀ β_v(X_i)` (Eq. 6).
    RowwiseDot(Var, Var),
    /// Select rows by index (repetition allowed); gradient scatter-adds.
    SelectRows(Var, Rc<Vec<usize>>),
    /// Element-wise multiply by a fixed (inverted-dropout) mask.
    Dropout(Var, Rc<Matrix>),
    /// Squared Frobenius norm → 1×1 (the `‖·‖²` regularizers of Eq. 11).
    SqFrobenius(Var),
}

struct Node {
    op: Op,
    value: Matrix,
}

/// Gradients produced by [`Graph::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
    shapes: Vec<(usize, usize)>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `var`. Zero matrix when the variable
    /// did not influence the loss.
    pub fn get(&self, var: Var) -> Matrix {
        match &self.grads[var.0] {
            Some(g) => g.clone(),
            None => {
                let (r, c) = self.shapes[var.0];
                Matrix::zeros(r, c)
            }
        }
    }

    /// Borrowed gradient, `None` when the variable is disconnected.
    pub fn get_ref(&self, var: Var) -> Option<&Matrix> {
        self.grads[var.0].as_ref()
    }
}

/// A define-by-run computation tape.
///
/// Heavy forward ops (matmul, masked softmax, row-wise dot) and the
/// matmul backward pass execute on the graph's [`Backend`]; output
/// buffers come from an internal [`Workspace`] so a tape that is
/// [`Graph::reset`] between iterations (the training epoch loop)
/// stops allocating once warm.
pub struct Graph {
    nodes: Vec<Node>,
    finite_checks: bool,
    backend: Arc<dyn Backend>,
    ws: Workspace,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Empty graph on the sequential reference backend.
    pub fn new() -> Self {
        Self::with_backend(ams_runtime::seq())
    }

    /// Empty graph executing on `backend`. Every backend produces
    /// bit-identical values (see `ams-runtime`), so this is purely an
    /// execution-policy choice.
    pub fn with_backend(backend: Arc<dyn Backend>) -> Self {
        Self { nodes: Vec::new(), finite_checks: false, backend, ws: Workspace::new() }
    }

    /// The graph's execution backend.
    pub fn backend(&self) -> Arc<dyn Backend> {
        Arc::clone(&self.backend)
    }

    /// Clear the tape, recycling node value buffers into the internal
    /// workspace. A define-by-run training loop calls this between
    /// iterations instead of building a fresh `Graph`, making later
    /// forward passes allocation-light.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.ws.give(node.value.into_vec());
        }
    }

    /// `(allocs, reuses)` of the internal workspace — lets tests pin
    /// the steady-state-no-allocation property of reset/re-run loops.
    pub fn workspace_counters(&self) -> (usize, usize) {
        self.ws.counters()
    }

    /// Opt into checking every recorded value for NaN/∞ at record time,
    /// in release builds too. Debug builds always check (the historical
    /// `debug_assert`); enabling this lets a release training run get
    /// NaN provenance — the panic names the op that first produced a
    /// non-finite value — without rebuilding in debug.
    pub fn set_finite_checks(&mut self, enabled: bool) {
        self.finite_checks = enabled;
    }

    /// Whether opt-in finite checks are enabled.
    pub fn finite_checks(&self) -> bool {
        self.finite_checks
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current value of a node.
    pub fn value(&self, var: Var) -> &Matrix {
        &self.nodes[var.0].value
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        if self.finite_checks {
            assert!(value.all_finite(), "non-finite value produced by {op:?}");
        } else {
            debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        }
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Record a leaf holding `value` (an input or a parameter snapshot).
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value)
    }

    /// `a + b` (same shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(Op::Add(a, b), v)
    }

    /// `a - b` (same shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(Op::Sub(a, b), v)
    }

    /// Element-wise product (same shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b));
        self.push(Op::Mul(a, b), v)
    }

    /// Element-wise division `a / b` (same shapes). The analyzer's
    /// numerical-risk pass expects the denominator to pass through
    /// [`Graph::clamp_min`] (or a bounded-positive activation) first.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip_with(self.value(b), |x, y| x / y);
        self.push(Op::Div(a, b), v)
    }

    /// Natural logarithm, element-wise. Inputs must be positive; guard
    /// with [`Graph::clamp_min`] when they are not positive by
    /// construction.
    pub fn log(&mut self, x: Var) -> Var {
        let v = self.value(x).map(f64::ln);
        self.push(Op::Log(x), v)
    }

    /// `max(x, lo)` element-wise — the clamp that makes `log`/`div`
    /// numerically safe.
    pub fn clamp_min(&mut self, x: Var, lo: f64) -> Var {
        let v = self.value(x).map(|e| e.max(lo));
        self.push(Op::ClampMin(x, lo), v)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, k) = self.nodes[a.0].value.shape();
        let (k2, n) = self.nodes[b.0].value.shape();
        assert_eq!(k, k2, "matmul: {m}x{k} * {k2}x{n} dimension mismatch");
        let mut data = self.ws.take(m * n);
        self.backend.matmul(
            self.nodes[a.0].value.as_slice(),
            self.nodes[b.0].value.as_slice(),
            &mut data,
            m,
            k,
            n,
        );
        let v = Matrix::from_vec(m, n, data);
        self.push(Op::MatMul(a, b), v)
    }

    /// `alpha * x + beta` element-wise.
    pub fn affine(&mut self, x: Var, alpha: f64, beta: f64) -> Var {
        let v = self.value(x).map(|e| alpha * e + beta);
        self.push(Op::Affine(x, alpha), v)
    }

    /// `x * alpha`.
    pub fn scale(&mut self, x: Var, alpha: f64) -> Var {
        self.affine(x, alpha, 0.0)
    }

    /// Rectified linear unit (the paper's φ for node transform and GAT).
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|e| e.max(0.0));
        self.push(Op::Relu(x), v)
    }

    /// Leaky ReLU with slope `alpha` on the negative side (used inside
    /// the GAT attention mechanism, following Veličković et al.).
    pub fn leaky_relu(&mut self, x: Var, alpha: f64) -> Var {
        let v = self.value(x).map(|e| if e > 0.0 { e } else { alpha * e });
        self.push(Op::LeakyRelu(x, alpha), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|e| 1.0 / (1.0 + (-e).exp()));
        self.push(Op::Sigmoid(x), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let v = self.value(x).map(f64::tanh);
        self.push(Op::Tanh(x), v)
    }

    /// Transpose.
    pub fn transpose(&mut self, x: Var) -> Var {
        let v = self.value(x).t();
        self.push(Op::Transpose(x), v)
    }

    /// `(n×d) + (1×d)` broadcast, the standard bias add.
    pub fn add_row_broadcast(&mut self, x: Var, bias: Var) -> Var {
        let (rows, cols) = self.nodes[x.0].value.shape();
        let bshape = self.nodes[bias.0].value.shape();
        assert_eq!(bshape.0, 1, "add_row_broadcast: bias must be a row vector");
        assert_eq!(bshape.1, cols, "add_row_broadcast: width mismatch");
        let mut data = self.ws.take(rows * cols);
        data.copy_from_slice(self.nodes[x.0].value.as_slice());
        kernels::add_bias_rows(&mut data, self.nodes[bias.0].value.as_slice(), rows, cols);
        let out = Matrix::from_vec(rows, cols, data);
        self.push(Op::AddRowBroadcast(x, bias), out)
    }

    /// `out[i][j] = u[i] + v[j]` from column vectors.
    pub fn outer_sum(&mut self, u: Var, v: Var) -> Var {
        let uv = self.value(u);
        let vv = self.value(v);
        assert_eq!(uv.cols(), 1, "outer_sum: u must be a column vector");
        assert_eq!(vv.cols(), 1, "outer_sum: v must be a column vector");
        let mut out = Matrix::zeros(uv.rows(), vv.rows());
        for i in 0..uv.rows() {
            for j in 0..vv.rows() {
                out[(i, j)] = uv[(i, 0)] + vv[(j, 0)];
            }
        }
        self.push(Op::OuterSum(u, v), out)
    }

    /// Row-wise softmax over the positions where `mask != 0`; masked
    /// positions are exactly zero in the output. A row whose mask is all
    /// zero stays all zero (an isolated graph node attends to nothing).
    pub fn masked_softmax_rows(&mut self, x: Var, mask: &Matrix) -> Var {
        let (rows, cols) = self.nodes[x.0].value.shape();
        assert_eq!((rows, cols), mask.shape(), "masked_softmax_rows: mask shape mismatch");
        let mut data = self.ws.take(rows * cols);
        self.backend.masked_softmax_rows(
            self.nodes[x.0].value.as_slice(),
            mask.as_slice(),
            &mut data,
            rows,
            cols,
        );
        let out = Matrix::from_vec(rows, cols, data);
        self.push(Op::MaskedSoftmaxRows(x, Rc::new(mask.clone())), out)
    }

    /// Horizontal concatenation (multi-head attention outputs, Eq. 3).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: empty input list");
        let mut v = self.value(parts[0]).clone();
        for p in &parts[1..] {
            v = v.hcat(self.value(*p));
        }
        self.push(Op::ConcatCols(parts.to_vec()), v)
    }

    /// Sum of all elements → 1×1.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let v = Matrix::scalar(self.value(x).sum());
        self.push(Op::SumAll(x), v)
    }

    /// Mean of all elements → 1×1.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let v = Matrix::scalar(self.value(x).sum() / self.value(x).len() as f64);
        self.push(Op::MeanAll(x), v)
    }

    /// Mean squared error between same-shape matrices → 1×1.
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let p = self.value(pred);
        let t = self.value(target);
        assert_eq!(p.shape(), t.shape(), "mse: shape mismatch");
        let v = p.sub(t).sq_frobenius() / p.len() as f64;
        self.push(Op::Mse(pred, target), Matrix::scalar(v))
    }

    /// Row-wise dot product of two `n×d` matrices → `n×1`.
    pub fn rowwise_dot(&mut self, a: Var, b: Var) -> Var {
        let (rows, cols) = self.nodes[a.0].value.shape();
        assert_eq!((rows, cols), self.nodes[b.0].value.shape(), "rowwise_dot: shape mismatch");
        let mut data = self.ws.take(rows);
        self.backend.rowwise_dot(
            self.nodes[a.0].value.as_slice(),
            self.nodes[b.0].value.as_slice(),
            &mut data,
            rows,
            cols,
        );
        let out = Matrix::from_vec(rows, 1, data);
        self.push(Op::RowwiseDot(a, b), out)
    }

    /// Select rows by index (repetition allowed).
    pub fn select_rows(&mut self, x: Var, ids: &[usize]) -> Var {
        let v = self.value(x).select_rows(ids);
        self.push(Op::SelectRows(x, Rc::new(ids.to_vec())), v)
    }

    /// Multiply by a fixed mask. Callers pass an inverted-dropout mask
    /// (entries `0` or `1/keep_prob`), built by
    /// [`crate::init::dropout_mask`].
    pub fn dropout(&mut self, x: Var, mask: &Matrix) -> Var {
        let v = self.value(x).hadamard(mask);
        self.push(Op::Dropout(x, Rc::new(mask.clone())), v)
    }

    /// Squared Frobenius norm → 1×1.
    pub fn sq_frobenius(&mut self, x: Var) -> Var {
        let v = Matrix::scalar(self.value(x).sq_frobenius());
        self.push(Op::SqFrobenius(x), v)
    }

    /// Reverse-mode sweep from `output` (which is seeded with an
    /// all-ones cotangent, so for the usual 1×1 loss the result is the
    /// plain gradient).
    pub fn backward(&mut self, output: Var) -> Gradients {
        let n = self.nodes.len();
        let mut grads: Vec<Option<Matrix>> = vec![None; n];
        let out_shape = self.value(output).shape();
        grads[output.0] = Some(Matrix::ones(out_shape.0, out_shape.1));

        for idx in (0..=output.0).rev() {
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            // Re-insert so callers can read intermediate gradients too.
            grads[idx] = Some(g.clone());
            let op = self.nodes[idx].op.clone();
            match op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    self.accumulate(&mut grads, a, g.clone());
                    self.accumulate(&mut grads, b, g);
                }
                Op::Sub(a, b) => {
                    self.accumulate(&mut grads, a, g.clone());
                    self.accumulate(&mut grads, b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let ga = g.hadamard(self.value(b));
                    let gb = g.hadamard(self.value(a));
                    self.accumulate(&mut grads, a, ga);
                    self.accumulate(&mut grads, b, gb);
                }
                Op::Div(a, b) => {
                    let ga = g.zip_with(self.value(b), |gi, bi| gi / bi);
                    let y = self.nodes[idx].value.clone();
                    // d/db (a/b) = -a/b² = -y/b.
                    let gb =
                        g.zip_with(&y, |gi, yi| gi * yi).zip_with(self.value(b), |gy, bi| -gy / bi);
                    self.accumulate(&mut grads, a, ga);
                    self.accumulate(&mut grads, b, gb);
                }
                Op::Log(a) => {
                    let gx = g.zip_with(self.value(a), |gi, xi| gi / xi);
                    self.accumulate(&mut grads, a, gx);
                }
                Op::ClampMin(a, lo) => {
                    let gx = g.zip_with(self.value(a), |gi, xi| if xi > lo { gi } else { 0.0 });
                    self.accumulate(&mut grads, a, gx);
                }
                Op::MatMul(a, b) => {
                    // Fused transpose products: B (k×n, row-major) is
                    // already the packed layout the transposed-B kernel
                    // wants for ga = g·Bᵀ, and gb = Aᵀ·g reads A columns
                    // directly — no transpose is materialized, and both
                    // keep the historical accumulation order bit-for-bit.
                    let (m, n) = g.shape();
                    let k = self.nodes[a.0].value.cols();
                    let mut ga = Matrix::zeros(m, k);
                    self.backend.matmul_transb(
                        g.as_slice(),
                        self.nodes[b.0].value.as_slice(),
                        ga.as_mut_slice(),
                        m,
                        n,
                        k,
                    );
                    let mut gb = Matrix::zeros(k, n);
                    self.backend.matmul_transa(
                        self.nodes[a.0].value.as_slice(),
                        g.as_slice(),
                        gb.as_mut_slice(),
                        m,
                        k,
                        n,
                    );
                    self.accumulate(&mut grads, a, ga);
                    self.accumulate(&mut grads, b, gb);
                }
                Op::Affine(a, alpha) => {
                    self.accumulate(&mut grads, a, g.scale(alpha));
                }
                Op::Relu(a) => {
                    let gx = g.zip_with(self.value(a), |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                    self.accumulate(&mut grads, a, gx);
                }
                Op::LeakyRelu(a, alpha) => {
                    let gx =
                        g.zip_with(self.value(a), |gi, xi| if xi > 0.0 { gi } else { alpha * gi });
                    self.accumulate(&mut grads, a, gx);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[idx].value;
                    let gx = g.zip_with(y, |gi, yi| gi * yi * (1.0 - yi));
                    self.accumulate(&mut grads, a, gx);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[idx].value;
                    let gx = g.zip_with(y, |gi, yi| gi * (1.0 - yi * yi));
                    self.accumulate(&mut grads, a, gx);
                }
                Op::Transpose(a) => {
                    self.accumulate(&mut grads, a, g.t());
                }
                Op::AddRowBroadcast(x, bias) => {
                    // d/dbias: column sums of g into a 1×d row.
                    let mut gb = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            gb[(0, c)] += g[(r, c)];
                        }
                    }
                    self.accumulate(&mut grads, x, g);
                    self.accumulate(&mut grads, bias, gb);
                }
                Op::OuterSum(u, v) => {
                    let mut gu = Matrix::zeros(g.rows(), 1);
                    let mut gv = Matrix::zeros(g.cols(), 1);
                    for i in 0..g.rows() {
                        for j in 0..g.cols() {
                            gu[(i, 0)] += g[(i, j)];
                            gv[(j, 0)] += g[(i, j)];
                        }
                    }
                    self.accumulate(&mut grads, u, gu);
                    self.accumulate(&mut grads, v, gv);
                }
                Op::MaskedSoftmaxRows(x, mask) => {
                    // Per row: gx = y ⊙ (g − Σ_k g_k y_k). Masked entries
                    // have y = 0, so they receive zero gradient.
                    let y = self.nodes[idx].value.clone();
                    let mut gx = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f64 = (0..y.cols()).map(|c| g[(r, c)] * y[(r, c)]).sum();
                        for c in 0..y.cols() {
                            if mask[(r, c)] != 0.0 {
                                gx[(r, c)] = y[(r, c)] * (g[(r, c)] - dot);
                            }
                        }
                    }
                    self.accumulate(&mut grads, x, gx);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let w = self.value(p).cols();
                        let mut gp = Matrix::zeros(g.rows(), w);
                        for r in 0..g.rows() {
                            gp.row_mut(r).copy_from_slice(&g.row(r)[offset..offset + w]);
                        }
                        offset += w;
                        self.accumulate(&mut grads, p, gp);
                    }
                }
                Op::SumAll(a) => {
                    let shape = self.value(a).shape();
                    self.accumulate(&mut grads, a, Matrix::full(shape.0, shape.1, g.item()));
                }
                Op::MeanAll(a) => {
                    let shape = self.value(a).shape();
                    let n = (shape.0 * shape.1) as f64;
                    self.accumulate(&mut grads, a, Matrix::full(shape.0, shape.1, g.item() / n));
                }
                Op::Mse(pred, target) => {
                    let p = self.value(pred);
                    let t = self.value(target);
                    let n = p.len() as f64;
                    let gp = p.sub(t).scale(2.0 * g.item() / n);
                    let gt = gp.scale(-1.0);
                    self.accumulate(&mut grads, pred, gp);
                    self.accumulate(&mut grads, target, gt);
                }
                Op::RowwiseDot(a, b) => {
                    let av = self.value(a).clone();
                    let bv = self.value(b).clone();
                    let mut ga = Matrix::zeros(av.rows(), av.cols());
                    let mut gb = Matrix::zeros(av.rows(), av.cols());
                    for r in 0..av.rows() {
                        let gr = g[(r, 0)];
                        for c in 0..av.cols() {
                            ga[(r, c)] = gr * bv[(r, c)];
                            gb[(r, c)] = gr * av[(r, c)];
                        }
                    }
                    self.accumulate(&mut grads, a, ga);
                    self.accumulate(&mut grads, b, gb);
                }
                Op::SelectRows(x, ids) => {
                    let shape = self.value(x).shape();
                    let mut gx = Matrix::zeros(shape.0, shape.1);
                    for (r, &id) in ids.iter().enumerate() {
                        for c in 0..shape.1 {
                            gx[(id, c)] += g[(r, c)];
                        }
                    }
                    self.accumulate(&mut grads, x, gx);
                }
                Op::Dropout(x, mask) => {
                    self.accumulate(&mut grads, x, g.hadamard(&mask));
                }
                Op::SqFrobenius(x) => {
                    let gx = self.value(x).scale(2.0 * g.item());
                    self.accumulate(&mut grads, x, gx);
                }
            }
        }

        let shapes = self.nodes.iter().map(|n| n.value.shape()).collect();
        Gradients { grads, shapes }
    }

    /// Data-free description of node `idx` for [`Graph::plan`]
    /// (defined here because [`Op`] is private to this module).
    pub(crate) fn plan_node(&self, idx: usize) -> PlanNode {
        let node = &self.nodes[idx];
        let op = match &node.op {
            Op::Leaf => PlanOp::Leaf,
            Op::Add(a, b) => PlanOp::Add(a.0, b.0),
            Op::Sub(a, b) => PlanOp::Sub(a.0, b.0),
            Op::Mul(a, b) => PlanOp::Mul(a.0, b.0),
            Op::Div(a, b) => PlanOp::Div(a.0, b.0),
            Op::MatMul(a, b) => PlanOp::MatMul(a.0, b.0),
            Op::Affine(a, alpha) => PlanOp::Affine(a.0, *alpha),
            Op::Relu(a) => PlanOp::Relu(a.0),
            Op::LeakyRelu(a, alpha) => PlanOp::LeakyRelu(a.0, *alpha),
            Op::Sigmoid(a) => PlanOp::Sigmoid(a.0),
            Op::Tanh(a) => PlanOp::Tanh(a.0),
            Op::Log(a) => PlanOp::Log(a.0),
            Op::ClampMin(a, lo) => PlanOp::ClampMin(a.0, *lo),
            Op::Transpose(a) => PlanOp::Transpose(a.0),
            Op::AddRowBroadcast(a, b) => PlanOp::AddRowBroadcast(a.0, b.0),
            Op::OuterSum(a, b) => PlanOp::OuterSum(a.0, b.0),
            Op::MaskedSoftmaxRows(a, mask) => {
                let fully_masked_rows =
                    (0..mask.rows()).filter(|&r| mask.row(r).iter().all(|&m| m == 0.0)).count();
                PlanOp::MaskedSoftmaxRows { x: a.0, mask_shape: mask.shape(), fully_masked_rows }
            }
            Op::ConcatCols(parts) => PlanOp::ConcatCols(parts.iter().map(|v| v.0).collect()),
            Op::SumAll(a) => PlanOp::SumAll(a.0),
            Op::MeanAll(a) => PlanOp::MeanAll(a.0),
            Op::Mse(a, b) => PlanOp::Mse(a.0, b.0),
            Op::RowwiseDot(a, b) => PlanOp::RowwiseDot(a.0, b.0),
            Op::SelectRows(a, ids) => {
                PlanOp::SelectRows { x: a.0, n_ids: ids.len(), max_id: ids.iter().copied().max() }
            }
            Op::Dropout(a, mask) => PlanOp::Dropout(a.0, mask.shape()),
            Op::SqFrobenius(a) => PlanOp::SqFrobenius(a.0),
        };
        PlanNode { op, shape: Some(node.value.shape()), finite: node.value.all_finite() }
    }

    fn accumulate(&self, grads: &mut [Option<Matrix>], var: Var, g: Matrix) {
        debug_assert_eq!(
            g.shape(),
            self.value(var).shape(),
            "gradient shape mismatch for node {}",
            var.0
        );
        match &mut grads[var.0] {
            Some(existing) => existing.add_scaled_assign(&g, 1.0),
            slot @ None => *slot = Some(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_grads_flow_to_both() {
        let mut g = Graph::new();
        let a = g.input(Matrix::scalar(2.0));
        let b = g.input(Matrix::scalar(3.0));
        let s = g.add(a, b);
        let grads = g.backward(s);
        assert_eq!(grads.get(a).item(), 1.0);
        assert_eq!(grads.get(b).item(), 1.0);
    }

    #[test]
    fn matmul_grad_matches_closed_form() {
        // loss = sum(A B); dA = ones @ B^T, dB = A^T @ ones.
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.input(Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        let expected_da = Matrix::ones(2, 2).matmul(&g.value(b).t());
        let expected_db = g.value(a).t().matmul(&Matrix::ones(2, 2));
        assert!(grads.get(a).max_abs_diff(&expected_da) < 1e-12);
        assert!(grads.get(b).max_abs_diff(&expected_db) < 1e-12);
    }

    #[test]
    fn relu_gates_gradient() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[-1.0, 2.0]]));
        let y = g.relu(x);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn sigmoid_grad_at_zero_is_quarter() {
        let mut g = Graph::new();
        let x = g.input(Matrix::scalar(0.0));
        let y = g.sigmoid(x);
        let grads = g.backward(y);
        assert!((grads.get(x).item() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reuse_of_node_accumulates() {
        // loss = x * x (Hadamard with itself); d/dx = 2x.
        let mut g = Graph::new();
        let x = g.input(Matrix::scalar(3.0));
        let y = g.mul(x, x);
        let grads = g.backward(y);
        assert!((grads.get(x).item() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn mse_gradient() {
        let mut g = Graph::new();
        let p = g.input(Matrix::from_rows(&[&[1.0], &[3.0]]));
        let t = g.input(Matrix::from_rows(&[&[0.0], &[0.0]]));
        let l = g.mse(p, t);
        assert!((g.value(l).item() - 5.0).abs() < 1e-12);
        let grads = g.backward(l);
        // d/dp = 2(p - t)/n = [1, 3].
        assert!(grads.get(p).max_abs_diff(&Matrix::from_rows(&[&[1.0], &[3.0]])) < 1e-12);
    }

    #[test]
    fn masked_softmax_rows_behaviour() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]));
        let mask = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 0.0, 0.0]]);
        let y = g.masked_softmax_rows(x, &mask);
        let yv = g.value(y);
        // Row 0: softmax over logits 1 and 3, middle masked to zero.
        assert_eq!(yv[(0, 1)], 0.0);
        assert!((yv[(0, 0)] + yv[(0, 2)] - 1.0).abs() < 1e-12);
        assert!(yv[(0, 2)] > yv[(0, 0)]);
        // Row 1: fully masked stays zero.
        assert_eq!(yv.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn select_rows_scatter_adds() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let s = g.select_rows(x, &[1, 1, 2]);
        let loss = g.sum_all(s);
        let grads = g.backward(loss);
        // Row 1 selected twice → gradient 2; row 0 unselected → 0.
        assert_eq!(grads.get(x).as_slice(), &[0.0, 2.0, 1.0]);
    }

    #[test]
    fn rowwise_dot_value_and_grad() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.input(Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let d = g.rowwise_dot(a, b);
        assert_eq!(g.value(d).as_slice(), &[17.0, 53.0]);
        let loss = g.sum_all(d);
        let grads = g.backward(loss);
        assert!(grads.get(a).max_abs_diff(g.value(b)) < 1e-12);
        assert!(grads.get(b).max_abs_diff(g.value(a)) < 1e-12);
    }

    #[test]
    fn outer_sum_value_and_grad() {
        let mut g = Graph::new();
        let u = g.input(Matrix::col_vector(&[1.0, 2.0]));
        let v = g.input(Matrix::col_vector(&[10.0, 20.0, 30.0]));
        let e = g.outer_sum(u, v);
        assert_eq!(g.value(e).shape(), (2, 3));
        assert_eq!(g.value(e)[(1, 2)], 32.0);
        let loss = g.sum_all(e);
        let grads = g.backward(loss);
        assert_eq!(grads.get(u).as_slice(), &[3.0, 3.0]); // summed over 3 cols
        assert_eq!(grads.get(v).as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[&[1.0], &[2.0]]));
        let b = g.input(Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let c = g.concat_cols(&[a, b]);
        assert_eq!(g.value(c).shape(), (2, 3));
        let scaled = g.scale(c, 2.0);
        let loss = g.sum_all(scaled);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).as_slice(), &[2.0, 2.0]);
        assert_eq!(grads.get(b).as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn disconnected_var_gets_zero_grad() {
        let mut g = Graph::new();
        let x = g.input(Matrix::scalar(1.0));
        let y = g.input(Matrix::scalar(2.0));
        let loss = g.sq_frobenius(x);
        let grads = g.backward(loss);
        assert_eq!(grads.get(y).item(), 0.0);
        assert!(grads.get_ref(y).is_none());
    }

    #[test]
    fn sq_frobenius_grad_is_2x() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, -2.0]]));
        let l = g.sq_frobenius(x);
        assert_eq!(g.value(l).item(), 5.0);
        let grads = g.backward(l);
        assert_eq!(grads.get(x).as_slice(), &[2.0, -4.0]);
    }

    #[test]
    fn dropout_mask_scales_grad() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 1.0]]));
        let mask = Matrix::from_rows(&[&[0.0, 2.0]]);
        let y = g.dropout(x, &mask);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn transpose_grad() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let xt = g.transpose(x);
        assert_eq!(g.value(xt).shape(), (3, 1));
        let w = g.input(Matrix::from_rows(&[&[1.0, 0.0, 0.0]]));
        let y = g.matmul(w, xt);
        let grads = g.backward(y);
        assert_eq!(grads.get(x).as_slice(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn div_value_and_grad() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[&[6.0, 1.0]]));
        let b = g.input(Matrix::from_rows(&[&[2.0, 4.0]]));
        let q = g.div(a, b);
        assert_eq!(g.value(q).as_slice(), &[3.0, 0.25]);
        let loss = g.sum_all(q);
        let grads = g.backward(loss);
        // d/da = 1/b; d/db = -a/b².
        assert!(grads.get(a).max_abs_diff(&Matrix::from_rows(&[&[0.5, 0.25]])) < 1e-12);
        assert!(grads.get(b).max_abs_diff(&Matrix::from_rows(&[&[-1.5, -0.0625]])) < 1e-12);
    }

    #[test]
    fn log_grad_is_reciprocal() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 4.0]]));
        let y = g.log(x);
        assert!((g.value(y)[(0, 1)] - 4.0f64.ln()).abs() < 1e-12);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert!(grads.get(x).max_abs_diff(&Matrix::from_rows(&[&[1.0, 0.25]])) < 1e-12);
    }

    #[test]
    fn clamp_min_gates_gradient_like_relu() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[0.5, 2.0]]));
        let y = g.clamp_min(x, 1.0);
        assert_eq!(g.value(y).as_slice(), &[1.0, 2.0]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).as_slice(), &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite value")]
    fn finite_checks_catch_nan_at_the_producing_op() {
        // `log` of a negative number is NaN; with runtime finite checks
        // enabled the panic names the op, giving NaN provenance even in
        // release builds.
        let mut g = Graph::new();
        g.set_finite_checks(true);
        let x = g.input(Matrix::from_rows(&[&[-1.0]]));
        let _ = g.log(x);
    }

    #[test]
    fn deep_chain_backprop() {
        // y = tanh(relu(2x + 1)); check at x=1: inner = 3, relu passes,
        // dy/dx = (1 - tanh(3)^2) * 2.
        let mut g = Graph::new();
        let x = g.input(Matrix::scalar(1.0));
        let a = g.affine(x, 2.0, 1.0);
        let r = g.relu(a);
        let y = g.tanh(r);
        let grads = g.backward(y);
        let expected = (1.0 - (3.0f64).tanh().powi(2)) * 2.0;
        assert!((grads.get(x).item() - expected).abs() < 1e-12);
    }
}
