//! Parameter initialization and stochastic masks.
//!
//! Every random draw goes through a caller-supplied [`rand::Rng`] so the
//! experiment binaries can reproduce tables bit-for-bit from a fixed
//! seed.

use rand::Rng;

use crate::matrix::Matrix;

/// Xavier/Glorot uniform initialization: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The right default for the
/// tanh/sigmoid gates of LSTM/GRU and the linear output layers.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    random_uniform(rows, cols, -a, a, rng)
}

/// He/Kaiming uniform initialization: `U(−a, a)` with
/// `a = sqrt(6 / fan_in)`. The right default for ReLU layers (node
/// transform, GAT transforms, the slave-generator MLP).
pub fn he_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / rows.max(1) as f64).sqrt();
    random_uniform(rows, cols, -a, a, rng)
}

/// Uniform matrix in `[lo, hi)`.
pub fn random_uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Matrix {
    assert!(lo <= hi, "random_uniform: empty range");
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Standard-normal matrix scaled by `std`.
pub fn random_normal(rows: usize, cols: usize, std: f64, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols).map(|_| std * standard_normal(rng)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// One standard-normal draw via Box–Muller (keeps us independent of
/// `rand_distr`, which is not in the approved dependency set).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Inverted-dropout mask: entries are `0` with probability `p` and
/// `1/(1−p)` otherwise, so the expected activation is unchanged and no
/// rescaling is needed at inference (Srivastava et al., as cited in
/// §IV-C).
///
/// # Panics
/// Panics unless `0 ≤ p < 1`.
pub fn dropout_mask(rows: usize, cols: usize, p: f64, rng: &mut impl Rng) -> Matrix {
    assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1), got {p}");
    let keep = 1.0 - p;
    let data =
        (0..rows * cols).map(|_| if rng.gen::<f64>() < p { 0.0 } else { 1.0 / keep }).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(40, 60, &mut rng);
        let a = (6.0 / 100.0f64).sqrt();
        assert!(m.as_slice().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn he_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = he_uniform(24, 8, &mut rng);
        let a = (6.0 / 24.0f64).sqrt();
        assert!(m.as_slice().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn initialization_is_deterministic_per_seed() {
        let a = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(7));
        let c = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn dropout_mask_values_and_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = 0.3;
        let m = dropout_mask(100, 100, p, &mut rng);
        let keep_value = 1.0 / (1.0 - p);
        let mut zeros = 0usize;
        for &x in m.as_slice() {
            assert!(x == 0.0 || (x - keep_value).abs() < 1e-12);
            if x == 0.0 {
                zeros += 1;
            }
        }
        let rate = zeros as f64 / 10_000.0;
        assert!((rate - p).abs() < 0.02, "empirical drop rate {rate}");
    }

    #[test]
    fn dropout_mask_zero_p_is_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = dropout_mask(3, 3, 0.0, &mut rng);
        assert_eq!(m, Matrix::ones(3, 3));
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn dropout_mask_rejects_one() {
        let mut rng = StdRng::seed_from_u64(6);
        dropout_mask(2, 2, 1.0, &mut rng);
    }
}
