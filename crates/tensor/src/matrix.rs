//! Dense row-major `f64` matrix.
//!
//! All model state in this workspace — features, weights, activations,
//! gradients — is a [`Matrix`]. Numeric heavy lifting is delegated to
//! the cache-blocked kernels in `ams-runtime`; those kernels preserve
//! the accumulation order of the original naive loops bit-for-bit, and
//! [`Matrix::matmul_with`]/[`Matrix::try_matmul_with`] let callers pick
//! an execution [`Backend`] (sequential or deterministic row-parallel)
//! without changing a single result bit.

use ams_runtime::{kernels, Backend, RuntimeError, Seq};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// All-one matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: {rows}x{cols} needs {} elements, got {}",
            rows * cols,
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from nested row slices (mainly for tests and examples).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// A 1×1 matrix holding a scalar.
    pub fn scalar(v: f64) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// Column vector from a slice.
    pub fn col_vector(xs: &[f64]) -> Self {
        Self::from_vec(xs.len(), 1, xs.to_vec())
    }

    /// Row vector from a slice.
    pub fn row_vector(xs: &[f64]) -> Self {
        Self::from_vec(1, xs.len(), xs.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, yielding its row-major buffer (so callers
    /// can recycle it through a runtime [`ams_runtime::Workspace`]).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// A single row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A single row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of a column.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The single element of a 1×1 matrix.
    ///
    /// # Panics
    /// Panics when the matrix is not 1×1.
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix, got {:?}", self.shape());
        self.data[0]
    }

    /// Transpose.
    pub fn t(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_with(other, &Seq)
    }

    /// Matrix product on an explicit execution backend.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul_with(&self, other: &Matrix, backend: &dyn Backend) -> Matrix {
        self.try_matmul_with(other, backend).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Matrix product returning a typed error instead of panicking on
    /// shape mismatch — what the serve layer's no-panic rule requires.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix, RuntimeError> {
        self.try_matmul_with(other, &Seq)
    }

    /// [`Matrix::try_matmul`] on an explicit execution backend.
    pub fn try_matmul_with(
        &self,
        other: &Matrix,
        backend: &dyn Backend,
    ) -> Result<Matrix, RuntimeError> {
        if self.cols != other.rows {
            return Err(RuntimeError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        backend.matmul(&self.data, &other.data, &mut out.data, self.rows, self.cols, other.cols);
        Ok(out)
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise combination with shape checking.
    pub fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_with: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// In-place `self += alpha * other` (the axpy of optimizer updates).
    pub fn add_scaled_assign(&mut self, other: &Matrix, alpha: f64) {
        assert_eq!(self.shape(), other.shape(), "add_scaled_assign: shape mismatch");
        kernels::axpy(&mut self.data, &other.data, alpha);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Sum of squared elements (squared Frobenius norm).
    pub fn sq_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.sq_frobenius().sqrt()
    }

    /// Dot product of two matrices viewed as flat vectors.
    pub fn flat_dot(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "flat_dot: shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat: row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertical concatenation.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat: col mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// New matrix containing the selected rows, in order (repetition
    /// allowed).
    pub fn select_rows(&self, ids: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(ids.len(), self.cols);
        for (r, &id) in ids.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(id));
        }
        out
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

// Serde support (used by model artifacts): `{"rows": r, "cols": c,
// "data": [...]}` with row-major data. Implemented by hand because the
// fields are private and the shape invariant must be revalidated on
// load.
impl serde::Serialize for Matrix {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("rows".to_string(), serde::Serialize::to_value(&self.rows)),
            ("cols".to_string(), serde::Serialize::to_value(&self.cols)),
            ("data".to_string(), serde::Serialize::to_value(&self.data)),
        ])
    }
}

impl serde::Deserialize for Matrix {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name).ok_or_else(|| serde::Error::custom(format!("Matrix: missing `{name}`")))
        };
        let rows = usize::from_value(field("rows")?)?;
        let cols = usize::from_value(field("cols")?)?;
        let data = Vec::<f64>::from_value(field("data")?)?;
        if data.len() != rows * cols {
            return Err(serde::Error::custom(format!(
                "Matrix: {rows}x{cols} needs {} elements, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_json_round_trip_is_bit_exact() {
        let m = Matrix::from_rows(&[&[1.5, -2.25, 1.0 / 3.0], &[0.0, f64::MIN_POSITIVE, 1e300]]);
        let text = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&text).unwrap();
        assert_eq!(back.shape(), m.shape());
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn serde_rejects_inconsistent_shape() {
        let text = r#"{"rows": 2, "cols": 2, "data": [1.0, 2.0, 3.0]}"#;
        assert!(serde_json::from_str::<Matrix>(text).is_err());
    }

    #[test]
    fn construction_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn eye_and_identity_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::eye(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn try_matmul_returns_typed_shape_error() {
        let err = Matrix::zeros(2, 3).try_matmul(&Matrix::zeros(2, 3)).unwrap_err();
        assert_eq!(err, RuntimeError::ShapeMismatch { op: "matmul", lhs: (2, 3), rhs: (2, 3) });
        assert!(Matrix::zeros(2, 3).try_matmul(&Matrix::zeros(3, 2)).is_ok());
    }

    #[test]
    fn matmul_with_par_backend_is_bit_identical() {
        let a = Matrix::from_vec(33, 40, (0..33 * 40).map(|i| (i % 7) as f64 - 3.0).collect());
        let b = Matrix::from_vec(40, 21, (0..40 * 21).map(|i| (i % 5) as f64 * 0.5).collect());
        let seq = a.matmul(&b);
        let par = ams_runtime::Par::new(4);
        let got = a.matmul_with(&b, &par);
        for (s, p) in seq.as_slice().iter().zip(got.as_slice()) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.t().t(), a);
        assert_eq!(a.t().shape(), (3, 2));
        assert_eq!(a.t()[(2, 1)], 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[6.0, 8.0], &[10.0, 12.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[4.0, 4.0], &[4.0, 4.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[5.0, 12.0], &[21.0, 32.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.sq_frobenius(), 30.0);
        assert!((a.frobenius() - 30.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn hcat_vcat() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert_eq!(a.hcat(&b), Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        assert_eq!(a.vcat(&b), Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
    }

    #[test]
    fn select_rows_with_repetition() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let s = a.select_rows(&[2, 0, 2]);
        assert_eq!(s, Matrix::from_rows(&[&[3.0, 3.0], &[1.0, 1.0], &[3.0, 3.0]]));
    }

    #[test]
    fn add_scaled_assign_is_axpy() {
        let mut a = Matrix::ones(2, 2);
        let g = Matrix::full(2, 2, 4.0);
        a.add_scaled_assign(&g, -0.25);
        assert_eq!(a, Matrix::zeros(2, 2));
    }

    #[test]
    fn item_scalar_roundtrip() {
        assert_eq!(Matrix::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "1x1")]
    fn item_rejects_non_scalar() {
        Matrix::zeros(2, 1).item();
    }

    #[test]
    fn row_col_access() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn max_abs_diff_and_finiteness() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.5, 1.0]]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
        assert!(a.all_finite());
        assert!(!Matrix::scalar(f64::NAN).all_finite());
    }

    #[test]
    fn flat_dot_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.5], &[1.0, 1.0]]);
        assert_eq!(a.flat_dot(&b), 1.0 * 2.0 + 2.0 * 0.5 + 3.0 + 4.0);
    }
}
