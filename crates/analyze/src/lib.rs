//! # ams-analyze — static analysis for the AMS stack
//!
//! Three layers behind one structured [`Diagnostic`] type and one
//! binary (`ams-check`):
//!
//! 1. **Tape-IR analysis** — replays a recorded [`Plan`]
//!    (`Graph::plan()`) without data: symbolic shape inference
//!    ([`shape`]), gradient reachability from the loss ([`reach`]),
//!    dead-node and duplicate-subgraph detection, and numerical-risk
//!    rules ([`numeric`]).
//! 2. **Source lint engine** — a dependency-free (no `syn`)
//!    line/token linter ([`lint`]) with repo-specific rules such as
//!    `no-unwrap-in-serve`, inline `// ams-lint: allow(rule)`
//!    suppressions, and `--format json` output.
//! 3. **Concurrency layer** ([`conc`]) — static lock-order analysis
//!    over the serving/runtime concurrency surface (`ams-check
//!    --conc`) plus a deterministic interleaving explorer with
//!    vector-clock race checking for protocol models.
//! 4. **Whole-program audit** ([`audit`]) — interprocedural
//!    panic/alloc/block propagation over a workspace call graph
//!    (`ams-check audit`), gating the declared hot-path roots of
//!    `audit.toml` with full root-to-site call-chain provenance.
//! 5. **Taint audit** ([`taint`]) — interprocedural untrusted-input
//!    dataflow (`ams-check taint`) from the sources of `taint.toml`
//!    (socket reads, store file bytes, CLI args) to tainted-size
//!    allocation/indexing sinks, with sanitizer kills and full
//!    source→sink witness chains.
//!
//! CI runs `ams-check` and fails on any `error`-severity finding;
//! `warn`/`info` are reported but do not gate. Exit codes are stable:
//! 0 clean (or warnings only), 1 at least one error diagnostic,
//! 2 internal failure (bad arguments, unreadable file, invalid plan).

pub mod audit;
pub mod conc;
pub mod diagnostic;
pub mod lint;
pub mod numeric;
pub mod plan_io;
pub mod reach;
pub mod shape;
pub mod taint;

use ams_tensor::plan::{Plan, PlanOp};
pub use diagnostic::{Diagnostic, Location, Report, Severity};

/// Render the provenance chain of a node for human-facing output,
/// e.g. `#12 matmul ← #7 relu ← #3 leaf(4×3)`. Capped at eight
/// entries; deeper chains end with `← …`.
pub fn describe_chain(plan: &Plan, node: usize) -> String {
    const LIMIT: usize = 8;
    let ids = plan.provenance(node, LIMIT + 1);
    let truncated = ids.len() > LIMIT;
    let mut parts: Vec<String> = ids
        .iter()
        .take(LIMIT)
        .map(|&id| {
            let n = &plan.nodes[id];
            match (&n.op, n.shape) {
                (PlanOp::Leaf, Some((r, c))) => format!("#{id} leaf({r}×{c})"),
                _ => format!("#{id} {}", n.op.name()),
            }
        })
        .collect();
    if truncated {
        parts.push("…".to_string());
    }
    parts.join(" ← ")
}

/// A plan plus the training metadata the reachability pass needs:
/// which nodes are trainable parameters (with human names) and which
/// node is the loss. Built by `AmsModel::training_audit` for the real
/// model, or parsed from a JSON audit spec by [`plan_io`].
#[derive(Debug, Clone)]
pub struct PlanAudit {
    pub plan: Plan,
    /// `(node id, name)` for every trainable parameter.
    pub params: Vec<(usize, String)>,
    /// The loss node, when the plan is a training graph.
    pub loss: Option<usize>,
}

impl PlanAudit {
    /// Audit a bare plan with no training metadata — shape, numeric
    /// and duplicate passes only.
    pub fn bare(plan: Plan) -> Self {
        Self { plan, params: Vec::new(), loss: None }
    }
}

/// Run every tape-IR pass over an audit and collect one [`Report`].
pub fn analyze(audit: &PlanAudit) -> Report {
    let mut report = Report::new();
    let shape_analysis = shape::check_shapes(&audit.plan);
    report.extend(shape_analysis.diagnostics);
    report.extend(numeric::check_numerics(&audit.plan, &shape_analysis.shapes));
    if let Some(loss) = audit.loss {
        report.extend(reach::check_reachability(&audit.plan, &audit.params, loss));
        report.extend(reach::check_dead_nodes(&audit.plan, &[loss]));
    }
    report.extend(reach::check_duplicates(&audit.plan));
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_tensor::{Graph, Matrix};

    #[test]
    fn chain_renders_ops_and_leaf_shapes() {
        let mut g = Graph::new();
        let x = g.input(Matrix::ones(4, 3));
        let w = g.input(Matrix::ones(3, 2));
        let y = g.matmul(x, w);
        let r = g.relu(y);
        let chain = describe_chain(&g.plan(), r.index());
        assert!(chain.starts_with(&format!("#{} relu", r.index())), "{chain}");
        assert!(chain.contains("matmul"), "{chain}");
        assert!(chain.contains("leaf(4×3)"), "{chain}");
    }

    #[test]
    fn full_pipeline_over_a_clean_training_graph() {
        let mut g = Graph::new();
        let x = g.input(Matrix::ones(4, 3));
        let w = g.input(Matrix::ones(3, 1));
        let y = g.matmul(x, w);
        let target = g.input(Matrix::ones(4, 1));
        let loss = g.mse(y, target);
        let audit = PlanAudit {
            plan: g.plan(),
            params: vec![(w.index(), "w".to_string())],
            loss: Some(loss.index()),
        };
        let report = analyze(&audit);
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn full_pipeline_flags_a_detached_param_as_error() {
        let mut g = Graph::new();
        let x = g.input(Matrix::ones(4, 3));
        let w = g.input(Matrix::ones(3, 1));
        let dead_w = g.input(Matrix::ones(3, 1));
        let y = g.matmul(x, w);
        let loss = g.sq_frobenius(y);
        let audit = PlanAudit {
            plan: g.plan(),
            params: vec![(w.index(), "w".to_string()), (dead_w.index(), "dead_w".to_string())],
            loss: Some(loss.index()),
        };
        let report = analyze(&audit);
        assert!(report.has_errors());
        assert!(report.diagnostics.iter().any(|d| d.rule == "detached-param"));
    }
}
